"""The chaos experiment: sweep structure, chart, CLI entry point."""

import xml.dom.minidom

import pytest

from repro.analysis.render import chaos_chart
from repro.cli import main
from repro.experiments.chaos import (TAKEOVER_SLACK, ChaosPoint,
                                     ChaosResult, _chaos_run, chaos)
from repro.metrics import RecoveryReport
from repro.metrics.recovery import CrashRecovery
from repro.sim import load_trace


@pytest.fixture(scope="module")
def quick_result():
    return chaos(quick=True)


def test_quick_sweep_structure(quick_result):
    assert {p.heartbeat_period for p in quick_result.points} \
        == {0.25, 0.5}
    assert quick_result.crash_periods() == [4.0]
    for point in quick_result.points:
        assert point.runs == 1
        assert point.report.crash_count == 3


def test_quick_sweep_recovers(quick_result):
    for point in quick_result.points:
        report = point.report
        assert report.recovery_rate == 1.0
        assert report.continuity_rate == 1.0
        assert report.mean_latency is not None
        assert report.mean_latency <= point.latency_bound


def test_point_lookup_and_series(quick_result):
    point = quick_result.point(0.25, 4.0)
    assert point.heartbeat_period == 0.25
    with pytest.raises(KeyError):
        quick_result.point(9.9, 4.0)
    series = quick_result.series(4.0)
    assert [hb for hb, _ in series] == [0.25, 0.5]


def test_quick_sweep_is_deterministic(quick_result):
    again = chaos(quick=True)
    assert again == quick_result


def test_seed_base_changes_measurements(quick_result):
    other = chaos(quick=True, seed_base=12345)
    assert other != quick_result


def test_format_table_lists_every_point(quick_result):
    table = quick_result.format_table()
    assert "recovered" in table and "continuity" in table
    # Title + header + two sweep rows.
    assert len(table.splitlines()) == 4


def test_latency_bound_and_within_rate():
    crashes = (
        CrashRecovery(crash_time=0.0, victim=0, label="t#1",
                      window_end=4.0, takeover_latency=0.5,
                      recovered=True, continuity=True,
                      duplicate_time=0.0),
        CrashRecovery(crash_time=4.0, victim=1, label="t#1",
                      window_end=8.0, takeover_latency=9.0,
                      recovered=True, continuity=True,
                      duplicate_time=0.0),
    )
    point = ChaosPoint(heartbeat_period=0.5, crash_period=4.0, runs=1,
                       report=RecoveryReport(context_type="t",
                                             crashes=crashes))
    assert point.latency_bound == pytest.approx(1.05 + TAKEOVER_SLACK)
    assert point.within_bound_rate == pytest.approx(0.5)

    empty = ChaosPoint(heartbeat_period=0.5, crash_period=4.0, runs=1,
                       report=RecoveryReport(context_type="t",
                                             crashes=()))
    assert empty.within_bound_rate is None
    assert ChaosResult(points=[empty]).series(4.0) == []


def test_chaos_chart_has_bound_reference(quick_result):
    svg = chaos_chart(quick_result).to_svg()
    document = xml.dom.minidom.parseString(svg)
    assert document.documentElement.tagName == "svg"
    assert "bound" in svg
    assert "crash every 4s" in svg


def test_cli_chaos_quick_writes_svg(tmp_path):
    svg_path = tmp_path / "chaos.svg"
    lines = []
    code = main(["chaos", "--quick", "--svg", str(svg_path)],
                out=lines.append)
    assert code == 0
    output = "\n".join(lines)
    assert "recovery latency" in output
    assert svg_path.exists()
    document = xml.dom.minidom.parseString(svg_path.read_text())
    assert document.documentElement.tagName == "svg"


@pytest.mark.parametrize("seed", [3, 29])
def test_dead_nodes_stay_off_the_air(tmp_path, seed):
    """MAC backoff/turnaround events must die with their mote.

    Regression test for in-flight ``mac.backoff`` / ``mac.next`` events
    outliving a crashed node: replay a chaos run's trace and assert no
    node ever transmits between its ``node.fail`` and ``node.recover``
    records.  The 50 ms heartbeats across 16 motes keep the channel busy
    enough that crashes routinely land mid-backoff — pre-fix, every one
    of these seeds had a dead node transmitting dozens of frames.
    """
    path = tmp_path / f"chaos-{seed}.jsonl"
    _chaos_run(seed, 0.05, 1.5, 6, 0.3, 16, 8, trace_out=str(path))
    dead_since = {}
    saw_crash_while_busy = False
    for record in load_trace(str(path)):
        if record.category == "node.fail":
            dead_since[record.node] = record.time
            saw_crash_while_busy = True
        elif record.category == "node.recover":
            dead_since.pop(record.node, None)
        elif record.category == "radio.tx" and record.node in dead_since:
            raise AssertionError(
                f"dead node {record.node} transmitted at {record.time} "
                f"(failed at {dead_since[record.node]})")
    assert saw_crash_while_busy  # the scenario actually crashed nodes


def test_cli_seed_applies_to_chaos(capsys):
    lines_a, lines_b, lines_c = [], [], []
    main(["chaos", "--quick", "--seed", "7"], out=lines_a.append)
    main(["chaos", "--quick", "--seed", "7"], out=lines_b.append)
    main(["chaos", "--quick", "--seed", "8"], out=lines_c.append)
    # Ignore the trailing "[chaos completed in Xs]" timing line.
    assert lines_a[:-1] == lines_b[:-1]
    assert lines_a[:-1] != lines_c[:-1]
