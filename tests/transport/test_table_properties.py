"""Property-based tests for the last-known-leader LRU table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import LastKnownLeaderTable

operations = st.lists(
    st.one_of(
        st.tuples(st.just("update"),
                  st.integers(min_value=0, max_value=19),   # label idx
                  st.integers(min_value=0, max_value=99),   # leader
                  st.floats(min_value=0, max_value=1e4)),   # time
        st.tuples(st.just("get"),
                  st.integers(min_value=0, max_value=19)),
        st.tuples(st.just("forget"),
                  st.integers(min_value=0, max_value=19)),
    ),
    max_size=100,
)


@given(operations, st.integers(min_value=1, max_value=8))
@settings(max_examples=120)
def test_capacity_never_exceeded(ops, capacity):
    table = LastKnownLeaderTable(capacity=capacity)
    for op in ops:
        if op[0] == "update":
            _, idx, leader, now = op
            table.update(f"label-{idx}", leader, now)
        elif op[0] == "get":
            table.get(f"label-{op[1]}")
        else:
            table.forget(f"label-{op[1]}")
        assert len(table) <= capacity


@given(operations)
@settings(max_examples=100)
def test_pointer_timestamps_never_regress(ops):
    """Whatever the operation order, a stored pointer's timestamp is the
    max update time seen for that label since it was last resident."""
    table = LastKnownLeaderTable(capacity=100)  # no evictions
    max_seen = {}
    for op in ops:
        if op[0] == "update":
            _, idx, leader, now = op
            label = f"label-{idx}"
            table.update(label, leader, now)
            max_seen[label] = max(max_seen.get(label, -1.0), now)
        elif op[0] == "forget":
            label = f"label-{op[1]}"
            table.forget(label)
            max_seen.pop(label, None)
    for label, expected_time in max_seen.items():
        pointer = table.peek(label)
        assert pointer is not None
        assert pointer.updated == expected_time


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                max_size=50))
@settings(max_examples=80)
def test_most_recent_labels_survive(sequence):
    """After any update sequence, the most recently touched distinct
    labels are exactly the residents."""
    capacity = 3
    table = LastKnownLeaderTable(capacity=capacity)
    for t, idx in enumerate(sequence):
        table.update(f"l{idx}", idx, float(t))
    expected = []
    for idx in reversed(sequence):
        label = f"l{idx}"
        if label not in expected:
            expected.append(label)
        if len(expected) == capacity:
            break
    assert sorted(table.labels()) == sorted(expected)
