"""Tests for Appendix A object data declarations."""

import pytest

from repro.core import EnviroTrackApp
from repro.lang import ParseError, compile_source, parse_source
from repro.sensing import StaticPoint, Target

PROGRAM = """
begin context watcher
    activation: thing_detector()
    count_seen : count(position) confidence=1, freshness=2s
    begin object counter
        ticks = 0;
        threshold = 3;
        invocation: TIMER(1s)
        tick() {
            ticks = ticks + 1;
            if (ticks > threshold) {
                MySend(pursuer, self:label, ticks);
            }
        }
    end
end context
"""


def test_data_declarations_parse():
    program = parse_source(PROGRAM)
    obj = program.context("watcher").objects[0]
    assert obj.data == (("ticks", 0.0), ("threshold", 3.0))


def test_literal_values_only():
    bad = """
    begin context c
        activation: light()
        begin object o
            x = light();
            invocation: TIMER(1s)
            f() { log(x); }
        end
    end context
    """
    with pytest.raises(ParseError):
        parse_source(bad)


def test_data_seeds_locals_and_counts_across_invocations():
    from repro.lang import default_library
    library = default_library()
    library.register("thing_detector",
                     lambda mote: (mote.read_sensor("thing_seen")
                                   if mote.has_sensor("thing_seen")
                                   else False))
    app = EnviroTrackApp(seed=3, enable_directory=False, enable_mtp=False)
    app.field.deploy_grid(4, 2)
    app.field.add_target(Target("thing", "thing", StaticPoint((1.0, 0.5)),
                                signature_radius=1.0))
    app.field.install_detection_sensors("thing_seen", kinds=["thing"])
    for definition in compile_source(PROGRAM, library=library):
        app.add_context_type(definition)
    base = app.place_base_station((0.0, -2.0))
    app.run(until=12.0)
    # The counter passes its threshold of 3 and starts reporting tick
    # counts > 3 that keep increasing.
    values = [record.values.get("ticks") for record in base.reports]
    assert values, "threshold never crossed"
    assert all(v > 3 for v in values)
    assert values == sorted(values)
