"""Evaluation reproduction: scenarios and per-figure entry points."""

from .bench import (BenchPoint, BenchResult, bench_medium,
                    check_regression)
from .chaos import ChaosPoint, ChaosResult, chaos
from .figures import (Figure3Result, Figure4Result, Figure5Result,
                      Figure6Result, Table1Result, figure3, figure4,
                      figure5, figure6, table1)
from .runner import (ScenarioOutcome, default_jobs, derive_run_seed,
                     parallel_map, reduce_run, run_scenario_outcome,
                     run_scenarios)
from .scenarios import (SPEED_33_KMH, SPEED_50_KMH, TankRunResult,
                        TankScenario, build_app, build_tracker_definition,
                        run_tank_scenario)
from .sizing import (DeploymentPlan, grid_spacing_for_coverage,
                     hops_per_second, magnetic_detection_range,
                     motes_for_area, paper_case_study, plan_deployment,
                     seconds_per_hop)

__all__ = [
    "BenchPoint",
    "BenchResult",
    "ChaosPoint",
    "ChaosResult",
    "DeploymentPlan",
    "Figure3Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "SPEED_33_KMH",
    "SPEED_50_KMH",
    "ScenarioOutcome",
    "Table1Result",
    "TankRunResult",
    "TankScenario",
    "bench_medium",
    "build_app",
    "build_tracker_definition",
    "chaos",
    "check_regression",
    "default_jobs",
    "derive_run_seed",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "grid_spacing_for_coverage",
    "hops_per_second",
    "magnetic_detection_range",
    "motes_for_area",
    "paper_case_study",
    "parallel_map",
    "plan_deployment",
    "reduce_run",
    "run_scenario_outcome",
    "run_scenarios",
    "seconds_per_hop",
    "table1",
]
