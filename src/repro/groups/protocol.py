"""Group management protocol (§5.2).

Maintains *context label coherence*: a group of sensors identifying the
same physical entity should produce a single label that persists and stays
unique as membership churns.  Design constraints straight from the paper:

* very lightweight and dynamic — **no** consistent membership views, no
  consensus; "no single entity has to know the current group membership";
* a single *majority* leader per tracked entity; spurious (minority)
  leaders may emerge but are unlikely to gather critical mass;
* leader heartbeats flood the group (and optionally ``h`` hops past the
  perimeter) carrying leader identity, label weight and optional
  persistent state;
* a **receive timer** (≈2.1 × heartbeat period) on each member triggers
  leadership takeover on leader silence;
* a **wait timer** (≈4.2 × heartbeat period) on nearby non-members
  suppresses spurious label creation: a node that recently heard a leader
  joins that label instead of minting a new one when it starts sensing;
* **leader weights** (count of member reports received) resolve duplicate
  labels: the lighter label's leader deletes its label and joins the
  heavier group;
* a leader hearing another leader of the *same* label immediately yields;
* the **relinquish** mechanism hands leadership off explicitly when the
  leader stops sensing the entity (the optimization in Figures 5/6).

State machine roles per (node, context type): IDLE → MEMBER ⇄ LEADER.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..node import Component, Mote
from ..radio import distance
from .config import GroupConfig
from .messages import (HEARTBEAT_KIND, QUERY_KIND, RELINQUISH_KIND,
                       VOUCH_KIND, Heartbeat, LeaderQuery, LeaderVouch,
                       Relinquish, mint_label)

SenseFn = Callable[[Mote], bool]


class Role(enum.Enum):
    """A node's role with respect to one context type."""

    IDLE = "idle"
    MEMBER = "member"
    LEADER = "leader"


class GroupListener:
    """Callbacks the middleware layers on top of group management.

    All methods are optional no-ops; subclass what you need.
    ``via`` on leader starts is one of ``"created"``, ``"takeover"``,
    ``"claim"`` — metrics use it to classify handovers.
    """

    def on_leader_start(self, context_type: str, label: str,
                        inherited_state: Optional[dict],
                        inherited_weight: int, via: str) -> None:
        """This node just became the leader of ``label``."""

    def on_leader_stop(self, context_type: str, label: str,
                       reason: str) -> None:
        """This node stopped leading ``label`` (yield/relinquish/...)."""

    def on_member_join(self, context_type: str, label: str,
                       leader: int) -> None:
        """This node joined ``label``'s sensor group."""

    def on_member_leave(self, context_type: str, label: str) -> None:
        """This node left ``label``'s group (stopped sensing/switched)."""

    def on_leader_update(self, context_type: str, label: str,
                         leader: int) -> None:
        """The group's leader identity changed (new heartbeat source)."""

    def on_state_update(self, context_type: str, label: str,
                        state: Optional[dict]) -> None:
        """Fresh persistent state arrived on a heartbeat."""


@dataclass
class _WaitMemory:
    """What a non-member remembers about a nearby context label."""

    label: str
    leader: int
    weight: int
    state: Optional[dict] = None


@dataclass
class _TypeState:
    """Per-context-type protocol state on one node."""

    type_name: str
    sense_fn: SenseFn
    config: GroupConfig
    role: Role = Role.IDLE
    label: Optional[str] = None
    leader_id: Optional[int] = None
    #: Last known position of the current leader (from heartbeats).
    leader_position: Optional[tuple] = None
    #: Known weight of our label (own count when leading, last heard
    #: heartbeat's when member — inherited on takeover).
    weight: int = 0
    cached_state: Optional[dict] = None
    wait_memory: Optional[_WaitMemory] = None
    sensing: bool = False
    hb_seq: int = 0
    #: Per-node label mint counter (deterministic label identity).
    labels_minted: int = 0
    last_hb_time: float = -1.0
    relinquish_time: float = -1.0
    #: Last time we heard a heartbeat for *our own* label directly — the
    #: only observations we may vouch for to a probing neighbor.
    last_label_hb_time: float = -1.0
    #: Absolute deadline the receive timer is currently armed for;
    #: vouches only ever *extend* it, never shrink it.
    receive_deadline: float = -1.0
    #: What the armed claim timer means: "claim" (relinquish contention)
    #: or "takeover" (probe cycle after receive-timer expiry).
    pending_via: Optional[str] = None
    #: Probe rounds already sent in the current takeover cycle.
    probe_round: int = 0
    #: When the current probe cycle started (for takeover tracing).
    probe_time: float = -1.0
    #: Rate limit for defence heartbeats answering probes/duplicates.
    last_defence_time: float = -1e9
    #: Flood forwarding dedup: last forwarded heartbeat seq per label.
    forwarded_seq: Dict[str, int] = field(default_factory=dict)
    # Timers are attached by the manager at start().
    sense_timer: Any = None
    heartbeat_timer: Any = None
    receive_timer: Any = None
    wait_timer: Any = None
    claim_timer: Any = None
    formation_timer: Any = None


class GroupManager(Component):
    """The group-management component of one mote.

    One manager tracks any number of context types; per §3.2.1 "a sensor
    node can be part of multiple groups at one time" and groups of
    different types are independent.
    """

    name = "gm"

    def __init__(self, mote: Mote) -> None:
        super().__init__(mote)
        self._types: Dict[str, _TypeState] = {}
        self._listeners: List[GroupListener] = []
        self._rng = self.sim.rng.stream("gm.jitter")
        mote.add_reboot_hook(self._on_reboot)
        # Telemetry (side-state only; no-ops when telemetry is off).
        metrics = self.sim.metrics
        self._leadership_gauge = metrics.gauge(
            "repro_gm_active_leaderships",
            "Labels currently led, fleet-wide.")
        self._tenure_metric = metrics.histogram(
            "repro_gm_leader_tenure_seconds",
            "How long leaderships lasted, by ending reason.", ("reason",))
        self._led_since: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_listener(self, listener: GroupListener) -> None:
        self._listeners.append(listener)

    def track(self, type_name: str, sense_fn: SenseFn,
              config: Optional[GroupConfig] = None) -> None:
        """Start managing groups for a context type on this node."""
        if type_name in self._types:
            raise ValueError(f"already tracking type {type_name!r}")
        state = _TypeState(type_name=type_name, sense_fn=sense_fn,
                           config=config or GroupConfig())
        self._types[type_name] = state
        if self._started:
            self._activate(state)

    def on_start(self) -> None:
        self.handle(HEARTBEAT_KIND, self._on_heartbeat_frame)
        self.handle(RELINQUISH_KIND, self._on_relinquish_frame)
        self.handle(QUERY_KIND, self._on_query_frame)
        self.handle(VOUCH_KIND, self._on_vouch_frame)
        for state in self._types.values():
            self._activate(state)

    def _on_reboot(self) -> None:
        """Host mote power-cycled: come back with empty protocol RAM.

        Every tracked type restarts from IDLE — a rebooted node rejoins
        groups by hearing heartbeats like any newcomer.  Only the label
        mint counter survives (conceptually: a boot counter in flash), so
        a rebooted creator can never re-mint a label id it already used.
        """
        for name, old in list(self._types.items()):
            if old.role is Role.LEADER:
                # The crash already ended this leadership silently; close
                # out the telemetry the stepdown path would have written.
                self._leadership_gauge.dec()
                led_since = self._led_since.pop(name, None)
                if led_since is not None:
                    self._tenure_metric.observe(self.now - led_since,
                                                "reboot")
            fresh = _TypeState(type_name=old.type_name,
                               sense_fn=old.sense_fn, config=old.config,
                               labels_minted=old.labels_minted)
            self._types[name] = fresh
            if self._started:
                self._activate(fresh)
        self.record("reboot")

    def _activate(self, state: _TypeState) -> None:
        cfg = state.config
        state.sense_timer = self.mote.periodic(
            cfg.sense_period, lambda s=state: self._sense_check(s),
            label=f"gm.sense.{state.type_name}", cost=cfg.sense_cost,
            initial_delay=self._rng.uniform(0, cfg.sense_period))
        state.sense_timer.start()
        state.receive_timer = self.mote.watchdog(
            cfg.receive_timeout, lambda s=state: self._receive_expired(s),
            label=f"gm.receive.{state.type_name}")
        state.wait_timer = self.mote.watchdog(
            cfg.wait_timeout, lambda s=state: self._wait_expired(s),
            label=f"gm.wait.{state.type_name}")
        state.claim_timer = self.mote.oneshot(
            lambda s=state: self._claim_fired(s),
            label=f"gm.claim.{state.type_name}")
        state.formation_timer = self.mote.oneshot(
            lambda s=state: self._formation_fired(s),
            label=f"gm.formation.{state.type_name}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def role(self, type_name: str) -> Role:
        return self._types[type_name].role

    def label(self, type_name: str) -> Optional[str]:
        return self._types[type_name].label

    def leader_of(self, type_name: str) -> Optional[int]:
        return self._types[type_name].leader_id

    def leader_position(self, type_name: str) -> Optional[tuple]:
        """Last heard position of the current leader (None if unknown).

        Members use it to decide whether the leader is beyond single-hop
        radio range, in which case reports travel by multihop relay
        ("possibly using multiple hops through other members", §3.2.1).
        """
        return self._types[type_name].leader_position

    def weight(self, type_name: str) -> int:
        return self._types[type_name].weight

    def is_leading(self, type_name: str) -> bool:
        return self._types[type_name].role is Role.LEADER

    def tracked_types(self) -> List[str]:
        return sorted(self._types)

    def labels_led(self) -> List[str]:
        """Labels this node currently leads (MTP delivery check)."""
        return sorted(state.label for state in self._types.values()
                      if state.role is Role.LEADER
                      and state.label is not None)

    def persistent_state(self, type_name: str) -> Optional[dict]:
        return self._types[type_name].cached_state

    # ------------------------------------------------------------------
    # Middleware hooks
    # ------------------------------------------------------------------
    def note_member_report(self, type_name: str, label: str) -> None:
        """A member report reached us as leader: bump the label weight.

        The weight is "the number of messages received by the leader from
        members to date" — it is what makes established labels out-compete
        spurious ones.
        """
        state = self._types.get(type_name)
        if state is None or state.role is not Role.LEADER:
            return
        if state.label == label:
            state.weight += 1

    def set_persistent_state(self, type_name: str,
                             app_state: Optional[dict]) -> None:
        """EnviroTrack's ``setState``: attach state to future heartbeats so
        a successor leader resumes from the last committed snapshot."""
        state = self._types.get(type_name)
        if state is not None and state.role is Role.LEADER:
            state.cached_state = app_state

    # ------------------------------------------------------------------
    # Sensing checks
    # ------------------------------------------------------------------
    def _sense_check(self, state: _TypeState) -> None:
        sensing = bool(state.sense_fn(self.mote))
        was_sensing, state.sensing = state.sensing, sensing
        if sensing and state.role is Role.IDLE:
            self._idle_starts_sensing(state)
        elif not sensing and was_sensing:
            if state.role is Role.LEADER:
                self._leader_stops_sensing(state)
            elif state.role is Role.MEMBER:
                self._member_stops_sensing(state)

    def _idle_starts_sensing(self, state: _TypeState) -> None:
        memory = state.wait_memory
        if memory is not None and state.wait_timer.armed:
            # §5.2: recently heard a nearby leader — join that label
            # instead of forming a new context label.
            state.formation_timer.cancel()
            self._become_member(state, memory.label, memory.leader,
                                memory.weight, memory.state)
            return
        # "If a node that senses the activation condition ... has no
        # neighbors detecting the same condition, the node creates a new
        # context label": listen for a randomized formation window first so
        # concurrent first detectors collapse onto the fastest creator.
        if state.config.formation_window <= 0:
            self._create_label(state)
            return
        if not state.formation_timer.armed:
            state.formation_timer.start(
                self._rng.uniform(0, state.config.formation_window))

    def _formation_fired(self, state: _TypeState) -> None:
        if state.role is not Role.IDLE or not state.sensing:
            return
        if state.wait_memory is not None and state.wait_timer.armed:
            self._become_member(state, state.wait_memory.label,
                                state.wait_memory.leader,
                                state.wait_memory.weight,
                                state.wait_memory.state)
            return
        self._create_label(state)

    def _create_label(self, state: _TypeState) -> None:
        state.labels_minted += 1
        new_label = mint_label(state.type_name, self.node_id,
                               state.labels_minted)
        self.record("label_created", type=state.type_name, label=new_label)
        self._become_leader(state, new_label, weight=0,
                            inherited_state=None, via="created")

    def _leader_stops_sensing(self, state: _TypeState) -> None:
        label = state.label
        assert label is not None
        if state.config.relinquish:
            # Explicitly request election of a new leader, handing over the
            # label's weight and persistent state.
            message = Relinquish(context_type=state.type_name, label=label,
                                 leader=self.node_id, weight=state.weight,
                                 state=state.cached_state)
            self.broadcast(RELINQUISH_KIND, message.to_payload(),
                           tx_range=state.config.heartbeat_tx_range)
            self.record("relinquish", type=state.type_name, label=label,
                        weight=state.weight)
            self._stop_leading(state, reason="relinquish")
        else:
            # Takeover-only mode: step down silently; members discover the
            # silence via their receive timers (the Fig. 5 worst case).
            self.record("silent_stepdown", type=state.type_name, label=label)
            self._stop_leading(state, reason="stopped_sensing")
        self._remember(state, label, self.node_id, state.weight,
                       state.cached_state)
        self._clear_group(state)

    def _member_stops_sensing(self, state: _TypeState) -> None:
        label = state.label
        assert label is not None
        self.record("member_leave", type=state.type_name, label=label)
        state.receive_timer.cancel()
        self._notify("on_member_leave", state.type_name, label)
        self._remember(state, label, state.leader_id or -1, state.weight,
                       state.cached_state)
        self._clear_group(state)

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _send_heartbeat(self, state: _TypeState) -> None:
        if state.role is not Role.LEADER or state.label is None:
            return
        state.hb_seq += 1
        beat = Heartbeat(context_type=state.type_name, label=state.label,
                         leader=self.node_id, weight=state.weight,
                         seq=state.hb_seq, state=state.cached_state,
                         hops=state.config.flood_hops,
                         leader_pos=self.mote.position)
        self.broadcast(HEARTBEAT_KIND, beat.to_payload(),
                       tx_range=state.config.heartbeat_tx_range)

    def _on_heartbeat_frame(self, frame) -> None:
        beat = Heartbeat.from_payload(frame.payload)
        if beat is None:
            return
        state = self._types.get(beat.context_type)
        if state is None or beat.leader == self.node_id:
            return
        state.last_hb_time = self.now
        if state.role is Role.LEADER:
            self._leader_hears_heartbeat(state, beat)
        elif state.role is Role.MEMBER:
            self._member_hears_heartbeat(state, beat)
        else:
            self._idle_hears_heartbeat(state, beat)

    def _leader_hears_heartbeat(self, state: _TypeState,
                                beat: Heartbeat) -> None:
        assert state.label is not None
        if beat.label == state.label:
            # Duplicate leader inside our own label: yield immediately to
            # prevent confusion and redundant behavior.  Deterministic
            # tie-break avoids mutual-yield livelock when both heartbeats
            # cross mid-air: the heavier (then lower-id) leader survives.
            if (beat.weight, -beat.leader) >= (state.weight, -self.node_id):
                self.record("yield", type=state.type_name, label=state.label,
                            to=beat.leader)
                self._stop_leading(state, reason="yield")
                self._adopt_group(state, beat)
            else:
                # We win the tie-break: answer immediately so the loser
                # yields now instead of a heartbeat period from now.
                self._defend(state)
            return
        # Different label, same type: the lighter label is spurious —
        # but only when both labels plausibly track the same stimulus
        # (distant same-type entities keep distinct labels).
        if not self._same_stimulus(state, beat):
            return
        if (beat.weight, beat.label) > (state.weight, state.label):
            self.record("label_deleted", type=state.type_name,
                        label=state.label, adopted=beat.label)
            self._stop_leading(state, reason="suppressed")
            self._adopt_group(state, beat)
        else:
            self._defend(state)

    def _member_hears_heartbeat(self, state: _TypeState,
                                beat: Heartbeat) -> None:
        assert state.label is not None
        if beat.label == state.label:
            previous_leader = state.leader_id
            state.leader_id = beat.leader
            if beat.leader_pos is not None:
                state.leader_position = beat.leader_pos
            state.weight = max(state.weight, beat.weight)
            if beat.state is not None:
                state.cached_state = beat.state
                self._notify("on_state_update", state.type_name,
                             state.label, beat.state)
            state.last_label_hb_time = self.now
            state.receive_timer.kick()
            state.receive_deadline = self.now + state.config.receive_timeout
            if state.pending_via == "takeover":
                self.record("takeover_aborted", type=state.type_name,
                            label=state.label, leader=beat.leader)
            state.claim_timer.cancel()
            state.pending_via = None
            state.probe_round = 0
            if previous_leader != beat.leader:
                self._notify("on_leader_update", state.type_name,
                             state.label, beat.leader)
            self._maybe_forward(state, beat)
            return
        # A heavier label of the same type: ours is the spurious one
        # (same-stimulus groups only — see suppression_range).
        if not self._same_stimulus(state, beat):
            return
        if (beat.weight, beat.label) > (state.weight, state.label):
            self.record("switch_label", type=state.type_name,
                        old=state.label, new=beat.label)
            self._notify("on_member_leave", state.type_name, state.label)
            state.receive_timer.cancel()
            self._clear_group(state)
            self._adopt_group(state, beat)

    def _idle_hears_heartbeat(self, state: _TypeState,
                              beat: Heartbeat) -> None:
        if not self._within_join_range(state, beat):
            return
        if state.sensing:
            # We detect the condition and a group already exists: join it.
            self._become_member(state, beat.label, beat.leader, beat.weight,
                                beat.state)
            return
        # Not sensing: remember the nearby label so that if the entity
        # reaches us before the wait timer expires we extend its group
        # instead of minting a duplicate.
        self._remember(state, beat.label, beat.leader, beat.weight,
                       beat.state)
        self._maybe_forward_past_perimeter(state, beat)

    def _maybe_forward(self, state: _TypeState, beat: Heartbeat) -> None:
        """Intra-group flooding: each member rebroadcasts each new
        heartbeat once — "they flood the group to inform current members
        that a leader is alive".  The hop budget is preserved so the flood
        can continue ``h`` hops past the perimeter via non-members."""
        if not state.config.member_rebroadcast:
            return
        if not self._mark_forwarded(state, beat):
            return
        self._rebroadcast(state, beat, hops=beat.hops)

    def _maybe_forward_past_perimeter(self, state: _TypeState,
                                      beat: Heartbeat) -> None:
        """h-hop flooding past the group perimeter by non-members (§5.2;
        the paper defers evaluating it to future work — Ablation A)."""
        if beat.hops <= 0:
            return
        if not self._mark_forwarded(state, beat):
            return
        self._rebroadcast(state, beat, hops=beat.hops - 1)

    def _mark_forwarded(self, state: _TypeState, beat: Heartbeat) -> bool:
        last = state.forwarded_seq.get(beat.label, 0)
        if beat.seq <= last:
            return False
        state.forwarded_seq[beat.label] = beat.seq
        return True

    def _rebroadcast(self, state: _TypeState, beat: Heartbeat,
                     hops: int) -> None:
        forwarded = Heartbeat(
            context_type=beat.context_type, label=beat.label,
            leader=beat.leader, weight=beat.weight, seq=beat.seq,
            state=beat.state, hops=hops, leader_pos=beat.leader_pos,
            forwarded_by=self.node_id)
        delay = self._rng.uniform(0, state.config.rebroadcast_jitter)
        self.sim.schedule(
            delay, self.broadcast, HEARTBEAT_KIND, forwarded.to_payload(),
            tx_range=state.config.heartbeat_tx_range,
            label="gm.rebroadcast")

    # ------------------------------------------------------------------
    # Relinquish / claim
    # ------------------------------------------------------------------
    def _on_relinquish_frame(self, frame) -> None:
        message = Relinquish.from_payload(frame.payload)
        if message is None:
            return
        state = self._types.get(message.context_type)
        if state is None or message.leader == self.node_id:
            return
        if state.role is Role.MEMBER and state.label == message.label:
            state.weight = max(state.weight, message.weight)
            if message.state is not None:
                state.cached_state = message.state
            if state.sensing:
                # Contend to inherit leadership after a random delay; the
                # first claimant's heartbeat cancels the others.
                state.relinquish_time = self.now
                state.pending_via = "claim"
                delay = self._rng.uniform(0, state.config.claim_window)
                state.claim_timer.start(delay)

    def _claim_fired(self, state: _TypeState) -> None:
        via = state.pending_via
        state.pending_via = None
        if state.role is not Role.MEMBER or state.label is None:
            return
        if not state.sensing:
            return
        if via == "takeover":
            self._takeover_step(state)
            return
        if state.last_hb_time > state.relinquish_time:
            return  # someone already claimed (their heartbeat reached us)
        label = state.label
        self.record("claim", type=state.type_name, label=label)
        state.receive_timer.cancel()
        self._notify("on_member_leave", state.type_name, label)
        self._become_leader(state, label, weight=state.weight,
                            inherited_state=state.cached_state, via="claim")

    # ------------------------------------------------------------------
    # Timer expiries
    # ------------------------------------------------------------------
    def _receive_expired(self, state: _TypeState) -> None:
        """Leader silence: take over leadership of the *same* label.

        With ``takeover_probes > 0`` the takeover is preceded by a short
        probe cycle: broadcast a LeaderQuery, wait a jittered fraction of
        the claim window, and usurp only if neither a defence heartbeat
        nor a fresh member vouch arrives.  Losing two consecutive
        heartbeats to channel noise is rare but not negligible; usurping
        on the spot made every such streak a duplicate-leader window.
        """
        if state.role is not Role.MEMBER or state.label is None:
            return
        if not state.sensing:
            # We should have left already (sensing check races the timer);
            # leave instead of taking over a label we cannot serve.
            self._member_stops_sensing(state)
            return
        if state.config.takeover_probes <= 0:
            self._takeover(state)
            return
        state.probe_round = 0
        state.probe_time = self.now
        self._takeover_step(state)

    def _takeover_step(self, state: _TypeState) -> None:
        """One probe round, or the takeover itself once rounds run out."""
        if state.probe_round >= state.config.takeover_probes:
            self._takeover(state)
            return
        state.probe_round += 1
        self._send_query(state)
        state.pending_via = "takeover"
        # Jittered so concurrent probers interleave; bounded well below
        # the claim window ceiling to keep the post-death takeover latency
        # within the relinquish-vs-takeover gap the tests assert.
        delay = self._rng.uniform(0.35, 1.0) * state.config.claim_window
        state.claim_timer.start(delay)

    def _takeover(self, state: _TypeState) -> None:
        label = state.label
        assert label is not None
        self.record("takeover", type=state.type_name, label=label,
                    inherited_weight=state.weight)
        self._notify("on_member_leave", state.type_name, label)
        self._become_leader(state, label, weight=state.weight,
                            inherited_state=state.cached_state,
                            via="takeover")

    # ------------------------------------------------------------------
    # Liveness probes (takeover hardening)
    # ------------------------------------------------------------------
    def _send_query(self, state: _TypeState) -> None:
        assert state.label is not None
        query = LeaderQuery(context_type=state.type_name, label=state.label,
                            sender=self.node_id)
        self.record("probe", type=state.type_name, label=state.label,
                    round=state.probe_round)
        self.broadcast(QUERY_KIND, query.to_payload(),
                       tx_range=state.config.heartbeat_tx_range)

    def _on_query_frame(self, frame) -> None:
        query = LeaderQuery.from_payload(frame.payload)
        if query is None or query.sender == self.node_id:
            return
        state = self._types.get(query.context_type)
        if state is None or state.label != query.label:
            return
        if state.role is Role.LEADER:
            # Alive after all: a defence heartbeat cancels the takeover
            # (and every other member's pending probe in one broadcast).
            self._defend(state)
            return
        if state.role is not Role.MEMBER:
            return
        # Vouch only for *direct*, reasonably fresh observations; stale
        # vouches would chain between simultaneously-expiring members and
        # stretch the takeover latency after a real death.
        cfg = state.config
        if state.last_label_hb_time < 0:
            return
        remaining = cfg.receive_timeout - (self.now - state.last_label_hb_time)
        if remaining < 0.25 * cfg.receive_timeout:
            return
        delay = self._rng.uniform(0, cfg.rebroadcast_jitter)
        self.sim.schedule(delay, self._send_vouch, state, state.label,
                          label="gm.vouch_reply")

    def _send_vouch(self, state: _TypeState, label: str) -> None:
        # Re-check at send time: our own state may have moved on during
        # the jitter delay.
        if (state.role is not Role.MEMBER or state.label != label
                or state.leader_id is None
                or state.last_label_hb_time < 0):
            return
        vouch = LeaderVouch(context_type=state.type_name, label=label,
                            leader=state.leader_id, weight=state.weight,
                            age=self.now - state.last_label_hb_time,
                            sender=self.node_id)
        self.broadcast(VOUCH_KIND, vouch.to_payload(),
                       tx_range=state.config.heartbeat_tx_range)

    def _on_vouch_frame(self, frame) -> None:
        vouch = LeaderVouch.from_payload(frame.payload)
        if vouch is None or vouch.sender == self.node_id:
            return
        state = self._types.get(vouch.context_type)
        if state is None or state.role is not Role.MEMBER:
            return
        if state.label != vouch.label:
            return
        cfg = state.config
        # Age-discounted restart: trust the voucher's observation as if it
        # were our own, so the receive deadline never extends past
        # (last heartbeat anyone heard) + receive_timeout.  Only *extend*;
        # a stale vouch must not shrink a healthier deadline.
        candidate = (self.now - vouch.age) + cfg.receive_timeout
        extends = candidate > max(state.receive_deadline, self.now)
        if not extends:
            return
        if state.pending_via == "takeover":
            self.record("takeover_aborted", type=state.type_name,
                        label=state.label, voucher=vouch.sender)
        state.claim_timer.cancel()
        state.pending_via = None
        state.probe_round = 0
        state.receive_timer.start(candidate - self.now)
        state.receive_deadline = candidate
        state.weight = max(state.weight, vouch.weight)

    def _defend(self, state: _TypeState) -> None:
        """Immediate (rate-limited) heartbeat answering a liveness doubt."""
        if state.role is not Role.LEADER:
            return
        cfg = state.config
        if self.now - state.last_defence_time < 0.25 * cfg.heartbeat_period:
            return
        state.last_defence_time = self.now
        self.record("defend", type=state.type_name, label=state.label)
        self._send_heartbeat(state)

    def _wait_expired(self, state: _TypeState) -> None:
        """Memory of the nearby label fades; future stimuli mint new
        labels.  'The choice of the wait timer depends on how far to
        maintain memory of nearby events.'"""
        state.wait_memory = None

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------
    def _become_leader(self, state: _TypeState, label: str, weight: int,
                       inherited_state: Optional[dict], via: str) -> None:
        state.role = Role.LEADER
        state.label = label
        state.leader_id = self.node_id
        state.weight = weight
        state.cached_state = inherited_state
        state.receive_timer.cancel()
        state.claim_timer.cancel()
        state.formation_timer.cancel()
        state.pending_via = None
        state.probe_round = 0
        cfg = state.config
        state.heartbeat_timer = self.mote.periodic(
            cfg.heartbeat_period, lambda s=state: self._send_heartbeat(s),
            label=f"gm.heartbeat.{state.type_name}",
            initial_delay=self._rng.uniform(0, cfg.announce_jitter))
        state.heartbeat_timer.start()
        self._leadership_gauge.inc()
        self._led_since[state.type_name] = self.now
        self.record("leader_start", type=state.type_name, label=label,
                    via=via, weight=weight)
        self._notify("on_leader_start", state.type_name, label,
                     inherited_state, weight, via)

    def _stop_leading(self, state: _TypeState, reason: str) -> None:
        label = state.label
        assert label is not None
        if state.heartbeat_timer is not None:
            state.heartbeat_timer.stop()
            state.heartbeat_timer = None
        state.role = Role.IDLE
        self._leadership_gauge.dec()
        led_since = self._led_since.pop(state.type_name, None)
        if led_since is not None:
            self._tenure_metric.observe(self.now - led_since, reason)
        self.record("leader_stop", type=state.type_name, label=label,
                    reason=reason)
        self._notify("on_leader_stop", state.type_name, label, reason)

    def _become_member(self, state: _TypeState, label: str, leader: int,
                       weight: int, cached_state: Optional[dict]) -> None:
        state.formation_timer.cancel()
        state.role = Role.MEMBER
        state.label = label
        state.leader_id = leader
        state.leader_position = None
        state.weight = weight
        state.cached_state = cached_state
        state.receive_timer.kick()
        state.receive_deadline = self.now + state.config.receive_timeout
        state.last_label_hb_time = self.now
        state.pending_via = None
        state.probe_round = 0
        self.record("member_join", type=state.type_name, label=label,
                    leader=leader)
        self._notify("on_member_join", state.type_name, label, leader)

    def _adopt_group(self, state: _TypeState, beat: Heartbeat) -> None:
        """After yielding/suppression: join the surviving group if we still
        sense the entity, otherwise just remember it."""
        if state.sensing:
            self._become_member(state, beat.label, beat.leader, beat.weight,
                                beat.state)
        else:
            self._clear_group(state)
            self._remember(state, beat.label, beat.leader, beat.weight,
                           beat.state)

    def _clear_group(self, state: _TypeState) -> None:
        state.role = Role.IDLE
        state.label = None
        state.leader_id = None
        state.leader_position = None
        state.weight = 0
        state.cached_state = None
        state.pending_via = None
        state.probe_round = 0

    def _remember(self, state: _TypeState, label: str, leader: int,
                  weight: int, cached_state: Optional[dict]) -> None:
        state.wait_memory = _WaitMemory(label=label, leader=leader,
                                        weight=weight, state=cached_state)
        state.wait_timer.kick()

    def _same_stimulus(self, state: _TypeState, beat: Heartbeat) -> bool:
        """Could ``beat``'s label and ours track the same physical entity?

        True when the sending leader's position is within the configured
        suppression range (or the gate is disabled / position unknown —
        degrade to the paper's behavior, where radio reach itself implied
        proximity).
        """
        limit = state.config.suppression_range
        if limit is None or beat.leader_pos is None:
            return True
        return distance(self.mote.position, beat.leader_pos) <= limit

    def _within_join_range(self, state: _TypeState,
                           beat: Heartbeat) -> bool:
        """May this node join/remember ``beat``'s label?"""
        limit = state.config.join_range
        if limit is None or beat.leader_pos is None:
            return True
        return distance(self.mote.position, beat.leader_pos) <= limit

    # ------------------------------------------------------------------
    def _notify(self, method: str, *args: Any) -> None:
        for listener in self._listeners:
            getattr(listener, method)(*args)
