"""Scripted fault plans.

A :class:`FaultPlan` is a validated, time-ordered script of fault events
— the declarative half of the chaos subsystem.  Plans are plain frozen
data: building one touches no simulator state, so the same plan can be
armed against many runs (the determinism property the tests pin down:
same seed + same plan ⇒ identical trace).

Event kinds mirror the failure modes the paper's §6.2 robustness
discussion cares about, plus the classic deployment hazards:

=================  ====================================================
event              models
=================  ====================================================
:class:`NodeCrash` a mote dying (battery/stomped/hardware fault)
:class:`NodeReboot` a watchdog power-cycle bringing a dead mote back
:class:`LeaderCrash` "the current leader fails" — the victim is resolved
                   at fire time so plans need not predict elections
:class:`RegionJam` a localized interferer/jammer (extra loss ≤ blackout)
:class:`LossSpike` field-wide channel degradation (weather, noise floor)
:class:`EnergyDrain` battery leakage charged to one mote's ledger
:class:`ClockSkew` oscillator drift stretching one mote's timers
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

Position = Tuple[float, float]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class NodeCrash:
    """Kill one mote at ``time``."""

    time: float
    node: int

    def validate(self) -> None:
        _require(self.time >= 0, f"crash time must be >= 0: {self.time}")


@dataclass(frozen=True)
class NodeReboot:
    """Power-cycle a (dead) mote at ``time``; no-op if it is alive."""

    time: float
    node: int

    def validate(self) -> None:
        _require(self.time >= 0, f"reboot time must be >= 0: {self.time}")


@dataclass(frozen=True)
class LeaderCrash:
    """Kill whichever live mote leads a ``context_type`` label at ``time``.

    The victim is resolved when the event fires (elections are seed
    dependent; a plan cannot name the winner in advance).  When several
    labels of the type are led concurrently, the lowest-id leader dies —
    deterministic, so traces replay exactly.  ``reboot_after`` optionally
    schedules the victim's power-cycle that many seconds later.
    """

    time: float
    context_type: str
    reboot_after: Optional[float] = None

    def validate(self) -> None:
        _require(self.time >= 0,
                 f"leader crash time must be >= 0: {self.time}")
        _require(bool(self.context_type), "context type must be non-empty")
        _require(self.reboot_after is None or self.reboot_after > 0,
                 f"reboot_after must be positive: {self.reboot_after}")


@dataclass(frozen=True)
class RegionJam:
    """Extra reception loss for receivers within ``radius`` of ``center``
    during ``[time, time + duration)``.  ``extra_loss=1.0`` is a regional
    blackout."""

    time: float
    duration: float
    center: Position
    radius: float
    extra_loss: float = 1.0

    def validate(self) -> None:
        _require(self.time >= 0, f"jam time must be >= 0: {self.time}")
        _require(self.duration > 0,
                 f"jam duration must be positive: {self.duration}")
        _require(self.radius > 0,
                 f"jam radius must be positive: {self.radius}")
        _require(0.0 <= self.extra_loss <= 1.0,
                 f"jam extra loss must be in [0, 1]: {self.extra_loss}")


@dataclass(frozen=True)
class LossSpike:
    """Field-wide extra reception loss during ``[time, time + duration)``."""

    time: float
    duration: float
    extra_loss: float

    def validate(self) -> None:
        _require(self.time >= 0, f"spike time must be >= 0: {self.time}")
        _require(self.duration > 0,
                 f"spike duration must be positive: {self.duration}")
        _require(0.0 <= self.extra_loss <= 1.0,
                 f"spike extra loss must be in [0, 1]: {self.extra_loss}")


@dataclass(frozen=True)
class EnergyDrain:
    """Charge ``joules`` of parasitic drain to one mote's energy ledger."""

    time: float
    node: int
    joules: float

    def validate(self) -> None:
        _require(self.time >= 0, f"drain time must be >= 0: {self.time}")
        _require(self.joules >= 0,
                 f"drain joules must be >= 0: {self.joules}")


@dataclass(frozen=True)
class ClockSkew:
    """Multiply one mote's timer delays by ``factor`` (oscillator drift).

    ``factor > 1`` slows the mote's clock — heartbeats stretch, receive
    timers fire late; ``factor < 1`` speeds it up.
    """

    time: float
    node: int
    factor: float

    def validate(self) -> None:
        _require(self.time >= 0, f"skew time must be >= 0: {self.time}")
        _require(self.factor > 0,
                 f"skew factor must be positive: {self.factor}")


FaultEvent = Union[NodeCrash, NodeReboot, LeaderCrash, RegionJam,
                   LossSpike, EnergyDrain, ClockSkew]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted script of fault events."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for event in self.events:
            event.validate()
        ordered = tuple(sorted(
            self.events, key=lambda e: (e.time, type(e).__name__)))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultPlan":
        return cls(events=tuple(events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def until(self, horizon: float) -> "FaultPlan":
        """The sub-plan of events firing strictly before ``horizon``."""
        return FaultPlan(events=tuple(e for e in self.events
                                      if e.time < horizon))

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(events=self.events + other.events)


def leader_crash_schedule(context_type: str, start: float, period: float,
                          count: int,
                          reboot_after: Optional[float] = None
                          ) -> FaultPlan:
    """A periodic leader-killing plan: the chaos experiment's workload.

    Crashes the current ``context_type`` leader every ``period`` seconds,
    ``count`` times, starting at ``start``.  With ``reboot_after``, each
    victim power-cycles that many seconds later (so the population does
    not monotonically shrink during long sweeps).
    """
    if period <= 0:
        raise ValueError(f"crash period must be positive: {period}")
    if count < 1:
        raise ValueError(f"crash count must be >= 1: {count}")
    events: List[FaultEvent] = [
        LeaderCrash(time=start + i * period, context_type=context_type,
                    reboot_after=reboot_after)
        for i in range(count)]
    return FaultPlan(events=tuple(events))
