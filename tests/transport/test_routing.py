"""Unit tests for greedy geographic routing."""

from repro.sensing import SensorField
from repro.sim import Simulator
from repro.transport import GeoRouter


def build(columns=8, rows=3, communication_radius=1.5, loss=0.0):
    sim = Simulator(seed=5)
    field = SensorField(sim, communication_radius=communication_radius,
                        base_loss_rate=loss)
    field.deploy_grid(columns, rows)
    routers = {}
    for mote in field.mote_list():
        router = GeoRouter(mote)
        router.start()
        routers[mote.node_id] = router
    return sim, field, routers


def test_route_to_point_delivers_at_closest_node():
    sim, field, routers = build()
    received = []
    for router in routers.values():
        router.register_delivery(
            "probe", lambda payload, origin, r=router: received.append(
                (r.node_id, payload, origin)))
    routers[0].route_to_point((6.2, 1.1), "probe", {"x": 1})
    sim.run(until=5.0)
    assert len(received) == 1
    node, payload, origin = received[0]
    # Node at (6, 1) is the closest grid point to (6.2, 1.1).
    assert field.motes[node].position == (6.0, 1.0)
    assert payload == {"x": 1}
    assert origin == 0


def test_route_to_node_unicast():
    sim, field, routers = build()
    received = []
    routers[15].register_delivery(
        "msg", lambda payload, origin: received.append(payload))
    routers[0].route_to_node(15, "msg", {"hello": True})
    sim.run(until=5.0)
    assert received == [{"hello": True}]


def test_multi_hop_forwarding_counts():
    sim, field, routers = build()
    routers[7].register_delivery("m", lambda p, o: None)
    routers[0].route_to_node(7, "m", {})
    sim.run(until=5.0)
    total_forwarded = sum(r.forwarded for r in routers.values())
    # 0 → 7 is seven grid units with radio range 1.5: several hops.
    assert total_forwarded >= 4
    assert routers[7].delivered == 1


def test_local_delivery_without_radio():
    sim, field, routers = build()
    received = []
    routers[0].register_delivery("self", lambda p, o: received.append(p))
    routers[0].route_to_node(0, "self", {"n": 1})
    assert received == [{"n": 1}]


def test_unknown_destination_node_recorded_as_dead_end():
    sim, field, routers = build()
    routers[0].route_to_node(999, "m", {})
    assert routers[0].dead_ends == 1


def test_undeliverable_kind_recorded():
    sim, field, routers = build()
    routers[0].route_to_node(1, "nobody-listens", {})
    sim.run(until=5.0)
    records = list(sim.trace_records("geo.undeliverable"))
    assert len(records) == 1


def test_ttl_exhaustion_drops():
    sim, field, routers = build()
    routers[7].register_delivery("m", lambda p, o: None)
    routers[0].route_to_node(7, "m", {}, ttl=2)
    sim.run(until=5.0)
    assert routers[7].delivered == 0
    assert sum(r.dead_ends for r in routers.values()) >= 1


def test_duplicate_delivery_registration_rejected():
    sim, field, routers = build()
    routers[0].register_delivery("k", lambda p, o: None)
    try:
        routers[0].register_delivery("k", lambda p, o: None)
    except ValueError:
        return
    raise AssertionError("expected ValueError")
