"""Figure 3 — tracked tank trajectory vs real trajectory.

Paper: a target emulating a T-72 crosses a mote grid on the line y = 0.5;
the base station's reported positions track the line with visible
quantization error and loss-induced anomalies.

Shape checks: the tracked trajectory exists, hugs y = 0.5 within half a
grid unit on average, and progresses monotonically in x.
"""

from conftest import emit

from repro.experiments import figure3


def test_figure3_tracked_trajectory(benchmark):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)
    emit("Figure 3 — tracked tank trajectory", result.format_table())

    comparison = result.comparison
    assert len(comparison.points) >= 8, "too few reports to plot a track"
    # Tracking error is bounded: the paper's track stays within the row
    # band around the real path.
    assert comparison.mean_error < 0.5
    assert comparison.max_error < 1.5
    # The tracked x positions progress with the target overall.  Small
    # backward steps are the paper's "direction anomalies ... due to
    # message loss which causes sensor position aggregation to use a
    # subset of reporting sensors only" — they are expected.
    xs = [tracked[0] for _, tracked, _ in comparison.points]
    assert all(b - a > -1.0 for a, b in zip(xs, xs[1:]))
    assert xs[-1] - xs[0] > 5.0
    # The run kept a single coherent context label.
    assert result.run.coherent
