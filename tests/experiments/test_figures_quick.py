"""Smoke tests for the per-figure entry points (quick mode).

The full sweeps run in ``benchmarks/``; these tests only verify the entry
points produce well-formed results and renderable tables at quick scale.
"""

from repro.experiments import figure3, figure4, figure6, table1


def test_figure3_structure():
    result = figure3(seed=2)
    table = result.format_table()
    assert "Figure 3" in table
    assert result.comparison.points
    assert result.comparison.mean_error < 1.0


def test_figure4_quick_structure():
    result = figure4(quick=True)
    assert len(result.cells) == 4
    for kmh in (33, 50):
        for propagate in (True, False):
            cell = result.cell(kmh, propagate)
            assert 0.0 <= cell.success_pct <= 100.0
    assert "Figure 4" in result.format_table()


def test_table1_quick_structure():
    result = table1(quick=True)
    assert {row.speed_kmh for row in result.rows} == {33, 50}
    for row in result.rows:
        assert row.metrics.link_utilization_pct < 50.0
        assert row.metrics.frames_sent > 0
    assert "Table 1" in result.format_table()


def test_figure6_quick_structure():
    result = figure6(quick=True)
    assert result.points
    table = result.format_table()
    assert "CR:SR" in table
    for point in result.points:
        assert point.max_speed >= 0.0
        assert point.search.evaluated
