"""Discrete-event simulation substrate.

The simulator replaces the paper's MICA-mote testbed with a deterministic
laptop-scale model: a single virtual clock, an event heap with stable
tie-breaking, named seeded random streams and a structured trace log.
"""

from .engine import (SCHEDULER_MODES, SimulationError, Simulator, TimerHandle,
                     TimerService)
from .events import Event, TraceRecord
from .rng import RandomStreams, derive_seed
from .timers import OneShotTimer, PeriodicTimer, WatchdogTimer
from .tracefile import (TraceQuery, dump_trace, load_trace, query,
                        trace_digest)

__all__ = [
    "Event",
    "OneShotTimer",
    "PeriodicTimer",
    "RandomStreams",
    "SCHEDULER_MODES",
    "SimulationError",
    "Simulator",
    "TimerHandle",
    "TimerService",
    "TraceQuery",
    "TraceRecord",
    "WatchdogTimer",
    "derive_seed",
    "dump_trace",
    "load_trace",
    "query",
    "trace_digest",
]
