"""Unit tests for the DSL compiler and body interpreter."""

import pytest

from repro.core import (ContextTypeDef, PortInvocation, TimerInvocation,
                        WhenInvocation)
from repro.core.runtime import ObjectContext
from repro.aggregation import AggregateStore, AggregateVarSpec, \
    default_registry
from repro.lang import CompileError, compile_source, default_library
from repro.node import Mote
from repro.radio import Medium
from repro.sim import Simulator

FIGURE2 = """
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            MySend(pursuer, self:label, location);
        }
    end
end context
"""


def make_mote(**sensors):
    sim = Simulator()
    medium = Medium(sim, communication_radius=1.0)
    mote = Mote(sim, 0, (0.0, 0.0), medium)
    for name, value in sensors.items():
        mote.install_sensor(name, (value if callable(value)
                                   else (lambda v=value: v)))
    return mote


def make_ctx(specs=None, reports=None):
    """An ObjectContext wired to in-memory sinks for testing bodies."""
    specs = specs or [AggregateVarSpec("location", "avg", "position",
                                       confidence=1, freshness=10.0)]
    store = AggregateStore(specs, default_registry())
    sent = []
    invoked = []
    state_box = {"state": None}
    records = []
    ctx = ObjectContext(
        context_type="tracker", label="tracker#1.1", node_id=1,
        clock=lambda: 1.0, store=store,
        send_fn=sent.append,
        invoke_fn=lambda *args: invoked.append(args),
        set_state_fn=lambda s: state_box.__setitem__("state", s),
        get_state_fn=lambda: state_box["state"],
        record_fn=lambda *a, **k: records.append((a, k)))
    return ctx, store, sent, invoked, state_box


class TestCompile:
    def test_figure2_compiles_to_context_def(self):
        (definition,) = compile_source(FIGURE2)
        assert isinstance(definition, ContextTypeDef)
        assert definition.name == "tracker"
        spec = definition.aggregate("location")
        assert spec.confidence == 2
        assert spec.freshness == pytest.approx(1.0)
        method = definition.objects[0].methods[0]
        assert isinstance(method.invocation, TimerInvocation)
        assert method.invocation.period == pytest.approx(5.0)

    def test_activation_reads_sense_library(self):
        (definition,) = compile_source(FIGURE2)
        sensing = make_mote(magnetic_detect=True)
        silent = make_mote(magnetic_detect=False)
        assert definition.activation(sensing) is True
        assert definition.activation(silent) is False

    def test_activation_missing_sensor_is_false(self):
        (definition,) = compile_source(FIGURE2)
        bare = make_mote()
        assert definition.activation(bare) is False

    def test_threshold_activation(self):
        source = """
        begin context fire
            activation: temperature() > 180 and light()
        end context
        """
        (definition,) = compile_source(source)
        hot_lit = make_mote(temperature=200.0, light=True)
        hot_dark = make_mote(temperature=200.0, light=False)
        cold_lit = make_mote(temperature=20.0, light=True)
        assert definition.activation(hot_lit) is True
        assert definition.activation(hot_dark) is False
        assert definition.activation(cold_lit) is False

    def test_multiple_sensors_per_aggregate_rejected(self):
        source = """
        begin context c
            activation: light()
            v : avg(a, b) confidence=1, freshness=1s
        end context
        """
        with pytest.raises(CompileError):
            compile_source(source)

    def test_unknown_attribute_rejected(self):
        source = """
        begin context c
            activation: light()
            v : avg(a) wibble=3
        end context
        """
        with pytest.raises(CompileError):
            compile_source(source)

    def test_when_and_port_invocations_compile(self):
        source = """
        begin context c
            activation: light()
            v : avg(light) confidence=1, freshness=1s
            begin object o
                invocation: v > 10
                alarm() { log(v); }
                invocation: PORT(3)
                on_msg() { log(args); }
            end
        end context
        """
        (definition,) = compile_source(source)
        alarm, on_msg = definition.objects[0].methods
        assert isinstance(alarm.invocation, WhenInvocation)
        assert isinstance(on_msg.invocation, PortInvocation)

    def test_custom_sense_library(self):
        library = default_library()
        library.register("always", lambda mote: True)
        source = """
        begin context c
            activation: always()
        end context
        """
        (definition,) = compile_source(source, library=library)
        assert definition.activation(make_mote()) is True


class TestBodies:
    def test_my_send_includes_named_values(self):
        (definition,) = compile_source(FIGURE2)
        ctx, store, sent, _, _ = make_ctx()
        store.add_report(1, {"location": (2.0, 3.0)}, 0.5)
        method = definition.objects[0].methods[0]
        method.body(ctx)
        assert len(sent) == 1
        assert sent[0]["location"] == (2.0, 3.0)

    def test_if_statement_and_assignment(self):
        source = """
        begin context c
            activation: light()
            v : avg(light) confidence=1, freshness=10s
            begin object o
                invocation: TIMER(1s)
                f() {
                    if (v > 10) { hits = 1; } else { hits = 0; }
                }
            end
        end context
        """
        (definition,) = compile_source(source)
        specs = [AggregateVarSpec("v", "avg", "light", confidence=1,
                                  freshness=10.0)]
        ctx, store, _, _, _ = make_ctx(specs)
        store.add_report(1, {"v": 20.0}, 0.5)
        definition.objects[0].methods[0].body(ctx)
        assert ctx.locals["hits"] == 1

    def test_invalid_aggregate_makes_condition_false(self):
        source = """
        begin context c
            activation: light()
            v : avg(light) confidence=5, freshness=1s
            begin object o
                invocation: v > 10
                f() { log(v); }
            end
        end context
        """
        (definition,) = compile_source(source)
        specs = [AggregateVarSpec("v", "avg", "light", confidence=5,
                                  freshness=1.0)]
        ctx, store, _, _, _ = make_ctx(specs)
        store.add_report(1, {"v": 100.0}, 0.9)  # below critical mass
        method = definition.objects[0].methods[0]
        assert method.invocation.predicate(ctx) is False

    def test_set_state_builtin(self):
        source = """
        begin context c
            activation: light()
            begin object o
                invocation: TIMER(1s)
                f() { setState(count, 3); }
            end
        end context
        """
        (definition,) = compile_source(source)
        ctx, _, _, _, state_box = make_ctx()
        definition.objects[0].methods[0].body(ctx)
        assert state_box["state"] == {"count": 3}

    def test_invoke_builtin(self):
        source = """
        begin context c
            activation: light()
            begin object o
                invocation: TIMER(1s)
                f() { invoke('fire#1.1', 2, level, 9); }
            end
        end context
        """
        (definition,) = compile_source(source)
        ctx, _, _, invoked, _ = make_ctx()
        definition.objects[0].methods[0].body(ctx)
        assert invoked == [("fire#1.1", 2, {"level": 9})]

    def test_valid_and_read_builtins(self):
        source = """
        begin context c
            activation: light()
            v : avg(light) confidence=1, freshness=10s
            begin object o
                invocation: TIMER(1s)
                f() {
                    ok = valid(v);
                    value = read(v);
                }
            end
        end context
        """
        (definition,) = compile_source(source)
        specs = [AggregateVarSpec("v", "avg", "light", confidence=1,
                                  freshness=10.0)]
        ctx, store, _, _, _ = make_ctx(specs)
        store.add_report(1, {"v": 7.0}, 0.5)
        definition.objects[0].methods[0].body(ctx)
        assert ctx.locals["ok"] is True
        assert ctx.locals["value"] == pytest.approx(7.0)
