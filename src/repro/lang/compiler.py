"""Compiler from EnviroTrack programs to runtime declarations.

Plays the role of the paper's preprocessor (§5.1): it takes a parsed
context description and emits the structures the middleware initializes
from — :class:`ContextTypeDef` with compiled activation conditions,
:class:`AggregateVarSpec` QoS declarations, and tracking-object methods
whose bodies run in a small interpreter against the
:class:`ObjectContext`.  References to aggregate state variables become
middleware reads "in accordance with [their] specified tracking QoS",
exactly as the preprocessor patches NesC templates.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..aggregation import AggregateVarSpec
from ..core import (ContextTypeDef, MethodDef, PortInvocation,
                    TimerInvocation, TrackingObjectDef, WhenInvocation)
from ..core.runtime import ObjectContext
from ..groups import GroupConfig
from ..node import Mote
from .ast import (AggregateDecl, Assignment, Attribute, Binary, Call,
                  CallStatement, ContextDecl, Expr, FunctionDecl,
                  IfStatement, Index, Literal, Name, ObjectDecl, Program,
                  SelfLabel, Statement, Unary)
from .parser import parse_source
from .stdlib import DEFAULT_LIBRARY, SenseLibrary


class CompileError(ValueError):
    """Raised for semantic errors in an otherwise well-formed program."""


class EvalError(RuntimeError):
    """Raised when a body/condition cannot be evaluated at run time."""


#: Attributes accepted on aggregate variable declarations.
_KNOWN_ATTRIBUTES = {"confidence", "freshness"}


# ----------------------------------------------------------------------
# Activation-condition evaluation (node scope: the local mote)
# ----------------------------------------------------------------------
def _eval_node_expr(expr: Expr, mote: Mote, library: SenseLibrary) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Call):
        args = [_eval_node_expr(arg, mote, library) for arg in expr.args]
        if expr.name in library:
            return library.get(expr.name)(mote, *args)
        if mote.has_sensor(expr.name):
            return mote.read_sensor(expr.name)
        raise LookupError(
            f"unknown sense function or sensor {expr.name!r}")
    if isinstance(expr, Name):
        if mote.has_sensor(expr.ident):
            return mote.read_sensor(expr.ident)
        raise LookupError(f"unknown sensor {expr.ident!r}")
    if isinstance(expr, Unary):
        operand = _eval_node_expr(expr.operand, mote, library)
        return (not operand) if expr.op == "not" else -operand
    if isinstance(expr, Binary):
        return _eval_binary(
            expr, lambda e: _eval_node_expr(e, mote, library))
    if isinstance(expr, Index):
        base = _eval_node_expr(expr.base, mote, library)
        return base[int(_eval_node_expr(expr.index, mote, library))]
    raise EvalError(f"expression not allowed in activation: {expr!r}")


def _eval_binary(expr: Binary, evaluate: Callable[[Expr], Any]) -> Any:
    op = expr.op
    if op == "and":
        left = evaluate(expr.left)
        return evaluate(expr.right) if left else left
    if op == "or":
        left = evaluate(expr.left)
        return left if left else evaluate(expr.right)
    left = evaluate(expr.left)
    right = evaluate(expr.right)
    # Null-propagation: an invalid aggregate read (None) makes comparisons
    # false and arithmetic null, so DSL conditions treat "not positively
    # confirmed" as simply not satisfied.
    if op in ("<", ">", "<=", ">=", "==", "!="):
        if left is None or right is None:
            return op == "!=" and not (left is None and right is None)
        return {"<": left < right, ">": left > right,
                "<=": left <= right, ">=": left >= right,
                "==": left == right, "!=": left != right}[op]
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    raise EvalError(f"unknown operator {op!r}")


def compile_condition(expr: Expr,
                      library: SenseLibrary) -> Callable[[Mote], bool]:
    """Compile an activation/deactivation condition to a mote predicate.

    Missing sensors read as False rather than crashing a sensing check —
    heterogeneous deployments leave some motes without some sensors.
    """

    def condition(mote: Mote) -> bool:
        try:
            return bool(_eval_node_expr(expr, mote, library))
        except LookupError:
            return False

    return condition


# ----------------------------------------------------------------------
# Object-scope evaluation (leader scope: the ObjectContext)
# ----------------------------------------------------------------------
class _BodyEvaluator:
    """Interprets method bodies and invocation conditions on a leader."""

    def __init__(self, ctx: ObjectContext,
                 extra: Optional[Dict[str, Any]] = None) -> None:
        self.ctx = ctx
        self.extra = extra or {}

    # -- expressions ---------------------------------------------------
    def eval(self, expr: Expr) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, SelfLabel):
            return self.ctx.label
        if isinstance(expr, Name):
            return self._resolve_name(expr.ident)
        if isinstance(expr, Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, Index):
            base = self.eval(expr.base)
            if base is None:
                return None
            return base[int(self.eval(expr.index))]
        if isinstance(expr, Unary):
            operand = self.eval(expr.operand)
            if expr.op == "not":
                return not operand
            return None if operand is None else -operand
        if isinstance(expr, Binary):
            return _eval_binary(expr, self.eval)
        if isinstance(expr, Call):
            return self._eval_call(expr)
        raise EvalError(f"cannot evaluate {expr!r}")

    def _resolve_name(self, ident: str) -> Any:
        if ident in self.extra:
            return self.extra[ident]
        if ident in self.ctx.locals:
            return self.ctx.locals[ident]
        if ident in self.ctx.aggregate_names():
            return self.ctx.value(ident)
        # Symbolic constant (e.g. the ``pursuer`` destination in MySend).
        return ident

    def _eval_attribute(self, expr: Attribute) -> Any:
        if isinstance(expr.base, Name) \
                and expr.base.ident in self.ctx.aggregate_names():
            result = self.ctx.read(expr.base.ident)
            if expr.attr == "valid":
                return result.valid
            if expr.attr == "value":
                return result.value
            if expr.attr == "contributors":
                return result.contributors
            raise EvalError(
                f"unknown aggregate attribute {expr.attr!r}")
        base = self.eval(expr.base)
        if isinstance(base, dict):
            return base.get(expr.attr)
        raise EvalError(f"cannot read attribute {expr.attr!r} of {base!r}")

    # -- builtin calls ---------------------------------------------------
    def _eval_call(self, call: Call) -> Any:
        name = call.name
        if name == "MySend":
            return self._builtin_my_send(call.args)
        if name == "setState":
            return self._builtin_set_state(call.args)
        if name == "invoke":
            return self._builtin_invoke(call.args)
        if name == "log":
            values = {f"value{i}": self.eval(arg)
                      for i, arg in enumerate(call.args)}
            self.ctx.log("dsl", **values)
            return None
        if name == "valid":
            return self._qos_arg(call.args, "valid").valid
        if name == "read":
            result = self._qos_arg(call.args, "read")
            return result.value if result.valid else None
        if name == "contributors":
            return self._qos_arg(call.args, "contributors").contributors
        raise EvalError(f"unknown function {name!r} in object body")

    def _qos_arg(self, args: Sequence[Expr], fn: str):
        if len(args) != 1 or not isinstance(args[0], Name):
            raise EvalError(f"{fn}() takes one aggregate variable name")
        return self.ctx.read(args[0].ident)

    def _builtin_my_send(self, args: Sequence[Expr]) -> None:
        """``MySend(pursuer, self:label, location, …)`` (Figure 2)."""
        if len(args) < 2:
            raise EvalError("MySend(dest, self:label, values...)")
        values: Dict[str, Any] = {}
        for i, arg in enumerate(args[2:]):
            if isinstance(arg, Name):
                values[arg.ident] = self.eval(arg)
            else:
                values[f"value{i}"] = self.eval(arg)
        self.ctx.my_send(values)

    def _builtin_set_state(self, args: Sequence[Expr]) -> None:
        """``setState(key1, value1, key2, value2, …)``."""
        if len(args) % 2 != 0:
            raise EvalError("setState() takes key/value pairs")
        state: Dict[str, Any] = dict(self.ctx.state or {})
        for key_expr, value_expr in zip(args[::2], args[1::2]):
            if isinstance(key_expr, Name):
                key = key_expr.ident
            else:
                key = str(self.eval(key_expr))
            state[key] = self.eval(value_expr)
        self.ctx.set_state(state)

    def _builtin_invoke(self, args: Sequence[Expr]) -> None:
        """``invoke(dest_label, port, key1, value1, …)``."""
        if len(args) < 2 or (len(args) - 2) % 2 != 0:
            raise EvalError("invoke(dest_label, port, key/value pairs...)")
        dest = self.eval(args[0])
        port = int(self.eval(args[1]))
        payload: Dict[str, Any] = {}
        for key_expr, value_expr in zip(args[2::2], args[3::2]):
            key = (key_expr.ident if isinstance(key_expr, Name)
                   else str(self.eval(key_expr)))
            payload[key] = self.eval(value_expr)
        self.ctx.invoke(str(dest), port, payload)

    # -- statements ------------------------------------------------------
    def execute(self, statements: Sequence[Statement]) -> None:
        for statement in statements:
            if isinstance(statement, CallStatement):
                self._eval_call(statement.call)
            elif isinstance(statement, Assignment):
                self.ctx.locals[statement.name] = self.eval(statement.value)
            elif isinstance(statement, IfStatement):
                if self.eval(statement.condition):
                    self.execute(statement.then_body)
                else:
                    self.execute(statement.else_body)
            else:
                raise EvalError(f"unknown statement {statement!r}")


# ----------------------------------------------------------------------
# Declaration compilation
# ----------------------------------------------------------------------
def _compile_aggregate(decl: AggregateDecl,
                       context_name: str) -> AggregateVarSpec:
    if len(decl.sensors) != 1:
        raise CompileError(
            f"aggregate {decl.name!r} in context {context_name!r}: exactly "
            f"one sensor supported, got {list(decl.sensors)}")
    for key, _ in decl.attributes:
        if key not in _KNOWN_ATTRIBUTES:
            raise CompileError(
                f"aggregate {decl.name!r}: unknown attribute {key!r} "
                f"(expected one of {sorted(_KNOWN_ATTRIBUTES)})")
    confidence = decl.attribute("confidence", 1)
    freshness = decl.attribute("freshness", 1.0)
    try:
        return AggregateVarSpec(name=decl.name, function=decl.function,
                                sensor=decl.sensors[0],
                                confidence=int(confidence),
                                freshness=float(freshness))
    except (TypeError, ValueError) as exc:
        raise CompileError(
            f"aggregate {decl.name!r}: bad attributes: {exc}") from exc


def _compile_method(fn: FunctionDecl) -> MethodDef:
    spec = fn.invocation
    if spec.kind == "timer":
        invocation = TimerInvocation(period=float(spec.period))

        def timer_body(ctx: ObjectContext,
                       _statements=fn.body) -> None:
            _BodyEvaluator(ctx).execute(_statements)

        return MethodDef(name=fn.name, invocation=invocation,
                         body=timer_body)
    if spec.kind == "port":
        invocation = PortInvocation(port=int(spec.port))

        def port_body(ctx: ObjectContext, args: Dict[str, Any],
                      src_label: str, src_port: int,
                      _statements=fn.body) -> None:
            extra = {"args": args, "src_label": src_label,
                     "src_port": src_port}
            _BodyEvaluator(ctx, extra=extra).execute(_statements)

        return MethodDef(name=fn.name, invocation=invocation,
                         body=port_body)
    condition = spec.condition
    assert condition is not None

    def predicate(ctx: ObjectContext, _expr=condition) -> bool:
        return bool(_BodyEvaluator(ctx).eval(_expr))

    def when_body(ctx: ObjectContext, _statements=fn.body) -> None:
        _BodyEvaluator(ctx).execute(_statements)

    return MethodDef(name=fn.name,
                     invocation=WhenInvocation(predicate=predicate),
                     body=when_body)


def _compile_object(decl: ObjectDecl) -> TrackingObjectDef:
    return TrackingObjectDef(
        name=decl.name,
        methods=[_compile_method(fn) for fn in decl.functions],
        data=dict(decl.data))


def compile_context(decl: ContextDecl,
                    library: Optional[SenseLibrary] = None,
                    group: Optional[GroupConfig] = None) -> ContextTypeDef:
    """Compile one context declaration to a runtime definition."""
    lib = library or DEFAULT_LIBRARY
    activation = compile_condition(decl.activation, lib)
    deactivation = (compile_condition(decl.deactivation, lib)
                    if decl.deactivation is not None else None)
    return ContextTypeDef(
        name=decl.name,
        activation=activation,
        deactivation=deactivation,
        aggregates=[_compile_aggregate(a, decl.name)
                    for a in decl.aggregates],
        objects=[_compile_object(o) for o in decl.objects],
        group=group or GroupConfig(),
    )


def compile_program(program: Program,
                    library: Optional[SenseLibrary] = None,
                    group: Optional[GroupConfig] = None
                    ) -> List[ContextTypeDef]:
    return [compile_context(decl, library=library, group=group)
            for decl in program.contexts]


def compile_source(source: str,
                   library: Optional[SenseLibrary] = None,
                   group: Optional[GroupConfig] = None
                   ) -> List[ContextTypeDef]:
    """Parse and compile a full EnviroTrack program."""
    return compile_program(parse_source(source), library=library,
                           group=group)
