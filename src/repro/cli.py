"""Command-line interface: reproduce any of the paper's experiments.

Examples::

    python -m repro figure3 --svg figure3.svg
    python -m repro table1 --repetitions 3
    python -m repro figure5 --quick
    python -m repro chaos --quick --svg chaos.svg
    python -m repro all --quick --out-dir figures/ --jobs 4
    python -m repro bench --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Optional

from .analysis import (chaos_chart, figure3_chart, figure4_chart,
                       figure5_chart, figure6_chart)
from .experiments import (BenchResult, bench_medium, chaos,
                          check_regression, figure3, figure4, figure5,
                          figure6, table1)
from .experiments.bench import BASELINE_FILENAME

EXPERIMENTS = ("figure3", "figure4", "table1", "figure5", "figure6",
               "chaos")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the EnviroTrack (ICDCS 2004) evaluation: "
                    "Figures 3-6 and Table 1; check/format EnviroTrack "
                    "programs with 'compile <file>'; or run the medium "
                    "microbenchmark with 'bench'.")
    parser.add_argument("experiment",
                        choices=EXPERIMENTS + ("all", "compile", "bench"),
                        help="which experiment to run, 'compile', "
                             "or 'bench'")
    parser.add_argument("source", nargs="?", default=None,
                        help="EnviroTrack program file (compile only)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink sweeps for a fast smoke run")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed, applied to every experiment "
                             "(figure3 seeds its single run; sweeps use "
                             "it as their seed-ladder base).  Defaults "
                             "match each experiment's published ladder.")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="independent runs per parameter point")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel worker processes for the sweep "
                             "experiments (0 = one per core; results are "
                             "identical to --jobs 1)")
    parser.add_argument("--svg", metavar="PATH", default=None,
                        help="also write the figure as an SVG chart")
    parser.add_argument("--out-dir", metavar="DIR", default=None,
                        help="with 'all': write every SVG into DIR")
    parser.add_argument("--baseline", metavar="PATH",
                        default=BASELINE_FILENAME,
                        help="bench: baseline JSON to compare against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="bench: rewrite the baseline file from this "
                             "run instead of checking against it")
    return parser


def _sweep_kwargs(args) -> dict:
    """Common knobs for the sweep experiments (everything but figure3)."""
    kwargs = {"quick": args.quick, "jobs": args.jobs}
    if args.repetitions is not None:
        kwargs["repetitions"] = args.repetitions
    if args.seed is not None:
        kwargs["seed_base"] = args.seed
    return kwargs


def _run_figure3(args) -> tuple:
    result = figure3(seed=1 if args.seed is None else args.seed)
    return result, figure3_chart(result)


def _run_figure4(args) -> tuple:
    result = figure4(**_sweep_kwargs(args))
    return result, figure4_chart(result)


def _run_table1(args) -> tuple:
    return table1(**_sweep_kwargs(args)), None


def _run_figure5(args) -> tuple:
    result = figure5(**_sweep_kwargs(args))
    return result, figure5_chart(result)


def _run_figure6(args) -> tuple:
    result = figure6(**_sweep_kwargs(args))
    return result, figure6_chart(result)


def _run_chaos(args) -> tuple:
    result = chaos(**_sweep_kwargs(args))
    return result, chaos_chart(result)


RUNNERS: dict = {
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "table1": _run_table1,
    "figure5": _run_figure5,
    "figure6": _run_figure6,
    "chaos": _run_chaos,
}


def run_one(name: str, args, svg_path: Optional[str],
            out: Callable[[str], None]) -> None:
    started = time.time()
    result, chart = RUNNERS[name](args)
    elapsed = time.time() - started
    out(result.format_table())
    out(f"[{name} completed in {elapsed:.1f}s]")
    if svg_path and chart is not None:
        chart.save(svg_path)
        out(f"[wrote {svg_path}]")
    elif svg_path:
        out(f"[{name} has no chart rendering; SVG skipped]")


def _run_compile(args, out: Callable[[str], None]) -> int:
    """Validate an EnviroTrack program and print its canonical form."""
    from .lang import (CompileError, LexError, ParseError, compile_source,
                       format_program, parse_source)
    if not args.source:
        out("compile: missing program file argument")
        return 2
    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        out(f"compile: cannot read {args.source}: {exc}")
        return 2
    try:
        program = parse_source(text)
        definitions = compile_source(text)
    except (LexError, ParseError, CompileError) as exc:
        out(f"{args.source}: {exc}")
        return 1
    out(format_program(program).rstrip())
    names = ", ".join(definition.name for definition in definitions)
    out(f"\n[ok: {len(definitions)} context type(s): {names}]")
    return 0


def _run_bench(args, out: Callable[[str], None]) -> int:
    """Run the medium microbench; gate on the committed baseline."""
    result = bench_medium(quick=args.quick)
    out(result.format_table())
    if args.update_baseline:
        result.save(args.baseline)
        out(f"[wrote baseline {args.baseline}]")
        return 0
    if not os.path.exists(args.baseline):
        out(f"[no baseline at {args.baseline}; run with "
            f"--update-baseline to create one]")
        return 0
    ok, message = check_regression(result, BenchResult.load(args.baseline))
    out(f"[baseline {args.baseline}: {message}]")
    return 0 if ok else 1


def main(argv=None, out: Callable[[str], None] = print) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "compile":
        return _run_compile(args, out)
    if args.experiment == "bench":
        return _run_bench(args, out)
    if args.experiment == "all":
        out_dir = args.out_dir
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        for name in EXPERIMENTS:
            svg_path = (os.path.join(out_dir, f"{name}.svg")
                        if out_dir and name != "table1" else None)
            run_one(name, args, svg_path, out)
            out("")
        return 0
    run_one(args.experiment, args, args.svg, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
