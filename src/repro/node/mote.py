"""The mote: a sensor node with radio, CPU, sensors and protocol handlers.

A :class:`Mote` glues the substrates together the way a TinyOS image does:

* the radio delivers frames → a CPU task dispatches them to the handler
  registered for the frame's ``kind``;
* components register timers whose handlers also run as CPU tasks (so an
  overloaded CPU delays them — the Figure 5 effect);
* sensors are sampled locally and synchronously (reading the ADC is cheap
  next to messaging).

Failure injection (``fail()``) silences the node completely: radio off, CPU
drained, timers dead — the "current leader fails" worst case of §6.2.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..radio import Frame, MacBase, Medium, TransceiverPort, make_mac
from ..sim import PeriodicTimer, Simulator, WatchdogTimer
from .cpu import DEFAULT_QUEUE_LIMIT, DEFAULT_TASK_COST, Cpu

Position = Tuple[float, float]
FrameHandler = Callable[[Frame], None]


class Mote:
    """One simulated sensor node.

    Parameters
    ----------
    sim:
        Owning simulator.
    node_id:
        Unique id in the field.
    position:
        Field coordinates in grid units.
    medium:
        The shared radio channel to attach to.
    mac:
        ``"csma"`` (default) or ``"null"``.
    task_cost / queue_limit:
        CPU model parameters (see :class:`repro.node.cpu.Cpu`).
    rx_cost / tx_cost:
        CPU time charged per received / transmitted frame.
    """

    def __init__(self, sim: Simulator, node_id: int, position: Position,
                 medium: Medium, mac: str = "csma",
                 task_cost: float = DEFAULT_TASK_COST,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 rx_cost: Optional[float] = None,
                 tx_cost: Optional[float] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self._position = position
        self.medium = medium
        self.alive = True
        self.cpu = Cpu(sim, node_id, task_cost=task_cost,
                       queue_limit=queue_limit)
        self.rx_cost = task_cost if rx_cost is None else rx_cost
        self.tx_cost = task_cost if tx_cost is None else tx_cost
        self._handlers: Dict[str, List[FrameHandler]] = {}
        self._sensors: Dict[str, Callable[[], Any]] = {}
        self._timers: List[Any] = []
        self._reboot_hooks: List[Callable[[], None]] = []
        #: Oscillator skew: multiplies the nominal delay of every timer
        #: created on this mote (1.0 = perfect clock).
        self.clock_scale = 1.0
        self.port = TransceiverPort(node_id, lambda: self._position,
                                    self._on_physical_receive)
        medium.attach(self.port)
        self.mac: MacBase = make_mac(mac, sim, medium,
                                     lambda: self._position)
        self.frames_sent = 0
        self.frames_delivered = 0

    # ------------------------------------------------------------------
    # Position
    # ------------------------------------------------------------------
    @property
    def position(self) -> Position:
        return self._position

    def move_to(self, position: Position) -> None:
        """Relocate the node (sensor fields are static; kept for tests).

        Notifies the medium so its spatial index re-buckets this node.
        """
        self._position = position
        self.medium.refresh_position(self.node_id)

    # ------------------------------------------------------------------
    # Sensors
    # ------------------------------------------------------------------
    def install_sensor(self, name: str, read_fn: Callable[[], Any]) -> None:
        """Install a named sensor whose value is produced by ``read_fn``."""
        self._sensors[name] = read_fn

    def read_sensor(self, name: str) -> Any:
        """Sample a sensor; raises KeyError for unknown sensors."""
        return self._sensors[name]()

    def has_sensor(self, name: str) -> bool:
        return name in self._sensors

    def sensor_names(self) -> List[str]:
        return sorted(self._sensors)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def register_handler(self, kind: str, handler: FrameHandler) -> None:
        """Register ``handler`` for frames of ``kind`` addressed to us."""
        self._handlers.setdefault(kind, []).append(handler)

    def send(self, frame: Frame) -> None:
        """Queue a frame for transmission (charges CPU tx cost first)."""
        if not self.alive:
            return
        self.cpu.post(self._do_send, frame, cost=self.tx_cost,
                      label=f"tx.{frame.kind}")

    def _do_send(self, frame: Frame) -> None:
        if not self.alive:
            return
        self.frames_sent += 1
        # Causal tracing: the frame gets its own span under whatever
        # context queued the send (a handler, a timer, a takeover); MAC
        # backoff and the medium's delivery events inherit it through the
        # engine's span capture, so receptions chain to this send.
        spans = self.sim.spans
        span_id = spans.start(f"frame.{frame.kind}", node=self.node_id)
        frame.span_id = span_id
        spans.note_frame(span_id, frame.frame_id)
        with spans.activate(span_id):
            self.mac.send(frame)
        spans.finish(span_id)

    def _on_physical_receive(self, frame: Frame) -> None:
        if not self.alive:
            return
        # Address filter happens *after* the radio heard the frame: the
        # medium's stats count physical receptions (paper's loss metric),
        # the mote only processes frames addressed to it or broadcast.
        if not frame.addressed_to(self.node_id):
            return
        self.cpu.post(self._dispatch, frame, cost=self.rx_cost,
                      label=f"rx.{frame.kind}")

    def _dispatch(self, frame: Frame) -> None:
        if not self.alive:
            return
        self.frames_delivered += 1
        spans = self.sim.spans
        for handler in self._handlers.get(frame.kind, []):
            # Each handler runs in its own span under the frame that
            # triggered it, so replies sent inside become grandchildren
            # of the original send.
            with spans.span(f"handle.{frame.kind}", node=self.node_id,
                            parent=frame.span_id):
                handler(frame)

    # ------------------------------------------------------------------
    # Timers (handlers run as CPU tasks)
    # ------------------------------------------------------------------
    def periodic(self, period: float, callback: Callable[[], None],
                 label: str = "periodic",
                 initial_delay: Optional[float] = None,
                 cost: Optional[float] = None) -> PeriodicTimer:
        """A periodic timer whose callback is executed on this mote's CPU."""
        timer = PeriodicTimer(
            self.sim, period * self.clock_scale,
            lambda: self._timer_fire(callback, cost, label),
            label=f"{label}@{self.node_id}",
            initial_delay=(None if initial_delay is None
                           else initial_delay * self.clock_scale))
        self._timers.append(timer)
        return timer

    def watchdog(self, timeout: float, callback: Callable[[], None],
                 label: str = "watchdog",
                 cost: Optional[float] = None) -> WatchdogTimer:
        """A watchdog whose expiry handler runs on this mote's CPU."""
        timer = WatchdogTimer(
            self.sim, timeout * self.clock_scale,
            lambda: self._timer_fire(callback, cost, label),
            label=f"{label}@{self.node_id}")
        self._timers.append(timer)
        return timer

    def oneshot(self, callback: Callable[[], None],
                label: str = "oneshot",
                cost: Optional[float] = None) -> "OneShotTimer":
        """An unarmed one-shot timer; arm with ``start(delay)``.  The
        callback runs on this mote's CPU."""
        from ..sim import OneShotTimer
        timer = OneShotTimer(
            self.sim,
            lambda: self._timer_fire(callback, cost, label),
            label=f"{label}@{self.node_id}")
        self._timers.append(timer)
        return timer

    def _timer_fire(self, callback: Callable[[], None],
                    cost: Optional[float], label: str) -> None:
        if not self.alive:
            return
        self.cpu.post(callback, cost=cost, label=f"timer.{label}")

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Kill the node: radio silent, CPU drained, timers stopped."""
        if not self.alive:
            return
        self.alive = False
        self.port.enabled = False
        self.cpu.shutdown()
        self.mac.shutdown()
        for timer in self._timers:
            stop = getattr(timer, "stop", None) or getattr(timer, "cancel")
            stop()
        self.sim.record("node.fail", node=self.node_id)

    def recover(self) -> None:
        """Bring a failed node back (fresh CPU state; timers stay stopped
        until a component restarts them)."""
        if self.alive:
            return
        self.alive = True
        self.port.enabled = True
        self.cpu.enabled = True
        self.sim.record("node.recover", node=self.node_id)

    def add_reboot_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback run when this mote reboots.

        Components use it to rebuild their volatile state — a reboot is a
        power cycle, not a resume: protocol layers come back with empty
        RAM and must rejoin groups from scratch.
        """
        self._reboot_hooks.append(hook)

    def reboot(self) -> None:
        """Power-cycle a failed node: recover, then reinitialize components
        via their reboot hooks.  No-op on a live node."""
        if self.alive:
            return
        self.recover()
        self.sim.record("node.reboot", node=self.node_id)
        for hook in self._reboot_hooks:
            hook()

    def skew_clock(self, factor: float) -> None:
        """Stretch (>1) or compress (<1) this mote's oscillator.

        Applies to every existing periodic/watchdog timer's nominal delay
        and to timers created later.  Periodic changes take effect after
        the next firing (matching :class:`PeriodicTimer` semantics); a
        watchdog's new timeout applies from its next kick.
        """
        if factor <= 0:
            raise ValueError(f"clock skew factor must be positive: {factor}")
        self.clock_scale *= factor
        for timer in self._timers:
            if isinstance(timer, PeriodicTimer):
                timer.period *= factor
            elif isinstance(timer, WatchdogTimer):
                timer.timeout *= factor
        self.sim.record("node.clock_skew", node=self.node_id,
                        factor=factor, scale=self.clock_scale)
