"""Unit tests for the base station and the EnviroTrackApp assembly."""

import pytest

from repro.core import BaseStation, ContextTypeDef, EnviroTrackApp
from repro.core.base_station import APP_REPORT_KIND
from repro.node import Mote
from repro.radio import Frame, Medium
from repro.sim import Simulator


def make_station():
    sim = Simulator(seed=1)
    medium = Medium(sim, communication_radius=5.0)
    mote = Mote(sim, 0, (0.0, 0.0), medium)
    sender = Mote(sim, 1, (1.0, 0.0), medium)
    return sim, BaseStation(mote), sender


def send_report(sim, sender, label="tracker#1.1", **values):
    payload = dict(values)
    payload.update(label=label, context_type="tracker",
                   reported_at=sim.now, reporter=sender.node_id)
    sender.send(Frame(src=sender.node_id, dst=0, kind=APP_REPORT_KIND,
                      payload=payload))
    sim.run(until=sim.now + 1.0)


class TestBaseStation:
    def test_collects_reports(self):
        sim, station, sender = make_station()
        send_report(sim, sender, location=[1.0, 2.0])
        assert len(station.reports) == 1
        record = station.reports[0]
        assert record.label == "tracker#1.1"
        assert record.reporter == 1
        assert record.values == {"location": [1.0, 2.0]}

    def test_tracks_grouped_by_label(self):
        sim, station, sender = make_station()
        send_report(sim, sender, label="a", location=[1.0, 1.0])
        send_report(sim, sender, label="b", location=[5.0, 5.0])
        send_report(sim, sender, label="a", location=[2.0, 1.0])
        assert station.labels_seen() == ["a", "b"]
        track = station.track("a")
        assert [pos for _, pos in track] == [(1.0, 1.0), (2.0, 1.0)]
        assert set(station.tracks()) == {"a", "b"}

    def test_non_positional_values_excluded_from_track(self):
        sim, station, sender = make_station()
        send_report(sim, sender, label="a", alarm=True)
        assert station.track("a") == []
        assert station.reports_for("a")[0].values["alarm"] is True

    def test_malformed_reports_ignored(self):
        sim, station, sender = make_station()
        sender.send(Frame(src=1, dst=0, kind=APP_REPORT_KIND,
                          payload={"no_label": 1}))
        sim.run(until=1.0)
        assert station.reports == []


class TestAppAssembly:
    def test_install_is_idempotent(self):
        app = EnviroTrackApp(seed=1)
        app.field.deploy_grid(3, 2)
        app.add_context_type(ContextTypeDef(name="t", activation="x"))
        app.install()
        agents_before = dict(app.agents)
        app.install()
        assert app.agents == agents_before

    def test_stack_wiring_per_mote(self):
        app = EnviroTrackApp(seed=1)
        app.field.deploy_grid(3, 2)
        app.add_context_type(ContextTypeDef(name="t", activation="x"))
        app.install()
        assert set(app.routers) == set(app.field.motes)
        assert set(app.agents) == set(app.field.motes)
        assert set(app.directories) == set(app.field.motes)
        assert set(app.mtp_agents) == set(app.field.motes)

    def test_optional_services_disabled(self):
        app = EnviroTrackApp(seed=1, enable_directory=False,
                             enable_mtp=False)
        app.field.deploy_grid(2, 2)
        app.install()
        assert app.directories == {}
        assert app.mtp_agents == {}

    def test_field_bounds_cover_deployment(self):
        app = EnviroTrackApp(seed=1)
        app.field.deploy_grid(5, 3)
        bounds = app.field_bounds()
        for mote in app.field.mote_list():
            assert bounds.contains(mote.position)

    def test_field_bounds_require_motes(self):
        with pytest.raises(RuntimeError):
            EnviroTrackApp(seed=1).field_bounds()

    def test_base_station_placement_after_install_rejected(self):
        app = EnviroTrackApp(seed=1)
        app.field.deploy_grid(2, 2)
        app.install()
        with pytest.raises(RuntimeError):
            app.place_base_station((0.0, -1.0))

    def test_leaders_introspection(self):
        app = EnviroTrackApp(seed=1, enable_directory=False,
                             enable_mtp=False)
        app.field.deploy_grid(4, 1)
        sensing = {1}
        for mote in app.field.mote_list():
            mote.install_sensor(
                "seen", lambda m=mote: m.node_id in sensing)
        app.add_context_type(ContextTypeDef(name="t", activation="seen"))
        app.run(until=3.0)
        leaders = app.leaders("t")
        assert list(leaders) == [1]
        assert leaders[1].startswith("t#")
