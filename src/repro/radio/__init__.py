"""Wireless substrate: frames, broadcast medium, MAC and statistics."""

from .frames import BROADCAST, DEFAULT_FRAME_BITS, Frame, reset_frame_ids
from .mac import CsmaMac, MacBase, NullMac, make_mac
from .medium import (DEFAULT_BITRATE, Disturbance, Medium, TransceiverPort,
                     distance)
from .stats import RadioStats

__all__ = [
    "BROADCAST",
    "CsmaMac",
    "DEFAULT_BITRATE",
    "DEFAULT_FRAME_BITS",
    "Disturbance",
    "Frame",
    "MacBase",
    "Medium",
    "NullMac",
    "RadioStats",
    "TransceiverPort",
    "distance",
    "make_mac",
    "reset_frame_ids",
]
