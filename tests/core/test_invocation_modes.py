"""Tests for invocation-condition modes on the live middleware."""

from repro.aggregation import AggregateVarSpec
from repro.core import (ContextTypeDef, EnviroTrackApp, MethodDef,
                        TrackingObjectDef, WhenInvocation)
from repro.groups import GroupConfig
from repro.sensing import StaticPoint, Target


def build(method, directory_update_period=None):
    app = EnviroTrackApp(seed=91, enable_directory=True, enable_mtp=False)
    app.field.deploy_grid(5, 2)
    app.field.add_target(Target("thing", "thing", StaticPoint((2.0, 0.5)),
                                signature_radius=1.2))
    app.field.install_detection_sensors("seen", kinds=["thing"])
    app.add_context_type(ContextTypeDef(
        name="t", activation="seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=2, freshness=1.0)],
        objects=[TrackingObjectDef("o", [method])],
        group=GroupConfig(heartbeat_period=0.5, suppression_range=None),
        directory_update_period=directory_update_period))
    return app


def test_level_triggered_when_fires_every_poll():
    fires = []
    method = MethodDef(
        "alarm",
        WhenInvocation(lambda ctx: ctx.valid("location"),
                       poll_period=1.0, edge_triggered=False),
        lambda ctx: fires.append(ctx.now))
    app = build(method)
    app.run(until=20.0)
    # Level-triggered: fires on (almost) every poll once the state holds.
    assert len(fires) >= 10


def test_edge_triggered_when_fires_once_per_transition():
    fires = []
    method = MethodDef(
        "alarm",
        WhenInvocation(lambda ctx: ctx.valid("location"),
                       poll_period=1.0, edge_triggered=True),
        lambda ctx: fires.append(ctx.now))
    app = build(method)
    app.run(until=20.0)
    assert 1 <= len(fires) <= 2


def test_directory_registration_disabled_when_period_none():
    method = MethodDef(
        "noop",
        WhenInvocation(lambda ctx: False, poll_period=5.0),
        lambda ctx: None)
    app = build(method, directory_update_period=None)
    app.run(until=20.0)
    stored = [r for r in app.sim.trace if r.category == "dir.stored"]
    assert stored == []


def test_directory_registration_enabled_with_period():
    method = MethodDef(
        "noop",
        WhenInvocation(lambda ctx: False, poll_period=5.0),
        lambda ctx: None)
    app = build(method, directory_update_period=5.0)
    app.run(until=20.0)
    stored = [r for r in app.sim.trace if r.category == "dir.stored"]
    assert stored
