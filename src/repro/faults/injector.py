"""The fault injector: schedules a :class:`FaultPlan` into a simulation.

``FaultInjector.arm(plan)`` turns each plan event into one simulator
event at its fire time; firing applies the fault through the substrate
hooks (``Mote.fail``/``reboot``/``skew_clock``, ``Medium.
add_disturbance``, ``EnergyMeter.drain``) and emits a ``fault.*`` trace
record.  The recovery metrics (:mod:`repro.metrics.recovery`) correlate
those records with the group-management trace to measure takeover
latency and label continuity.

Determinism: the injector draws no randomness of its own, and dynamic
victim resolution (``LeaderCrash``) is a pure function of simulation
state, so the same seed + plan reproduces the same trace event for
event.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..groups import GroupManager
from ..node.energy import EnergyMeter
from ..sensing import SensorField
from ..sim import Simulator
from .plan import (ClockSkew, EnergyDrain, FaultEvent, FaultPlan,
                   LeaderCrash, LossSpike, NodeCrash, NodeReboot, RegionJam)


class FaultInjector:
    """Applies scripted faults to a deployed :class:`SensorField`.

    Parameters
    ----------
    sim:
        The owning simulator.
    field:
        Deployment to disturb (motes + medium).
    managers:
        ``node_id -> GroupManager`` map, required to resolve
        :class:`LeaderCrash` victims.  Optional otherwise.
    meter:
        Energy meter, required for :class:`EnergyDrain` events.
    """

    def __init__(self, sim: Simulator, field: SensorField,
                 managers: Optional[Dict[int, GroupManager]] = None,
                 meter: Optional[EnergyMeter] = None) -> None:
        self.sim = sim
        self.field = field
        self.managers = managers or {}
        self.meter = meter
        self.injected: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def arm(self, plan: FaultPlan) -> None:
        """Schedule every plan event relative to *absolute* sim time.

        Events whose time is already past fire immediately (delay 0).
        """
        for event in plan:
            delay = max(0.0, event.time - self.sim.now)
            self.sim.schedule(delay, self._fire, event,
                              label=f"fault.{type(event).__name__}")

    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        self.injected.append(event)
        if isinstance(event, NodeCrash):
            self._crash(event)
        elif isinstance(event, NodeReboot):
            self._reboot(event)
        elif isinstance(event, LeaderCrash):
            self._leader_crash(event)
        elif isinstance(event, RegionJam):
            self._jam(event)
        elif isinstance(event, LossSpike):
            self._spike(event)
        elif isinstance(event, EnergyDrain):
            self._drain(event)
        elif isinstance(event, ClockSkew):
            self._skew(event)
        else:  # pragma: no cover - plan validation forbids this
            raise TypeError(f"unknown fault event {event!r}")

    # ------------------------------------------------------------------
    def _crash(self, event: NodeCrash) -> None:
        mote = self.field.motes.get(event.node)
        if mote is None or not mote.alive:
            self.sim.record("fault.crash_skipped", node=event.node)
            return
        self.sim.record("fault.crash", node=event.node)
        mote.fail()

    def _reboot(self, event: NodeReboot) -> None:
        mote = self.field.motes.get(event.node)
        if mote is None or mote.alive:
            self.sim.record("fault.reboot_skipped", node=event.node)
            return
        self.sim.record("fault.reboot", node=event.node)
        mote.reboot()

    def _leader_crash(self, event: LeaderCrash) -> None:
        victim = self._resolve_leader(event.context_type)
        if victim is None:
            self.sim.record("fault.leader_crash_skipped",
                            type=event.context_type)
            return
        label = self.managers[victim].label(event.context_type)
        self.sim.record("fault.leader_crash", node=victim,
                        type=event.context_type, label=label,
                        reboot_after=event.reboot_after)
        self.field.motes[victim].fail()
        if event.reboot_after is not None:
            self.sim.schedule(event.reboot_after, self._reboot,
                              NodeReboot(time=self.sim.now
                                         + event.reboot_after,
                                         node=victim),
                              label="fault.NodeReboot")

    def _resolve_leader(self, context_type: str) -> Optional[int]:
        """Lowest-id live leader of any ``context_type`` label."""
        for node_id in sorted(self.managers):
            manager = self.managers[node_id]
            mote = self.field.motes.get(node_id)
            if mote is None or not mote.alive:
                continue
            if context_type not in manager.tracked_types():
                continue
            if manager.is_leading(context_type):
                return node_id
        return None

    def _jam(self, event: RegionJam) -> None:
        self.sim.record("fault.jam", center=list(event.center),
                        radius=event.radius, extra_loss=event.extra_loss,
                        duration=event.duration)
        self.field.medium.add_disturbance(
            event.extra_loss, self.sim.now, self.sim.now + event.duration,
            center=event.center, radius=event.radius)

    def _spike(self, event: LossSpike) -> None:
        self.sim.record("fault.loss_spike", extra_loss=event.extra_loss,
                        duration=event.duration)
        self.field.medium.add_disturbance(
            event.extra_loss, self.sim.now, self.sim.now + event.duration)

    def _drain(self, event: EnergyDrain) -> None:
        if self.meter is None or event.node not in self.meter.ledgers:
            self.sim.record("fault.drain_skipped", node=event.node)
            return
        self.sim.record("fault.drain", node=event.node,
                        joules=event.joules)
        self.meter.drain(event.node, event.joules)

    def _skew(self, event: ClockSkew) -> None:
        mote = self.field.motes.get(event.node)
        if mote is None:
            self.sim.record("fault.skew_skipped", node=event.node)
            return
        # Mote.skew_clock records node.clock_skew with the new scale.
        self.sim.record("fault.clock_skew", node=event.node,
                        factor=event.factor)
        mote.skew_clock(event.factor)
