"""Property-based tests for group management invariants.

Under any (bounded) loss rate, topology and heartbeat period, a single
stationary stimulus must converge to exactly one leader whose label every
sensing node shares — the coherence invariant the whole system rests on.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.groups import GroupConfig, GroupManager, Role
from repro.sensing import SensorField
from repro.sim import Simulator


def build(seed, loss, heartbeat_period, count, sensing_ids):
    sim = Simulator(seed=seed)
    field = SensorField(sim, communication_radius=10.0,
                        base_loss_rate=loss)
    managers = {}
    for i in range(count):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        # suppression_range=None: these harness stimuli have no physical
        # extent, so the multi-target proximity gate does not apply.
        manager.track("t", lambda m: m.node_id in sensing_ids,
                      GroupConfig(heartbeat_period=heartbeat_period,
                                  suppression_range=None))
        manager.start()
        managers[i] = manager
    return sim, managers


@given(seed=st.integers(min_value=0, max_value=10_000),
       loss=st.floats(min_value=0.0, max_value=0.3),
       heartbeat_period=st.floats(min_value=0.1, max_value=1.0),
       sensing_count=st.integers(min_value=1, max_value=5))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_stationary_stimulus_converges_to_one_leader(
        seed, loss, heartbeat_period, sensing_count):
    count = 8
    sensing_ids = set(range(sensing_count))
    sim, managers = build(seed, loss, heartbeat_period, count,
                          sensing_ids)
    # Convergence horizon: generously many heartbeat periods.
    sim.run(until=30.0 * heartbeat_period + 5.0)

    leaders = [n for n, m in managers.items()
               if m.role("t") is Role.LEADER]
    assert len(leaders) == 1
    label = managers[leaders[0]].label("t")
    for node in sensing_ids:
        role = managers[node].role("t")
        assert role in (Role.LEADER, Role.MEMBER)
        assert managers[node].label("t") == label
    # Non-sensing nodes never join the group.
    for node in set(range(count)) - sensing_ids:
        assert managers[node].role("t") is Role.IDLE


@given(seed=st.integers(min_value=0, max_value=10_000),
       loss=st.floats(min_value=0.0, max_value=0.25))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_stimulus_removal_dissolves_group(seed, loss):
    sensing_ids = {1, 2, 3}
    sim, managers = build(seed, loss, 0.5, 6, sensing_ids)
    sim.run(until=10.0)
    sensing_ids.clear()
    sim.run(until=30.0)
    assert all(m.role("t") is Role.IDLE for m in managers.values())


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_leader_failure_always_recovers_same_label(seed):
    sensing_ids = {1, 2, 3}
    sim, managers = build(seed, 0.1, 0.5, 6, sensing_ids)
    sim.run(until=6.0)
    leaders = [n for n, m in managers.items()
               if m.role("t") is Role.LEADER]
    assert len(leaders) == 1
    label = managers[leaders[0]].label("t")
    # Kill the leader (if it is a sensing node, others must take over).
    victim = leaders[0]
    managers[victim].mote.fail()
    survivors = sensing_ids - {victim}
    sim.run(until=20.0)
    new_leaders = [n for n, m in managers.items()
                   if m.role("t") is Role.LEADER and m.mote.alive]
    assert len(new_leaders) == 1
    assert new_leaders[0] in survivors
    assert managers[new_leaders[0]].label("t") == label
