"""MTP past-leader forwarding: messages addressed to a stale leader reach
the current one through the forwarding chain (§5.4)."""

from repro.groups import GroupConfig, GroupManager, Role
from repro.sensing import SensorField
from repro.sim import Simulator
from repro.transport import GeoRouter, Invocation, MtpAgent


def build(count=8):
    sim = Simulator(seed=41)
    field = SensorField(sim, communication_radius=3.0)
    sensing = set()
    routers, groups, agents = {}, {}, {}
    for i in range(count):
        mote = field.add_mote((float(i), 0.0))
        router = GeoRouter(mote)
        router.start()
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing,
                      GroupConfig(heartbeat_period=0.5,
                                  suppression_range=None))
        manager.start()
        agent = MtpAgent(mote, router, manager)
        agent.start()
        routers[i], groups[i], agents[i] = router, manager, agent
    return sim, field, sensing, groups, agents


def current_leader(groups):
    for node, manager in groups.items():
        if manager.role("t") is Role.LEADER:
            return node
    return None


def test_stale_destination_forwarded_to_current_leader():
    sim, field, sensing, groups, agents = build()
    sensing.update({1, 2})
    sim.run(until=3.0)
    old_leader = current_leader(groups)
    label = groups[old_leader].label("t")

    # Leadership migrates: the old leader stops sensing and a neighbour
    # claims the label.
    sensing.discard(old_leader)
    sim.run(until=sim.now + 3.0)
    new_leader = current_leader(groups)
    assert new_leader is not None and new_leader != old_leader
    assert groups[new_leader].label("t") == label

    # A remote endpoint with a stale table sends to the OLD leader.
    received = []
    for agent in agents.values():
        agent.register_port(
            "t", 5, lambda args, src_label, src_port, src_leader:
            received.append(args))
    invocation = Invocation(src_label="x#9.9", src_port=0, src_leader=7,
                            dest_label=label, dest_port=5,
                            args={"ping": 1})
    agents[7]._transmit(old_leader, invocation)
    sim.run(until=sim.now + 5.0)

    assert received == [{"ping": 1}]
    # The old leader forwarded along its last-known-leader pointer
    # (learned from the successor's heartbeats).
    assert agents[old_leader].forwarded >= 1
    assert agents[new_leader].delivered == 1


def test_chain_limit_bounds_forwarding():
    sim, field, sensing, groups, agents = build()
    sensing.update({1, 2})
    sim.run(until=3.0)
    leader = current_leader(groups)
    label = groups[leader].label("t")
    # Poison node 6's pointer to point at node 7, and 7's back at 6.
    agents[6].table.update(label, 7, sim.now + 100.0)
    agents[7].table.update(label, 6, sim.now + 100.0)
    invocation = Invocation(src_label="x#9.9", src_port=0, src_leader=5,
                            dest_label=label, dest_port=5,
                            args={}, chain=3)
    agents[5]._transmit(6, invocation)
    sim.run(until=sim.now + 5.0)
    drops = [r for r in sim.trace
             if r.category == "mtp.drop"
             and r.detail.get("reason") == "chain_exhausted"]
    assert drops, "forwarding loop was not bounded"
