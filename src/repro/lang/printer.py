"""Pretty-printer: EnviroTrack AST back to canonical source.

Useful for tooling (normalizing hand-written programs, golden tests) and
as the executable definition of the concrete syntax: for every program,
``parse(print(parse(text)))`` equals ``parse(text)``.
"""

from __future__ import annotations

from typing import List

from .ast import (AggregateDecl, Assignment, Attribute, Binary, Call,
                  CallStatement, ContextDecl, Expr, FunctionDecl,
                  IfStatement, Index, InvocationSpec, Literal, Name,
                  ObjectDecl, Program, SelfLabel, Statement, Unary)

_INDENT = "    "

#: Binding strength for parenthesization (higher binds tighter).
_PRECEDENCE = {
    "or": 1, "and": 2,
    "<": 4, ">": 4, "<=": 4, ">=": 4, "==": 4, "!=": 4,
    "+": 5, "-": 5, "*": 6, "/": 6,
}


def format_value(value: object) -> str:
    """Render a literal the lexer will read back identically."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "") + "'"
    return str(value)


def format_expr(expr: Expr, parent_precedence: int = 0) -> str:
    if isinstance(expr, Literal):
        return format_value(expr.value)
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, SelfLabel):
        return "self:label"
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Attribute):
        return f"{format_expr(expr.base, 9)}.{expr.attr}"
    if isinstance(expr, Index):
        return f"{format_expr(expr.base, 9)}[{format_expr(expr.index)}]"
    if isinstance(expr, Unary):
        operand = format_expr(expr.operand, 8)
        if expr.op == "not":
            return f"not {operand}"
        return f"-{operand}"
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, precedence)
        right = format_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"cannot format {expr!r}")


def _format_statement(statement: Statement, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(statement, CallStatement):
        return [f"{pad}{format_expr(statement.call)};"]
    if isinstance(statement, Assignment):
        return [f"{pad}{statement.name} = "
                f"{format_expr(statement.value)};"]
    if isinstance(statement, IfStatement):
        lines = [f"{pad}if ({format_expr(statement.condition)}) {{"]
        for inner in statement.then_body:
            lines.extend(_format_statement(inner, depth + 1))
        if statement.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in statement.else_body:
                lines.extend(_format_statement(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot format {statement!r}")


def _format_invocation(spec: InvocationSpec) -> str:
    if spec.kind == "timer":
        return f"TIMER({format_value(spec.period)}s)"
    if spec.kind == "port":
        return f"PORT({spec.port})"
    assert spec.condition is not None
    return format_expr(spec.condition)


def _format_function(fn: FunctionDecl, depth: int) -> List[str]:
    pad = _INDENT * depth
    lines = [f"{pad}invocation: {_format_invocation(fn.invocation)}",
             f"{pad}{fn.name}() {{"]
    for statement in fn.body:
        lines.extend(_format_statement(statement, depth + 1))
    lines.append(f"{pad}}}")
    return lines


def _format_object(obj: ObjectDecl, depth: int) -> List[str]:
    pad = _INDENT * depth
    lines = [f"{pad}begin object {obj.name}"]
    for name, value in obj.data:
        lines.append(f"{pad}{_INDENT}{name} = {format_value(value)};")
    for fn in obj.functions:
        lines.extend(_format_function(fn, depth + 1))
    lines.append(f"{pad}end")
    return lines


def _format_aggregate(decl: AggregateDecl, depth: int) -> str:
    pad = _INDENT * depth
    sensors = ", ".join(decl.sensors)
    parts = [f"{pad}{decl.name} : {decl.function}({sensors})"]
    attributes = ", ".join(
        f"{key}={format_value(value)}" for key, value in decl.attributes)
    if attributes:
        parts.append(" " + attributes)
    return "".join(parts)


def format_context(decl: ContextDecl) -> str:
    lines = [f"begin context {decl.name}",
             f"{_INDENT}activation: {format_expr(decl.activation)}"]
    if decl.deactivation is not None:
        lines.append(
            f"{_INDENT}deactivation: {format_expr(decl.deactivation)}")
    for aggregate in decl.aggregates:
        lines.append(_format_aggregate(aggregate, 1))
    for obj in decl.objects:
        lines.extend(_format_object(obj, 1))
    lines.append("end context")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render a whole program as canonical source."""
    return "\n\n".join(format_context(decl)
                       for decl in program.contexts) + "\n"
