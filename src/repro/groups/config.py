"""Group-management tuning knobs.

The paper's §6.2: "Best results are achieved when the receive and wait
timers ... are set to 2.1 and 4.2 times the leader heartbeat period
respectively."  Those ratios, the heartbeat period itself, the heartbeat
transmit range (the Figure 4 variable) and the flood hop count ``h`` are
the parameters every stress test sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class GroupConfig:
    """Parameters of the group management protocol for one context type."""

    #: Leader keep-alive period (seconds) — the Figure 5 x-axis.
    heartbeat_period: float = 0.5
    #: Receive timeout = ratio × heartbeat period ("more than twice longer
    #: ... to allow for message loss").
    receive_ratio: float = 2.1
    #: Wait timeout = ratio × heartbeat period (must exceed the receive
    #: timeout so takeovers beat spurious-label creation).
    wait_ratio: float = 4.2
    #: How often each node evaluates its sense_e() condition locally.
    sense_period: float = 0.1
    #: CPU cost of one sensing check (cheap ADC read + compare).
    sense_cost: float = 0.0002
    #: Transmit range for heartbeats (grid units); None = full radio range.
    #: Figure 4 contrasts "within sensing radius" vs "one hop past it".
    heartbeat_tx_range: Optional[float] = None
    #: Members rebroadcast each new heartbeat once — "they flood the group
    #: to inform current members that a leader is alive".  The flood is the
    #: dominant traffic source at small heartbeat periods (the Figure 5
    #: overload).  Disable to rely on the leader's single broadcast
    #: reaching the whole group ("a single message transmission may be
    #: enough to flood the group").
    member_rebroadcast: bool = True
    #: Random delay before a node forwards a heartbeat, de-synchronizing
    #: the flood (otherwise every member rebroadcasts in the same slot and
    #: the copies collide).
    rebroadcast_jitter: float = 0.05
    #: h — additional flood hops past the group perimeter, forwarded by
    #: non-members (§5.2; the paper leaves measuring it to future work,
    #: our Ablation A exercises it).
    flood_hops: int = 0
    #: Enable the leadership relinquish optimization (§6.2).
    relinquish: bool = True
    #: Claim jitter window after a relinquish, to de-synchronize claimants.
    claim_window: float = 0.1
    #: Listen-before-create window: a node that starts sensing with no wait
    #: memory waits uniform(0, this) before minting a label, so that "a
    #: node that senses the activation condition [and] has no neighbors
    #: detecting the same condition" creates the label — concurrent first
    #: detectors join the fastest creator's heartbeat instead of each
    #: minting a duplicate.
    formation_window: float = 0.3
    #: First-heartbeat delay window for a fresh leader (announce quickly).
    announce_jitter: float = 0.02
    #: Maximum distance (grid units) between a node and a heard leader's
    #: position for *cross-label* decisions — spurious-label suppression
    #: and member label-switching.  Two same-type labels whose leaders are
    #: farther apart track physically separated entities and must remain
    #: distinct (§3.2.1's continuity invariant); without the gate, a
    #: heavier label would absorb every same-type group in radio range.
    #: ``None`` disables the gate (single-target deployments).  Size it
    #: near 2× the sensing radius: two labels can only claim the same
    #: stimulus if both their leaders sense it.
    suppression_range: Optional[float] = 2.5
    #: Maximum distance to a heard leader's position for *joining* its
    #: label or keeping wait-timer memory of it.  ``None`` (default) keeps
    #: the paper's behavior — any audible heartbeat seeds memory, which is
    #: what lets fast targets be re-acquired ahead of the group.  Set it
    #: (≈ 2× sensing radius) in multi-target deployments so a node sensing
    #: entity A never adopts nearby entity B's label.  This is the spatial
    #: face of the paper's wait-timer trade-off: "The choice of the wait
    #: timer depends on how far to maintain memory of nearby events."
    join_range: Optional[float] = None
    #: Liveness-probe rounds before a member with an expired receive timer
    #: usurps leadership.  Each round broadcasts a LeaderQuery; a defence
    #: heartbeat from the leader or a fresh-enough member vouch cancels the
    #: takeover.  This keeps a member that merely lost consecutive
    #: heartbeats to channel noise from minting a duplicate leader, at the
    #: cost of at most ``takeover_probes × claim_window`` extra takeover
    #: latency after a real leader death.  0 restores the paper's
    #: immediate takeover.
    takeover_probes: int = 2

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0:
            raise ValueError(
                f"heartbeat period must be positive: {self.heartbeat_period}")
        if self.receive_ratio <= 1.0:
            raise ValueError(
                f"receive ratio must exceed 1: {self.receive_ratio}")
        if self.wait_ratio <= self.receive_ratio:
            raise ValueError(
                "wait ratio must exceed receive ratio "
                f"({self.wait_ratio} <= {self.receive_ratio})")
        if self.sense_period <= 0:
            raise ValueError(
                f"sense period must be positive: {self.sense_period}")
        if self.flood_hops < 0:
            raise ValueError(f"flood hops must be >= 0: {self.flood_hops}")
        if self.claim_window <= 0:
            raise ValueError(
                f"claim window must be positive: {self.claim_window}")
        if self.formation_window < 0:
            raise ValueError(
                f"formation window must be >= 0: {self.formation_window}")
        if self.announce_jitter < 0:
            raise ValueError(
                f"announce jitter must be >= 0: {self.announce_jitter}")
        if self.takeover_probes < 0:
            raise ValueError(
                f"takeover probes must be >= 0: {self.takeover_probes}")

    @property
    def receive_timeout(self) -> float:
        return self.receive_ratio * self.heartbeat_period

    @property
    def wait_timeout(self) -> float:
        return self.wait_ratio * self.heartbeat_period

    def with_heartbeat_period(self, period: float) -> "GroupConfig":
        """The Figure 5 sweep helper: change the period, keep the ratios."""
        return replace(self, heartbeat_period=period)
