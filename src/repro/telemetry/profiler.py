"""Event-loop profiler: wall-time and event counts per handler.

The profiler answers "where does a run's real time go?" — which timer,
delivery or CPU-service path burns the host CPU — without perturbing the
simulation at all.  It measures *wall* time with ``time.perf_counter``
around each event dispatch, keyed by the event's label; simulated time,
RNG streams and the trace are untouched, so ``trace_digest`` is identical
with the profiler on or off.

Caveats (see ``docs/OBSERVABILITY.md``):

* wall times are host-machine noise — compare shapes, not nanoseconds,
  and never feed them back into simulation decisions;
* the profiler is opt-in (``sim.enable_profiler()``) because the two
  ``perf_counter`` calls per event cost real time on large runs; when it
  is off the engine pays a single ``is None`` check per event.

Labels like ``gm.heartbeat@12`` aggregate under ``gm.heartbeat`` — the
``@node`` suffix convention keeps per-node timers from exploding the
table.  The part before the first ``.`` is the category (``gm``,
``cpu``, ``radio`` …) used for the per-subsystem rollup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Events scheduled without a label land here.
UNLABELED = "(unlabeled)"


@dataclass
class HandlerProfile:
    """Aggregate cost of one event label."""

    label: str
    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    @property
    def category(self) -> str:
        return self.label.split(".", 1)[0]


def normalize_label(label: str) -> str:
    """Strip the ``@node`` suffix; map empty labels to a sentinel."""
    if not label:
        return UNLABELED
    at = label.rfind("@")
    return label[:at] if at > 0 else label


class EventLoopProfiler:
    """Accumulates per-label dispatch counts and wall time.

    The engine calls :meth:`note` once per fired event; everything else
    is read-side.
    """

    def __init__(self) -> None:
        self._profiles: Dict[str, HandlerProfile] = {}
        self.events_profiled = 0
        self.total_seconds = 0.0

    def note(self, label: str, seconds: float) -> None:
        """Record one event dispatch (engine hook)."""
        key = normalize_label(label)
        profile = self._profiles.get(key)
        if profile is None:
            profile = HandlerProfile(label=key)
            self._profiles[key] = profile
        profile.count += 1
        profile.total_seconds += seconds
        if seconds > profile.max_seconds:
            profile.max_seconds = seconds
        self.events_profiled += 1
        self.total_seconds += seconds

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def profiles(self) -> List[HandlerProfile]:
        """Every label's profile, hottest (most total wall time) first."""
        return sorted(self._profiles.values(),
                      key=lambda p: (-p.total_seconds, p.label))

    def get(self, label: str) -> HandlerProfile:
        return self._profiles[normalize_label(label)]

    def __contains__(self, label: str) -> bool:
        return normalize_label(label) in self._profiles

    def hot(self, n: int = 10) -> List[HandlerProfile]:
        """The ``n`` hottest handlers."""
        return self.profiles()[:n]

    def by_category(self) -> Dict[str, HandlerProfile]:
        """Rollup by label category (``gm``, ``cpu``, ``radio`` …)."""
        out: Dict[str, HandlerProfile] = {}
        for profile in self._profiles.values():
            rollup = out.get(profile.category)
            if rollup is None:
                rollup = HandlerProfile(label=profile.category)
                out[profile.category] = rollup
            rollup.count += profile.count
            rollup.total_seconds += profile.total_seconds
            rollup.max_seconds = max(rollup.max_seconds,
                                     profile.max_seconds)
        return out

    def format_table(self, n: int = 15) -> str:
        """Human-readable hot-handler table."""
        lines = [f"{'handler':<32} {'events':>8} {'total':>10} "
                 f"{'mean':>10} {'max':>10}"]
        for profile in self.hot(n):
            lines.append(
                f"{profile.label:<32} {profile.count:8d} "
                f"{profile.total_seconds * 1e3:9.2f}ms "
                f"{profile.mean_seconds * 1e6:9.2f}us "
                f"{profile.max_seconds * 1e6:9.2f}us")
        return "\n".join(lines)
