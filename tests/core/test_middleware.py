"""Integration-grade unit tests for the EnviroTrack middleware agent."""

import pytest

from repro.aggregation import AggregateVarSpec
from repro.core import (ContextTypeDef, EnviroTrackApp, MethodDef,
                        TimerInvocation, TrackingObjectDef, WhenInvocation)
from repro.groups import GroupConfig, Role
from repro.sensing import LineTrajectory, StaticPoint, Target


def build_app(context_types, columns=8, rows=2, target_speed=0.0,
              target_pos=(3.0, 0.5), radius=1.2, seed=5, **app_kwargs):
    app = EnviroTrackApp(seed=seed, base_loss_rate=0.0,
                         enable_directory=False, enable_mtp=False,
                         **app_kwargs)
    app.field.deploy_grid(columns, rows)
    app.field.add_target(Target(
        "t", "vehicle", LineTrajectory(target_pos, target_speed),
        signature_radius=radius))
    app.field.install_detection_sensors("seen", kinds=["vehicle"])
    for definition in context_types:
        app.add_context_type(definition)
    return app


def tracker_def(objects=(), confidence=2, freshness=1.0,
                deactivation=None):
    return ContextTypeDef(
        name="tracker", activation="seen", deactivation=deactivation,
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=confidence,
                                     freshness=freshness)],
        objects=list(objects),
        group=GroupConfig(heartbeat_period=0.5))


def current_leader(app, context_type="tracker"):
    for node_id, agent in app.agents.items():
        if agent.groups.is_leading(context_type):
            return node_id, agent
    return None, None


def test_members_report_and_leader_aggregates():
    app = build_app([tracker_def()])
    app.run(until=5.0)
    _, agent = current_leader(app)
    assert agent is not None
    runtime = agent.runtime_of("tracker")
    result = runtime.store.read("location", app.sim.now)
    assert result.valid
    assert result.contributors >= 2
    # avg(position) of sensing motes around (3.0, 0.5) lands near x=3.
    assert result.value[0] == pytest.approx(3.0, abs=0.6)


def test_member_reports_bump_leader_weight():
    app = build_app([tracker_def()])
    app.run(until=10.0)
    _, agent = current_leader(app)
    assert agent.groups.weight("tracker") > 3


def test_timer_object_runs_only_on_leader():
    runs = []

    def tick(ctx):
        runs.append((ctx.node_id, ctx.now))

    definition = tracker_def(objects=[TrackingObjectDef("o", [
        MethodDef("tick", TimerInvocation(1.0), tick)])])
    app = build_app([definition])
    app.run(until=6.0)
    leader, _ = current_leader(app)
    assert runs, "timer method never ran"
    assert {node for node, _ in runs} == {leader}


def test_when_invocation_edge_triggered():
    fires = []

    def alarm(ctx):
        fires.append(ctx.now)

    definition = tracker_def(objects=[TrackingObjectDef("o", [
        MethodDef("alarm",
                  WhenInvocation(lambda ctx: ctx.valid("location"),
                                 poll_period=0.5), alarm)])])
    app = build_app([definition])
    app.run(until=10.0)
    # Edge-triggered: the condition holds continuously after formation but
    # the method fires once per leader incarnation, not every poll.
    assert 1 <= len(fires) <= 3


def test_app_error_recorded_not_raised():
    def boom(ctx):
        raise RuntimeError("application bug")

    definition = tracker_def(objects=[TrackingObjectDef("o", [
        MethodDef("boom", TimerInvocation(1.0), boom)])])
    app = build_app([definition])
    app.run(until=5.0)  # must not raise
    errors = list(app.sim.trace_records("etrack.app_error"))
    assert errors
    assert errors[0].detail["method"] == "boom"


def test_deactivation_hysteresis():
    """With an explicit deactivation condition, a node stays in the group
    between the activation and deactivation thresholds."""
    app = EnviroTrackApp(seed=5, enable_directory=False, enable_mtp=False)
    app.field.deploy_grid(4, 1)
    readings = {"value": 300.0}
    for mote in app.field.mote_list():
        mote.install_sensor("temperature", lambda: readings["value"])
    definition = ContextTypeDef(
        name="hot",
        activation=lambda mote: mote.read_sensor("temperature") > 250,
        deactivation=lambda mote: mote.read_sensor("temperature") < 150,
        group=GroupConfig(heartbeat_period=0.5))
    app.add_context_type(definition)
    app.run(until=3.0)
    roles = [agent.groups.role("hot") for agent in app.agents.values()]
    assert any(role is not Role.IDLE for role in roles)
    # Drop into the hysteresis band: still active.
    readings["value"] = 200.0
    app.sim.run(until=6.0)
    roles = [agent.groups.role("hot") for agent in app.agents.values()]
    assert any(role is not Role.IDLE for role in roles)
    # Below the deactivation threshold: groups dissolve.
    readings["value"] = 100.0
    app.sim.run(until=12.0)
    roles = [agent.groups.role("hot") for agent in app.agents.values()]
    assert all(role is Role.IDLE for role in roles)


def test_leader_stop_halts_object_timers():
    runs = []

    def tick(ctx):
        runs.append(ctx.node_id)

    definition = tracker_def(objects=[TrackingObjectDef("o", [
        MethodDef("tick", TimerInvocation(0.5), tick)])])
    # Moving target: leadership migrates; old leaders must stop ticking.
    app = build_app([definition], target_speed=0.25, target_pos=(0.0, 0.5))
    # The target's signature clears the 8-column grid at t ≈ 37s.
    app.run(until=45.0)
    total_after = len(runs)
    # The target has left the field; all objects must be quiescent.
    app.sim.run(until=60.0)
    assert len(runs) == total_after


def test_base_station_reports_via_router():
    def report(ctx):
        location = ctx.read("location")
        if location.valid:
            ctx.my_send({"location": location.value})

    definition = tracker_def(objects=[TrackingObjectDef("o", [
        MethodDef("report", TimerInvocation(2.0), report)])])
    app = build_app([definition])
    base = app.place_base_station((0.0, -2.0))
    app.run(until=10.0)
    assert base.reports
    record = base.reports[0]
    assert record.label.startswith("tracker#")
    assert record.context_type == "tracker"
    assert len(record.values["location"]) == 2


def test_duplicate_context_type_rejected():
    app = build_app([tracker_def()])
    with pytest.raises(ValueError):
        app.add_context_type(tracker_def())


def test_add_context_after_install_rejected():
    app = build_app([tracker_def()])
    app.install()
    with pytest.raises(RuntimeError):
        app.add_context_type(ContextTypeDef(name="x", activation="seen"))
