"""Unit tests for target trajectories."""

import math

import pytest

from repro.sensing import (LineTrajectory, RandomWalkTrajectory, StaticPoint,
                           WaypointTrajectory)


class TestStaticPoint:
    def test_never_moves(self):
        trajectory = StaticPoint((3.0, 4.0))
        assert trajectory.position(0.0) == (3.0, 4.0)
        assert trajectory.position(1e6) == (3.0, 4.0)
        assert trajectory.speed_at(5.0) == pytest.approx(0.0)


class TestLine:
    def test_constant_velocity_along_x(self):
        trajectory = LineTrajectory((0.0, 0.5), speed=0.1)
        assert trajectory.position(0.0) == pytest.approx((0.0, 0.5))
        assert trajectory.position(10.0) == pytest.approx((1.0, 0.5))

    def test_heading(self):
        trajectory = LineTrajectory((0.0, 0.0), speed=1.0,
                                    heading=math.pi / 2)
        x, y = trajectory.position(2.0)
        assert x == pytest.approx(0.0, abs=1e-12)
        assert y == pytest.approx(2.0)

    def test_speed_at_matches_configured_speed(self):
        trajectory = LineTrajectory((0.0, 0.0), speed=2.5)
        assert trajectory.speed_at(3.0) == pytest.approx(2.5, rel=1e-3)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            LineTrajectory((0.0, 0.0), speed=-1.0)


class TestWaypoints:
    def test_piecewise_linear_interpolation(self):
        trajectory = WaypointTrajectory([(0, 0), (10, 0), (10, 5)],
                                        speed=1.0)
        assert trajectory.position(5.0) == pytest.approx((5.0, 0.0))
        assert trajectory.position(10.0) == pytest.approx((10.0, 0.0))
        assert trajectory.position(12.5) == pytest.approx((10.0, 2.5))

    def test_stops_at_final_waypoint(self):
        trajectory = WaypointTrajectory([(0, 0), (4, 0)], speed=2.0)
        assert trajectory.total_time == pytest.approx(2.0)
        assert trajectory.position(100.0) == pytest.approx((4.0, 0.0))

    def test_before_start_clamps(self):
        trajectory = WaypointTrajectory([(1, 1), (2, 2)], speed=1.0)
        assert trajectory.position(-5.0) == (1, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([], speed=1.0)
        with pytest.raises(ValueError):
            WaypointTrajectory([(0, 0)], speed=0.0)


class TestRandomWalk:
    def test_deterministic_per_seed(self):
        a = RandomWalkTrajectory((5, 5), 1.0, (0, 0, 10, 10), seed=3)
        b = RandomWalkTrajectory((5, 5), 1.0, (0, 0, 10, 10), seed=3)
        assert a.position(17.3) == b.position(17.3)

    def test_stays_in_bounds(self):
        trajectory = RandomWalkTrajectory((5, 5), 1.0, (0, 0, 10, 10),
                                          seed=9, steps=64)
        for t in range(0, 200, 7):
            x, y = trajectory.position(float(t))
            assert 0 <= x <= 10
            assert 0 <= y <= 10

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError):
            RandomWalkTrajectory((0, 0), 1.0, (5, 5, 5, 5))
