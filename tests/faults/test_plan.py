"""FaultPlan construction: validation, ordering, composition."""

import pytest

from repro.faults import (ClockSkew, EnergyDrain, FaultPlan, LeaderCrash,
                          LossSpike, NodeCrash, NodeReboot, RegionJam,
                          leader_crash_schedule)


def test_plan_sorts_events_by_time():
    plan = FaultPlan.of(NodeCrash(time=5.0, node=1),
                        NodeCrash(time=1.0, node=2),
                        NodeReboot(time=3.0, node=1))
    assert [e.time for e in plan] == [1.0, 3.0, 5.0]
    assert len(plan) == 3


def test_plan_orders_ties_by_event_kind():
    # Same instant: deterministic kind order (class name), so two plans
    # built from differently ordered literals compare equal.
    a = FaultPlan.of(NodeReboot(time=2.0, node=1),
                     NodeCrash(time=2.0, node=0))
    b = FaultPlan.of(NodeCrash(time=2.0, node=0),
                     NodeReboot(time=2.0, node=1))
    assert a == b
    assert isinstance(a.events[0], NodeCrash)


def test_until_keeps_events_before_horizon():
    plan = leader_crash_schedule("t", start=1.0, period=2.0, count=5)
    early = plan.until(5.0)
    assert [e.time for e in early] == [1.0, 3.0]


def test_merged_combines_and_resorts():
    crashes = FaultPlan.of(NodeCrash(time=4.0, node=0))
    jams = FaultPlan.of(RegionJam(time=1.0, duration=2.0,
                                  center=(0.0, 0.0), radius=3.0))
    merged = crashes.merged(jams)
    assert [type(e).__name__ for e in merged] == ["RegionJam", "NodeCrash"]


def test_leader_crash_schedule_builds_periodic_plan():
    plan = leader_crash_schedule("t", start=2.0, period=3.0, count=3,
                                 reboot_after=1.5)
    assert [e.time for e in plan] == [2.0, 5.0, 8.0]
    assert all(isinstance(e, LeaderCrash) for e in plan)
    assert all(e.reboot_after == 1.5 for e in plan)


@pytest.mark.parametrize("bad", [
    NodeCrash(time=-1.0, node=0),
    NodeReboot(time=-0.1, node=0),
    LeaderCrash(time=1.0, context_type=""),
    LeaderCrash(time=1.0, context_type="t", reboot_after=0.0),
    RegionJam(time=0.0, duration=0.0, center=(0.0, 0.0), radius=1.0),
    RegionJam(time=0.0, duration=1.0, center=(0.0, 0.0), radius=0.0),
    RegionJam(time=0.0, duration=1.0, center=(0.0, 0.0), radius=1.0,
              extra_loss=1.5),
    LossSpike(time=0.0, duration=1.0, extra_loss=-0.2),
    EnergyDrain(time=0.0, node=0, joules=-1.0),
    ClockSkew(time=0.0, node=0, factor=0.0),
])
def test_invalid_events_rejected_at_plan_build(bad):
    with pytest.raises(ValueError):
        FaultPlan.of(bad)


@pytest.mark.parametrize("kwargs", [
    {"start": 0.0, "period": 0.0, "count": 3},
    {"start": 0.0, "period": 1.0, "count": 0},
])
def test_leader_crash_schedule_validates(kwargs):
    with pytest.raises(ValueError):
        leader_crash_schedule("t", **kwargs)
