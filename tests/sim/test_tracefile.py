"""Unit tests for trace export/query tooling."""

import pytest

from repro.sim import Simulator, dump_trace, load_trace, query


def make_traced_sim():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.record("gm.takeover", node=1,
                                         label="L1", type="tracker"))
    sim.schedule(2.0, lambda: sim.record("gm.claim", node=2, label="L1"))
    sim.schedule(3.0, lambda: sim.record("radio.tx", node=1, kind="hb"))
    sim.schedule(4.0, lambda: sim.record("gm.takeover", node=3,
                                         label="L2", type="tracker"))
    sim.run()
    return sim


class TestDumpLoad:
    def test_round_trip(self, tmp_path):
        sim = make_traced_sim()
        path = tmp_path / "trace.jsonl"
        count = dump_trace(sim, str(path))
        assert count == 4
        records = load_trace(str(path))
        assert len(records) == 4
        assert records[0].category == "gm.takeover"
        assert records[0].node == 1
        assert records[0].detail["label"] == "L1"
        assert records[0].time == pytest.approx(1.0)

    def test_category_filter(self, tmp_path):
        sim = make_traced_sim()
        path = tmp_path / "trace.jsonl"
        count = dump_trace(sim, str(path), categories=["gm.takeover"])
        assert count == 2
        assert all(r.category == "gm.takeover"
                   for r in load_trace(str(path)))

    def test_non_serializable_details_stringified(self, tmp_path):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.record("odd", node=0,
                                             value=(1.5, 2.5)))
        sim.run()
        path = tmp_path / "trace.jsonl"
        dump_trace(sim, str(path))
        (record,) = load_trace(str(path))
        assert record.detail["value"] == [1.5, 2.5]

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0, "category": "x"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2|:2:"):
            load_trace(str(path))


class TestQuery:
    def test_chained_filters(self):
        sim = make_traced_sim()
        takeovers = query(sim).category("gm.takeover")
        assert takeovers.count() == 2
        assert takeovers.node(3).count() == 1
        assert takeovers.between(0.0, 2.0).count() == 1
        assert takeovers.detail("label", "L2").count() == 1
        assert query(sim).category_prefix("gm.").count() == 3

    def test_terminals(self):
        sim = make_traced_sim()
        q = query(sim).category_prefix("gm.")
        assert q.first().time == pytest.approx(1.0)
        assert q.last().time == pytest.approx(4.0)
        assert q.times() == pytest.approx([1.0, 2.0, 4.0])
        assert len(list(q)) == 3

    def test_where_predicate(self):
        sim = make_traced_sim()
        odd_nodes = query(sim).where(lambda r: (r.node or 0) % 2 == 1)
        assert odd_nodes.count() == 3

    def test_empty_query(self):
        sim = Simulator()
        assert query(sim).category("none").first() is None


class TestEnvelopeCollisions:
    """Regression: detail keys named like envelope fields must survive.

    The old flattened JSONL form wrote detail beside ``t``/``category``/
    ``node``, so a detail field with one of those names silently
    corrupted the record on roundtrip.  Detail now nests under its own
    key.
    """

    def test_detail_keys_shadowing_envelope_roundtrip(self, tmp_path):
        sim = Simulator()
        sim.schedule(1.5, lambda: sim.record(
            "app.sample", node=7, t=99.0, detail="nested"))
        sim.run()
        path = tmp_path / "trace.jsonl"
        dump_trace(sim, str(path))
        (record,) = load_trace(str(path))
        assert record.time == pytest.approx(1.5)
        assert record.category == "app.sample"
        assert record.node == 7
        assert record.detail == {"t": 99.0, "detail": "nested"}

    def test_all_envelope_names_as_detail_keys_roundtrip(self):
        from repro.sim.events import TraceRecord
        from repro.sim.tracefile import dict_to_record, record_to_dict

        record = TraceRecord(time=1.0, category="x", node=7,
                             detail={"node": 3, "t": 0.5,
                                     "category": "shadow"})
        rebuilt = dict_to_record(record_to_dict(record))
        assert rebuilt == record

    def test_digest_distinguishes_envelope_from_detail(self):
        from repro.sim import trace_digest

        a = Simulator()
        a.schedule(1.0, lambda: a.record("x", node=1, t=2.0))
        a.run()
        b = Simulator()
        b.schedule(2.0, lambda: b.record("x", node=1, t=1.0))
        b.run()
        assert trace_digest(a) != trace_digest(b)

    def test_legacy_flattened_form_still_loads(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            '{"t": 3.0, "category": "gm.claim", "node": 4, '
            '"label": "L1", "hops": 2}\n')
        (record,) = load_trace(str(path))
        assert record.time == pytest.approx(3.0)
        assert record.category == "gm.claim"
        assert record.node == 4
        assert record.detail == {"label": "L1", "hops": 2}
