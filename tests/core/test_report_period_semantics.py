"""End-to-end checks of the P_e = L_e − d reporting semantics.

§3.2.3: members report at period ``P_e = L_e − d`` so that aggregation
windows always contain fresh readings from live members.  These tests
verify the *observable* guarantee on the full stack: a leader's successful
reads never aggregate readings older than the declared freshness, and the
report traffic on the air matches the derived period.
"""

import pytest

from repro.aggregation import REPORT_KIND, AggregateVarSpec
from repro.core import ContextTypeDef, EnviroTrackApp
from repro.groups import GroupConfig
from repro.sensing import StaticPoint, Target


def build(freshness, delay_estimate, seed=61):
    app = EnviroTrackApp(seed=seed, enable_directory=False,
                         enable_mtp=False, base_loss_rate=0.0)
    app.field.deploy_grid(5, 2)
    app.field.add_target(Target("thing", "thing",
                                StaticPoint((2.0, 0.5)),
                                signature_radius=1.2))
    app.field.install_detection_sensors("seen", kinds=["thing"])
    app.add_context_type(ContextTypeDef(
        name="t", activation="seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=2, freshness=freshness)],
        group=GroupConfig(heartbeat_period=0.5, suppression_range=None),
        delay_estimate=delay_estimate))
    return app


def leader_agent(app):
    for agent in app.agents.values():
        if agent.groups.is_leading("t"):
            return agent
    return None


def test_reads_respect_freshness_bound():
    app = build(freshness=1.0, delay_estimate=0.1)
    app.run(until=20.0)
    agent = leader_agent(app)
    result = agent.runtime_of("t").store.read("location", app.sim.now)
    assert result.valid
    assert result.oldest_reading_age is not None
    assert result.oldest_reading_age <= 1.0


def test_report_rate_matches_derived_period():
    app = build(freshness=2.0, delay_estimate=0.5)
    app.run(until=32.0)
    stats = app.field.medium.stats
    reports = stats.sent_by_kind[REPORT_KIND]
    # P_e = 2.0 − 0.5 = 1.5 s.  Members (≈5 sensing motes minus the
    # leader) each report ~once per period over ~30 s of group life.
    sensing = len(app.field.motes_sensing("thing"))
    expected = (sensing - 1) * (30.0 / 1.5)
    assert reports == pytest.approx(expected, rel=0.35)


def test_tighter_freshness_means_faster_reports():
    def report_count(freshness):
        app = build(freshness=freshness, delay_estimate=0.1)
        app.run(until=20.0)
        return app.field.medium.stats.sent_by_kind[REPORT_KIND]

    assert report_count(0.5) > 1.5 * report_count(2.0)


def test_validity_lost_when_members_die():
    app = build(freshness=1.0, delay_estimate=0.1)
    app.run(until=10.0)
    agent = leader_agent(app)
    assert agent.runtime_of("t").store.read("location",
                                            app.sim.now).valid
    # Kill every mote except the leader: critical mass (2) unreachable.
    for node_id, mote in app.field.motes.items():
        if node_id != agent.node_id:
            mote.fail()
    app.sim.run(until=app.sim.now + 5.0)
    result = agent.runtime_of("t").store.read("location", app.sim.now)
    assert not result.valid
    assert result.contributors <= 1
