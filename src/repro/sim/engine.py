"""The discrete-event simulation engine.

A single :class:`Simulator` owns the virtual clock, the event heap, the
per-subsystem random streams and the trace log.  Everything in the
reproduction — radios, motes, protocol timers, moving targets — schedules
work through this object, which makes whole-system runs deterministic for a
given seed.

Example
-------
>>> sim = Simulator(seed=7)
>>> fired = []
>>> _ = sim.schedule(2.0, fired.append, 'b')
>>> _ = sim.schedule(1.0, fired.append, 'a')
>>> sim.run(until=10.0)
>>> fired
['a', 'b']
"""

from __future__ import annotations

import heapq
import time as _time
from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional

from ..telemetry.profiler import EventLoopProfiler
from ..telemetry.registry import MetricsRegistry, NullRegistry
from ..telemetry.spans import NullSpanTracker, SpanTracker
from .events import Event, EventSequencer, TraceRecord
from .rng import RandomStreams


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Each named random stream derives deterministically
        from it (see :class:`repro.sim.rng.RandomStreams`).
    trace_capacity:
        Maximum number of retained trace records (oldest dropped first);
        ``None`` retains everything.
    telemetry:
        When True (default) the simulator owns a live
        :class:`~repro.telemetry.registry.MetricsRegistry` (``.metrics``)
        and :class:`~repro.telemetry.spans.SpanTracker` (``.spans``).
        When False both are null objects that accept every call and
        record nothing.  Telemetry is pure side-state either way: the
        event order, RNG streams and trace — hence ``trace_digest`` —
        are identical for both settings.
    """

    def __init__(self, seed: int = 0,
                 trace_capacity: Optional[int] = None,
                 telemetry: bool = True) -> None:
        self.seed = seed
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = EventSequencer()
        self._running = False
        self._stopped = False
        self.rng = RandomStreams(seed)
        self.trace_capacity = trace_capacity
        self.trace: Deque[TraceRecord] = deque(maxlen=trace_capacity)
        self._events_fired = 0
        self.telemetry_enabled = telemetry
        if telemetry:
            self.metrics = MetricsRegistry()
            self.spans = SpanTracker(clock=lambda: self._now)
        else:
            self.metrics = NullRegistry()
            self.spans = NullSpanTracker()
        # Hot-path alias: the event loop touches span context on every
        # schedule and dispatch, so it branches on one None check and
        # plain attribute access instead of calling through self.spans.
        self._live_spans: Optional[SpanTracker] = \
            self.spans if telemetry else None
        self._trace_counter = self.metrics.counter(
            "repro_trace_records_total",
            "Trace records written, by category.", ("category",))
        self._profiler: Optional[EventLoopProfiler] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_fired

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> Optional[EventLoopProfiler]:
        """The attached event-loop profiler, or None."""
        return self._profiler

    def enable_profiler(self) -> EventLoopProfiler:
        """Attach (or return the already attached) event-loop profiler.

        Profiling measures host wall time only; it never touches
        simulated time, RNG or the trace.
        """
        if self._profiler is None:
            self._profiler = EventLoopProfiler()
        return self._profiler

    def disable_profiler(self) -> None:
        """Detach the profiler (its accumulated data is discarded)."""
        self._profiler = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, label: str = "", **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` after ``delay`` seconds.

        Returns the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay!r}s in the past (now={self._now})")
        return self.schedule_at(self._now + delay, callback, *args,
                                label=label, **kwargs)

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any, label: str = "", **kwargs: Any) -> Event:
        """Schedule ``callback`` at absolute simulation time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r} before now={self._now}")
        spans = self._live_spans
        event = Event(time=when, seq=self._seq.next(), callback=callback,
                      args=args, kwargs=kwargs, label=label,
                      span=None if spans is None else spans.current)
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any,
                  label: str = "", **kwargs: Any) -> Event:
        """Schedule ``callback`` at the current time (after pending events
        at this time that were scheduled earlier)."""
        return self.schedule(0.0, callback, *args, label=label, **kwargs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Dispatch events until the horizon, the event budget, or quiescence.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is advanced to ``until``.  ``None`` runs to quiescence.
        max_events:
            Safety valve for runaway schedules.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                self._dispatch(event)
                self._events_fired += 1
                fired += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> Optional[Event]:
        """Dispatch exactly one (non-cancelled) event; return it or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._dispatch(event)
            self._events_fired += 1
            return event
        return None

    def _dispatch(self, event: Event) -> None:
        """Fire one event inside its causal span, optionally profiled."""
        spans = self._live_spans
        profiler = self._profiler
        if spans is None:
            if profiler is None:
                event.fire()
                return
            started = _time.perf_counter()
            try:
                event.fire()
            finally:
                profiler.note(event.label,
                              _time.perf_counter() - started)
            return
        previous = spans.current
        spans.current = event.span
        if profiler is None:
            try:
                event.fire()
            finally:
                spans.current = previous
            return
        started = _time.perf_counter()
        try:
            event.fire()
        finally:
            profiler.note(event.label, _time.perf_counter() - started)
            spans.current = previous

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None when quiescent."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def record(self, category: str, node: Optional[int] = None,
               **detail: Any) -> None:
        """Append a structured record to the trace log.

        The trace is a bounded deque when ``trace_capacity`` is set, so
        eviction of the oldest record is O(1) rather than the O(n) a
        list-head delete would cost.
        """
        self.trace.append(TraceRecord(time=self._now, category=category,
                                      node=node, detail=detail))
        self._trace_counter.inc(1.0, category)

    def trace_records(self, category: Optional[str] = None,
                      node: Optional[int] = None) -> Iterable[TraceRecord]:
        """Iterate trace records matching the filters."""
        return (r for r in self.trace if r.matches(category, node))
