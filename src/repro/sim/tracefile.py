"""Trace export and query tooling.

Simulation traces are the ground truth every analysis reads.  This module
exports them as JSON-lines files (one record per line, grep- and
jq-friendly), loads them back, and offers a small query helper for
interactive debugging of protocol behaviour.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Union

from .engine import Simulator
from .events import TraceRecord


def record_to_dict(record: TraceRecord) -> dict:
    """Serialize a record for JSONL export.

    Detail lives under its own ``"detail"`` key so that a detail field
    named ``t``, ``category`` or ``node`` can never shadow the record's
    own envelope fields (the old flattened form silently corrupted such
    records on roundtrip).
    """
    return {"t": record.time, "category": record.category,
            "node": record.node, "detail": record.detail}


def dict_to_record(data: dict) -> TraceRecord:
    """Rebuild a record from its JSONL dict form.

    Accepts both the current nested form (``{"detail": {...}}``) and the
    legacy flattened form where detail keys sat beside the envelope, so
    traces written before the format change still load.
    """
    data = dict(data)
    time = float(data.pop("t"))
    category = str(data.pop("category"))
    node = data.pop("node", None)
    detail = data.pop("detail", None)
    if not isinstance(detail, dict):
        detail = data  # legacy flattened form
    return TraceRecord(time=time, category=category,
                       node=None if node is None else int(node),
                       detail=detail)


def trace_digest(source: Union[Simulator, Iterable[TraceRecord]]) -> str:
    """SHA-256 hex digest of a trace's canonical JSONL serialization.

    Two runs are behaviourally identical exactly when their digests match:
    every record's time, category, node and detail participate.  The
    determinism suite uses this to compare whole runs across repeats,
    worker processes and medium index modes without shipping full traces
    around.
    """
    records = source.trace if isinstance(source, Simulator) else source
    digest = hashlib.sha256()
    for record in records:
        digest.update(json.dumps(record_to_dict(record), default=str,
                                 sort_keys=True).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def dump_trace(sim: Simulator, path: str,
               categories: Optional[Iterable[str]] = None) -> int:
    """Write the simulation trace as JSONL; returns the record count.

    Non-JSON-serializable detail values are stringified rather than
    dropped, so traces always export completely.
    """
    wanted = None if categories is None else set(categories)
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in sim.trace:
            if wanted is not None and record.category not in wanted:
                continue
            handle.write(json.dumps(record_to_dict(record),
                                    default=str, sort_keys=True))
            handle.write("\n")
            written += 1
    return written


def load_trace(path: str) -> List[TraceRecord]:
    """Read a JSONL trace back into records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(dict_to_record(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line: {exc}"
                ) from exc
    return records


@dataclass
class TraceQuery:
    """Chainable filters over a list of trace records.

    >>> TraceQuery(records).category("gm.takeover").between(10, 20).count()

    A query built by :func:`query` from a live simulator also carries the
    run's span tracker, enabling the causal filters :meth:`span` and
    :meth:`causes`.  Queries over loaded trace files have no tracker —
    the causal filters raise a helpful error there.
    """

    records: List[TraceRecord]
    spans: Optional[object] = None

    def _chain(self, records: List[TraceRecord]) -> "TraceQuery":
        return TraceQuery(records, spans=self.spans)

    def category(self, name: str) -> "TraceQuery":
        """Keep records of exactly this category."""
        return self._chain([r for r in self.records
                            if r.category == name])

    def category_prefix(self, prefix: str) -> "TraceQuery":
        """Keep records whose category starts with ``prefix``."""
        return self._chain([r for r in self.records
                            if r.category.startswith(prefix)])

    def node(self, node_id: int) -> "TraceQuery":
        """Keep records emitted by one node."""
        return self._chain([r for r in self.records if r.node == node_id])

    def between(self, start: float, end: float) -> "TraceQuery":
        """Keep records in the closed time interval."""
        return self._chain([r for r in self.records
                            if start <= r.time <= end])

    def where(self, predicate: Callable[[TraceRecord], bool]
              ) -> "TraceQuery":
        return self._chain([r for r in self.records if predicate(r)])

    def detail(self, key: str, value) -> "TraceQuery":
        """Keep records whose detail ``key`` equals ``value``."""
        return self._chain([r for r in self.records
                            if r.detail.get(key) == value])

    # -- causal filters (need the run's span tracker) --------------------
    def _tracker(self, method: str):
        if self.spans is None or not getattr(self.spans, "enabled", False):
            raise ValueError(
                f"TraceQuery.{method}() needs the run's span tracker; "
                "build the query with query(sim) on a simulator created "
                "with telemetry=True (loaded trace files carry no spans)")
        return self.spans

    def span(self, span_id: int) -> "TraceQuery":
        """Keep records caused by the span's subtree.

        A record belongs to a span when its ``frame_id`` detail names a
        frame transmitted anywhere in the tree rooted at ``span_id`` —
        the full downstream story of the operation (rebroadcasts,
        handler replies, forwarded hops).
        """
        frames = self._tracker("span").subtree_frames(span_id)
        return self._chain([r for r in self.records
                            if r.detail.get("frame_id") in frames])

    def causes(self, span_id: int) -> "TraceQuery":
        """Keep records on the span's causal ancestry.

        The mirror of :meth:`span`: records whose ``frame_id`` was sent
        on the root→span path — "what chain of frames led here?".
        """
        frames = self._tracker("causes").ancestor_frames(span_id)
        return self._chain([r for r in self.records
                            if r.detail.get("frame_id") in frames])

    # -- terminals -------------------------------------------------------
    def count(self) -> int:
        """Number of matching records."""
        return len(self.records)

    def first(self) -> Optional[TraceRecord]:
        """Earliest matching record, or None."""
        return self.records[0] if self.records else None

    def last(self) -> Optional[TraceRecord]:
        """Latest matching record, or None."""
        return self.records[-1] if self.records else None

    def times(self) -> List[float]:
        """Timestamps of the matching records."""
        return [r.time for r in self.records]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def query(sim: Simulator) -> TraceQuery:
    """Entry point: ``query(sim).category("gm.takeover").count()``."""
    spans = getattr(sim, "spans", None)
    if spans is not None and not getattr(spans, "enabled", False):
        spans = None
    return TraceQuery(list(sim.trace), spans=spans)
