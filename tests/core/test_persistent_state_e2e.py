"""End-to-end tests for heartbeat-carried persistent state (setState).

§5.2: heartbeats "may carry any state that must persist across different
timer handler invocations on the leader … This mechanism allows new
leaders to continue computations of failed leaders from the last committed
state received."  (Footnote: "In the present prototype, persistent state
is not yet implemented. It constitutes a trivial extension" — implemented
here.)
"""

from repro.aggregation import AggregateVarSpec
from repro.core import (ContextTypeDef, EnviroTrackApp, MethodDef,
                        TimerInvocation, TrackingObjectDef)
from repro.groups import GroupConfig
from repro.sensing import LineTrajectory, Target


def counting_tracker():
    observed = []

    def count(ctx):
        state = dict(ctx.state or {})
        state["count"] = state.get("count", 0) + 1
        state["by"] = ctx.node_id
        ctx.set_state(state)
        observed.append((ctx.now, ctx.node_id, state["count"]))

    definition = ContextTypeDef(
        name="tracker", activation="seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=1, freshness=1.0)],
        objects=[TrackingObjectDef("counter", [
            MethodDef("count", TimerInvocation(2.0), count)])],
        group=GroupConfig(heartbeat_period=0.5))
    return definition, observed


def test_counter_survives_leadership_migration():
    definition, observed = counting_tracker()
    app = EnviroTrackApp(seed=71, base_loss_rate=0.02,
                         enable_directory=False, enable_mtp=False)
    app.field.deploy_grid(12, 2)
    app.field.add_target(Target(
        "car", "vehicle", LineTrajectory((0.0, 0.5), 0.15),
        signature_radius=1.0))
    app.field.install_detection_sensors("seen", kinds=["vehicle"])
    app.add_context_type(definition)
    app.run(until=80.0)

    counts = [count for _, _, count in observed]
    nodes = {node for _, node, _ in observed}
    # Leadership moved across several nodes …
    assert len(nodes) >= 3
    # … yet the counter never reset: strictly increasing by 1.
    assert counts == list(range(1, len(counts) + 1))


def test_counter_survives_leader_crash():
    definition, observed = counting_tracker()
    app = EnviroTrackApp(seed=72, base_loss_rate=0.02,
                         enable_directory=False, enable_mtp=False)
    app.field.deploy_grid(6, 2)
    app.field.add_target(Target(
        "thing", "vehicle", LineTrajectory((2.5, 0.5), 0.0),
        signature_radius=1.4))
    app.field.install_detection_sensors("seen", kinds=["vehicle"])
    app.add_context_type(definition)
    app.install()
    app.run(until=15.0)

    # Crash whoever leads now.
    leader = next(node for node, agent in app.agents.items()
                  if agent.groups.is_leading("tracker"))
    count_at_crash = max(count for _, _, count in observed)
    app.field.fail_node(leader)
    app.sim.run(until=40.0)

    survivors = [(t, node, count) for t, node, count in observed
                 if node != leader]
    assert survivors, "no successor continued the computation"
    # The successor resumed at (or near) the last committed count —
    # the final pre-crash increment may not have reached a heartbeat.
    first_after = min(count for t, node, count in survivors
                      if count > 0 and t > 15.0)
    assert first_after >= count_at_crash
    final = max(count for _, _, count in survivors)
    assert final > count_at_crash
