"""Tests for heartbeat flooding: member rebroadcast and h-hop forwarding."""

from repro.groups import GroupConfig, GroupManager, HEARTBEAT_KIND, Role
from repro.sensing import SensorField
from repro.sim import Simulator


def build(config, count=8, communication_radius=1.5, sensing=None):
    sim = Simulator(seed=13)
    field = SensorField(sim, communication_radius=communication_radius)
    sensing = sensing if sensing is not None else set()
    managers = {}
    for i in range(count):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing, config)
        manager.start()
        managers[i] = manager
    return sim, field, managers, sensing


def heartbeat_frames(field):
    return field.medium.stats.sent_by_kind[HEARTBEAT_KIND]


def test_member_rebroadcast_multiplies_heartbeats():
    sensing = {1, 2, 3}
    config_on = GroupConfig(heartbeat_period=0.5, member_rebroadcast=True,
                            suppression_range=None)
    config_off = GroupConfig(heartbeat_period=0.5,
                             member_rebroadcast=False,
                             suppression_range=None)
    counts = {}
    for name, config in (("on", config_on), ("off", config_off)):
        sim, field, managers, s = build(config, communication_radius=6.0,
                                        sensing=set(sensing))
        sim.run(until=10.0)
        counts[name] = heartbeat_frames(field)
    # Two members forwarding each heartbeat roughly triples traffic.
    assert counts["on"] >= 2 * counts["off"]


def test_member_rebroadcast_dedupes_by_seq():
    config = GroupConfig(heartbeat_period=0.5, member_rebroadcast=True,
                         suppression_range=None)
    sim, field, managers, sensing = build(config,
                                          communication_radius=6.0)
    sensing.update({1, 2})
    sim.run(until=10.0)
    sent = heartbeat_frames(field)
    # 1 leader + 1 member: each original heartbeat forwarded at most once
    # → at most ~2 frames per period (plus formation traffic).
    periods = 10.0 / 0.5
    assert sent <= 2 * periods + 8


def test_flood_hops_extend_reach_across_sparse_radio():
    """With radio range 1.5 and h=2, a node 3 hops from the leader still
    hears (forwarded) heartbeats and keeps wait memory; with h=0 it never
    does."""
    for hops, expect_reach in ((0, False), (2, True)):
        config = GroupConfig(heartbeat_period=0.5,
                             member_rebroadcast=False, flood_hops=hops,
                             suppression_range=None)
        sim, field, managers, sensing = build(
            config, communication_radius=1.2)
        sensing.add(0)  # leader at one end of the line
        sim.run(until=5.0)
        # Node 3 is 3 radio hops away from node 0.
        state = managers[3]._types["t"]
        heard = state.wait_memory is not None
        assert heard == expect_reach, f"h={hops}"


def test_forwarded_heartbeats_preserve_leader_identity():
    config = GroupConfig(heartbeat_period=0.5, member_rebroadcast=False,
                         flood_hops=2, suppression_range=None)
    sim, field, managers, sensing = build(config,
                                          communication_radius=1.2)
    sensing.add(0)
    sim.run(until=5.0)
    state = managers[2]._types["t"]
    assert state.wait_memory is not None
    assert state.wait_memory.leader == 0


def test_far_node_joins_label_via_forwarded_heartbeat():
    config = GroupConfig(heartbeat_period=0.5, member_rebroadcast=False,
                         flood_hops=2, suppression_range=None)
    sim, field, managers, sensing = build(config,
                                          communication_radius=1.2)
    sensing.add(0)
    sim.run(until=5.0)
    label = managers[0].label("t")
    sensing.add(2)  # starts sensing; has wait memory from the flood
    sim.run(until=8.0)
    assert managers[2].label("t") == label
    assert managers[2].role("t") in (Role.MEMBER, Role.LEADER)
