"""Tracking-error analysis (Figure 3).

Figure 3 plots the real target trajectory against the trajectory the base
station reconstructs from ``MySend`` reports.  "The tracking error occurs
because our sensors have no notion of proximity to the target.  Moreover,
direction anomalies occur due to message loss which causes sensor position
aggregation to use a subset of reporting sensors only."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

Position = Tuple[float, float]
TrackPoint = Tuple[float, Position]  # (report time, tracked position)


@dataclass(frozen=True)
class TrajectoryComparison:
    """Real vs tracked trajectory with per-report errors."""

    points: List[Tuple[float, Position, Position]]  # (t, tracked, real)

    @property
    def errors(self) -> List[float]:
        return [math.hypot(tracked[0] - real[0], tracked[1] - real[1])
                for _, tracked, real in self.points]

    @property
    def mean_error(self) -> float:
        errs = self.errors
        if not errs:
            return float("nan")
        return sum(errs) / len(errs)

    @property
    def max_error(self) -> float:
        errs = self.errors
        if not errs:
            return float("nan")
        return max(errs)

    @property
    def rms_error(self) -> float:
        errs = self.errors
        if not errs:
            return float("nan")
        return math.sqrt(sum(e * e for e in errs) / len(errs))

    def ascii_plot(self, width: int = 60, height: int = 12) -> str:
        """Terminal rendering of Figure 3: '*' tracked, '-' real path."""
        if not self.points:
            return "(no reports)"
        xs = [p[0] for _, tracked, real in self.points
              for p in (tracked, real)]
        ys = [p[1] for _, tracked, real in self.points
              for p in (tracked, real)]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys) - 0.5, max(ys) + 0.5
        if x_hi - x_lo < 1e-9:
            x_hi = x_lo + 1.0
        grid = [[" "] * width for _ in range(height)]

        def plot(p: Position, char: str) -> None:
            col = int((p[0] - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((p[1] - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = char

        for _, tracked, real in self.points:
            plot(real, "-")
        for _, tracked, real in self.points:
            plot(tracked, "*")
        return "\n".join("".join(row) for row in grid)


def compare_track(track: Sequence[TrackPoint],
                  real_position: Callable[[float], Position]
                  ) -> TrajectoryComparison:
    """Pair each tracked report with the ground-truth position at its
    report time."""
    points = [(t, tracked, real_position(t)) for t, tracked in track]
    return TrajectoryComparison(points=points)
