"""Recovery metrics for injected leader crashes.

Turns a finished run's trace plus the injector's ``fault.leader_crash``
records into per-crash recovery measurements:

* **takeover latency** — crash → the earliest instant from which exactly
  one live leader serves the crashed label for the rest of the
  observation window.  §5.2's design bound is roughly the receive
  timeout (≈2.1 × heartbeat period) plus the takeover claim jitter.
* **label continuity** — the *same* context label survived the crash (no
  replacement label was minted for the context type), the paper's
  coherence requirement under churn.
* **duplicate-leader windows** — total time with two or more live
  leaders of the crashed label, the failure mode the takeover probes
  exist to suppress.

Leadership tenures come from ``gm.leader_start``/``gm.leader_stop``;
since a dying leader emits no stop record, ``node.fail`` closes all of
the victim's open tenures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim import Simulator


@dataclass(frozen=True)
class CrashRecovery:
    """What happened after one injected leader crash."""

    crash_time: float
    victim: int
    label: str
    #: Observation window end (next injected crash or end of run).
    window_end: float
    #: Crash → stable unique live leader; None when the label never
    #: stably recovered inside the window.
    takeover_latency: Optional[float]
    #: A unique live leader of the same label was re-established for a
    #: stable dwell inside the window.
    recovered: bool
    #: The crashed label was still being served at the end of the
    #: window — i.e. no replacement label displaced it (§5.2 coherence;
    #: short-lived spurious mints that get suppressed do not count).
    continuity: bool
    #: Total time with >= 2 live leaders of the label inside the window.
    duplicate_time: float


@dataclass(frozen=True)
class RecoveryReport:
    """Aggregate recovery statistics of one run."""

    context_type: str
    crashes: Tuple[CrashRecovery, ...]

    @property
    def crash_count(self) -> int:
        return len(self.crashes)

    @property
    def recovered_count(self) -> int:
        return sum(1 for c in self.crashes if c.recovered)

    @property
    def recovery_rate(self) -> Optional[float]:
        if not self.crashes:
            return None
        return self.recovered_count / len(self.crashes)

    @property
    def continuity_rate(self) -> Optional[float]:
        if not self.crashes:
            return None
        return sum(1 for c in self.crashes if c.continuity) \
            / len(self.crashes)

    def latencies(self) -> List[float]:
        return [c.takeover_latency for c in self.crashes
                if c.takeover_latency is not None]

    @property
    def mean_latency(self) -> Optional[float]:
        values = self.latencies()
        return sum(values) / len(values) if values else None

    @property
    def median_latency(self) -> Optional[float]:
        return _quantile(self.latencies(), 0.5)

    @property
    def p95_latency(self) -> Optional[float]:
        return _quantile(self.latencies(), 0.95)

    @property
    def max_latency(self) -> Optional[float]:
        values = self.latencies()
        return max(values) if values else None

    @property
    def total_duplicate_time(self) -> float:
        return sum(c.duplicate_time for c in self.crashes)


def _quantile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _leadership_intervals(sim: Simulator, context_type: str
                          ) -> List[Tuple[float, float, int, str]]:
    """(start, end, node, label) tenures of live leaders of the type."""
    open_tenures: Dict[Tuple[int, str], float] = {}
    intervals: List[Tuple[float, float, int, str]] = []

    def close(key: Tuple[int, str], when: float) -> None:
        begin = open_tenures.pop(key, None)
        if begin is not None and when > begin:
            intervals.append((begin, when, key[0], key[1]))

    for rec in sim.trace:
        if rec.category == "node.fail":
            for key in [k for k in open_tenures if k[0] == rec.node]:
                close(key, rec.time)
            continue
        if rec.detail.get("type") != context_type:
            continue
        label = rec.detail.get("label")
        if label is None or rec.node is None:
            continue
        key = (rec.node, label)
        if rec.category == "gm.leader_start":
            open_tenures[key] = rec.time
        elif rec.category == "gm.leader_stop":
            close(key, rec.time)
    for key in list(open_tenures):
        close(key, sim.now)
    return intervals


def _count_steps(intervals: List[Tuple[float, float, int, str]],
                 label: str, start: float, end: float
                 ) -> List[Tuple[float, int]]:
    """Piecewise-constant live-leader count of ``label`` over [start, end].

    Returns (time, count) breakpoints beginning at ``start``.
    """
    deltas: List[Tuple[float, int]] = []
    base = 0
    for lo, hi, _node, tenure_label in intervals:
        if tenure_label != label:
            continue
        lo_clip, hi_clip = max(lo, start), min(hi, end)
        if hi_clip <= lo_clip:
            continue
        if lo_clip == start and lo < start:
            base += 1
            if hi_clip < end:
                deltas.append((hi_clip, -1))
            continue
        deltas.append((lo_clip, +1))
        if hi_clip < end:
            deltas.append((hi_clip, -1))
    # Tenures covering all of [start, end] contribute to base only.
    steps: List[Tuple[float, int]] = [(start, base)]
    count = base
    for time, delta in sorted(deltas):
        count += delta
        if time == steps[-1][0]:
            steps[-1] = (time, count)
        else:
            steps.append((time, count))
    return steps


def analyze_recovery(sim: Simulator, context_type: str,
                     stability: float = 0.25) -> RecoveryReport:
    """Measure recovery after every injected ``fault.leader_crash``.

    ``stability``: minimum dwell (seconds) of a unique-live-leader state
    for it to count as "re-established" — transient count==1 instants
    while duplicates are still being resolved by yields do not.  Runs
    that reach the window end count regardless of dwell.
    """
    crashes = [rec for rec in sim.trace
               if rec.category == "fault.leader_crash"
               and rec.detail.get("type") == context_type]
    intervals = _leadership_intervals(sim, context_type)
    results: List[CrashRecovery] = []
    for index, crash in enumerate(crashes):
        window_end = (crashes[index + 1].time
                      if index + 1 < len(crashes) else sim.now)
        label = crash.detail.get("label")
        if label is None or window_end <= crash.time:
            continue
        steps = _count_steps(intervals, label, crash.time, window_end)
        recovery_at: Optional[float] = None
        duplicate_time = 0.0
        final_count = 0
        for position, (time, count) in enumerate(steps):
            next_time = (steps[position + 1][0]
                         if position + 1 < len(steps) else window_end)
            final_count = count
            if count >= 2:
                duplicate_time += next_time - time
            stable = (next_time - time >= stability
                      or next_time >= window_end)
            if count == 1 and stable and recovery_at is None:
                recovery_at = time
        recovered = recovery_at is not None
        latency = (max(0.0, recovery_at - crash.time)
                   if recovered else None)
        results.append(CrashRecovery(
            crash_time=crash.time, victim=crash.node or -1, label=label,
            window_end=window_end, takeover_latency=latency,
            recovered=recovered,
            continuity=recovered and final_count >= 1,
            duplicate_time=duplicate_time))
    return RecoveryReport(context_type=context_type,
                          crashes=tuple(results))
