"""Tracked entities in the physical environment.

A :class:`Target` is what EnviroTrack attaches a context label to: a
vehicle, a fire, an intruder.  Targets have a *sensory signature* — the
radius within which sensors detect them — plus free-form attributes used by
specific sensor models (ferrous mass for magnetometers, temperature for
fire sensing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .trajectory import StaticPoint, Trajectory

Position = Tuple[float, float]


@dataclass
class Target:
    """One physical entity moving (or sitting) in the field.

    Parameters
    ----------
    name:
        Unique identifier for analysis (never visible to the protocol —
        EnviroTrack must *discover* targets through sensing).
    kind:
        Entity type, matched against sense functions (``"vehicle"``,
        ``"fire"``, …).
    trajectory:
        Position as a function of time.
    signature_radius:
        Detection radius in grid units (the paper's tank: 100 m detection
        on a 140 m grid ⇒ ≈0.7 grid; stress tests use 1–2 grids).
    attributes:
        Sensor-model inputs, e.g. ``{"ferrous_mass": 44000.0}``.
    active_from / active_until:
        Lifetime window; outside it the target is not sensible at all.
    """

    name: str
    kind: str
    trajectory: Trajectory
    signature_radius: float = 1.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    active_from: float = 0.0
    active_until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.signature_radius <= 0:
            raise ValueError(
                f"signature radius must be positive: {self.signature_radius}")

    def active_at(self, t: float) -> bool:
        if t < self.active_from:
            return False
        if self.active_until is not None and t > self.active_until:
            return False
        return True

    def position(self, t: float) -> Position:
        return self.trajectory.position(t)

    def distance_to(self, point: Position, t: float) -> float:
        x, y = self.position(t)
        return math.hypot(x - point[0], y - point[1])

    def detectable_from(self, point: Position, t: float) -> bool:
        """Is this target within its signature radius of ``point``?"""
        return (self.active_at(t)
                and self.distance_to(point, t) <= self.signature_radius)


def fire_target(name: str, point: Position, radius: float = 1.0,
                temperature: float = 400.0,
                ignition_time: float = 0.0,
                growth_rate: float = 0.0) -> "GrowingTarget":
    """Convenience constructor for a stationary (optionally growing) fire."""
    return GrowingTarget(
        name=name, kind="fire", trajectory=StaticPoint(point),
        signature_radius=radius,
        attributes={"temperature": temperature, "light": True},
        active_from=ignition_time, growth_rate=growth_rate)


@dataclass
class GrowingTarget(Target):
    """A target whose sensory signature grows over time (fire spread)."""

    growth_rate: float = 0.0
    max_radius: Optional[float] = None

    def radius_at(self, t: float) -> float:
        if not self.active_at(t):
            return 0.0
        grown = self.signature_radius + self.growth_rate * (
            t - self.active_from)
        if self.max_radius is not None:
            grown = min(grown, self.max_radius)
        return grown

    def detectable_from(self, point: Position, t: float) -> bool:
        return (self.active_at(t)
                and self.distance_to(point, t) <= self.radius_at(t))
