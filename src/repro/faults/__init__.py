"""Fault injection ("chaos") subsystem.

Declarative :class:`FaultPlan` scripts + a :class:`FaultInjector` that
schedules them into a simulation through the substrate's failure hooks.
See :mod:`repro.metrics.recovery` for the matching measurements and the
``repro chaos`` experiment for the recovery-latency sweep.
"""

from .injector import FaultInjector
from .plan import (ClockSkew, EnergyDrain, FaultEvent, FaultPlan,
                   LeaderCrash, LossSpike, NodeCrash, NodeReboot,
                   RegionJam, leader_crash_schedule)

__all__ = [
    "ClockSkew",
    "EnergyDrain",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LeaderCrash",
    "LossSpike",
    "NodeCrash",
    "NodeReboot",
    "RegionJam",
    "leader_crash_schedule",
]
