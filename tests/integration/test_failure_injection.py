"""Failure-injection integration tests.

Sensor networks "must not depend on the correctness or availability of any
particular node" — these tests kill leaders, black out the radio, and
corrupt frames, and assert tracking survives.
"""

from repro.experiments import TankScenario, run_tank_scenario
from repro.groups import GroupConfig, GroupManager, HEARTBEAT_KIND, Role
from repro.radio import BROADCAST, Frame
from repro.sensing import SensorField
from repro.sim import Simulator


def test_repeated_leader_kills_do_not_break_coherence():
    scenario = TankScenario(seed=17, columns=14,
                            leader_kill_times=(20.0, 45.0, 70.0))
    result = run_tank_scenario(scenario)
    assert result.handovers.takeovers >= 2
    assert result.coherent


def test_radio_blackout_and_recovery():
    """Disable the whole medium mid-run; the group re-forms on the same
    label via wait memory or a fresh one after memory expires — either
    way, tracking resumes."""
    sim = Simulator(seed=23)
    field = SensorField(sim, communication_radius=6.0)
    sensing = {2, 3}
    managers = {}
    for i in range(6):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing,
                      GroupConfig(heartbeat_period=0.5))
        manager.start()
        managers[i] = manager
    sim.run(until=3.0)
    assert sum(m.role("t") is Role.LEADER for m in managers.values()) == 1

    # Blackout: every port disabled (no frame is received by anyone).
    for node_id in field.medium.node_ids():
        field.medium.port(node_id).enabled = False
    sim.run(until=10.0)
    # Both sensors now believe they lead (receive timers expired).
    leaders = [n for n, m in managers.items() if m.role("t") is Role.LEADER]
    assert len(leaders) >= 1

    # Radio restored: yield/suppression converge back to one leader.
    for node_id in field.medium.node_ids():
        field.medium.port(node_id).enabled = True
    sim.run(until=20.0)
    leaders = [n for n, m in managers.items() if m.role("t") is Role.LEADER]
    assert len(leaders) == 1


def test_garbage_frames_do_not_crash_protocols():
    sim = Simulator(seed=29)
    field = SensorField(sim, communication_radius=6.0)
    sensing = {1}
    managers = {}
    for i in range(3):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing,
                      GroupConfig(heartbeat_period=0.5))
        manager.start()
        managers[i] = manager
    sim.run(until=2.0)
    # Inject malformed heartbeat payloads of every shape.
    attacker = field.motes[2]
    for payload in ({}, {"context_type": "t"},
                    {"context_type": "t", "label": 5, "leader": "x",
                     "weight": [], "seq": None},
                    {"context_type": "nope", "label": "t#1.1",
                     "leader": 1, "weight": 0, "seq": 1}):
        attacker.send(Frame(src=2, dst=BROADCAST, kind=HEARTBEAT_KIND,
                            payload=payload))
    sim.run(until=6.0)  # must not raise
    assert managers[1].role("t") is Role.LEADER


def test_majority_of_nodes_dead_still_tracks():
    """Kill every other mote: redundancy carries the tracking."""
    scenario = TankScenario(seed=31, columns=14, rows=3,
                            sensing_radius=1.5)
    from repro.experiments.scenarios import build_app
    app = build_app(scenario)
    app.install()
    for node_id in list(app.field.motes):
        if node_id % 2 == 1 and (app.base_station is None
                                 or node_id != app.base_station.node_id):
            app.field.fail_node(node_id)
    app.run(until=scenario.duration)
    from repro.metrics import analyze_handovers
    stats = analyze_handovers(app.sim, "tracker", grace=1.5)
    assert stats.effective_labels(), "tracking never formed"
    assert app.base_station.reports, "no reports reached the pursuer"
