"""Medium spatial-index microbenchmark (pytest-benchmark wrapper).

Wraps :mod:`repro.experiments.bench` — the same transmit-storm workload
``python -m repro bench`` times — so the index's speedup shows up in the
benchmark suite next to the substrate microbenches.  The storm itself
verifies grid and brute-force runs produce identical trace digests, so
this doubles as a differential check at benchmark scale.
"""

from conftest import QUICK, emit

from repro.experiments.bench import _run_storm, bench_medium

NODES = 100 if QUICK else 500
FRAMES = 120 if QUICK else 400


def test_transmit_storm_grid(benchmark):
    """Grid-indexed medium: carrier sense + neighbors + transmit."""
    seconds, digest = benchmark(
        lambda: _run_storm("grid", NODES, FRAMES, seed=2004))
    assert digest


def test_transmit_storm_bruteforce(benchmark):
    """Full-scan medium on the identical workload (the reference cost)."""
    seconds, digest = benchmark(
        lambda: _run_storm("bruteforce", NODES, FRAMES, seed=2004))
    assert digest


def test_medium_speedup_table():
    """The BENCH_medium.json sweep: both modes, digest-verified."""
    result = bench_medium(quick=QUICK)
    emit("Medium spatial-index microbench", result.format_table())
    largest = max(result.node_counts())
    # The committed baseline records ≈5x at 500 nodes; anything under
    # parity at the largest size means the index stopped indexing.
    assert result.point(largest).speedup > 1.0
