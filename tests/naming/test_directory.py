"""Unit tests for the directory service (§5.3)."""

import pytest

from repro.naming import DirectoryService, FieldBounds
from repro.naming.directory import REPLICATE_KIND
from repro.radio import distance
from repro.sensing import SensorField
from repro.sim import Simulator
from repro.transport import GeoRouter


def build(columns=8, rows=8, communication_radius=2.0, entry_ttl=30.0,
          **service_kwargs):
    sim = Simulator(seed=9)
    field = SensorField(sim, communication_radius=communication_radius)
    field.deploy_grid(columns, rows)
    bounds = FieldBounds(0.0, 0.0, float(columns - 1), float(rows - 1))
    services = {}
    for mote in field.mote_list():
        router = GeoRouter(mote)
        router.start()
        service = DirectoryService(mote, router, bounds,
                                   entry_ttl=entry_ttl, hash_margin=1.0,
                                   **service_kwargs)
        service.start()
        services[mote.node_id] = service
    return sim, field, services


def lookup(sim, services, node_id, context_type, timeout=5.0):
    answers = []
    services[node_id].lookup(context_type, answers.extend)
    sim.run(until=sim.now + timeout)
    return answers


def test_register_then_query():
    sim, field, services = build()
    services[0].register("fire", "fire#3.1", location=(2.0, 2.0), leader=3)
    sim.run(until=2.0)
    answers = lookup(sim, services, 63, "fire")
    assert [e.label for e in answers] == ["fire#3.1"]
    assert answers[0].leader == 3
    assert answers[0].location == (2.0, 2.0)


def test_query_for_unknown_type_returns_empty():
    sim, field, services = build()
    answers = lookup(sim, services, 5, "ghost")
    assert answers == []


def test_multiple_labels_of_one_type():
    sim, field, services = build()
    # Staggered like real periodic refreshes (simultaneous fire-and-forget
    # registrations can collide on the air; refresh repairs that in
    # production use).
    services[0].register("fire", "fire#1.1", (1.0, 1.0), leader=1)
    sim.schedule(1.0, services[10].register, "fire", "fire#2.2",
                 (5.0, 5.0), 2)
    sim.run(until=3.0)
    answers = lookup(sim, services, 30, "fire")
    assert sorted(e.label for e in answers) == ["fire#1.1", "fire#2.2"]


def test_update_refreshes_location():
    sim, field, services = build()
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    services[7].register("car", "car#1.1", (6.0, 0.0), leader=9)
    sim.run(until=sim.now + 2.0)
    answers = lookup(sim, services, 20, "car")
    assert len(answers) == 1
    assert answers[0].leader == 9
    assert answers[0].location == (6.0, 0.0)


def test_entries_expire_without_updates():
    sim, field, services = build(entry_ttl=5.0)
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    assert lookup(sim, services, 20, "car")
    sim.run(until=20.0)
    assert lookup(sim, services, 20, "car") == []


def test_replication_survives_directory_node_failure():
    sim, field, services = build()
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    # Find and kill the node holding the entry nearest the hash point.
    holders = [node for node, service in services.items()
               if service.entries_for("car")]
    assert holders, "registration never stored"
    primary = min(holders, key=lambda n: n)
    field.fail_node(primary)
    sim.run(until=sim.now + 1.0)
    answers = lookup(sim, services, 40, "car", timeout=8.0)
    assert [e.label for e in answers] == ["car#1.1"]


def test_directory_point_is_shared_knowledge():
    sim, field, services = build()
    points = {service.directory_point("fire")
              for service in services.values()}
    assert len(points) == 1


def test_lookup_survives_leader_handoff():
    # The label migrates to a new leader (handover); a later registration
    # must win, and the directory must keep answering with one entry.
    sim, field, services = build()
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    services[9].register("car", "car#1.1", (2.0, 1.0), leader=9)
    sim.run(until=sim.now + 2.0)
    answers = lookup(sim, services, 42, "car")
    assert [(e.label, e.leader) for e in answers] == [("car#1.1", 9)]
    assert answers[0].location == (2.0, 1.0)


def test_stale_registration_rejected():
    # A delayed replica of the *old* leader's registration must not
    # overwrite the newer entry (the `updated` timestamp arbitrates).
    sim, field, services = build()
    service = services[0]
    fresh = {"label": "car#1.1", "context_type": "car",
             "location": [2.0, 1.0], "leader": 9, "time": 10.0}
    stale = {"label": "car#1.1", "context_type": "car",
             "location": [0.0, 0.0], "leader": 1, "time": 4.0}
    status, entry = service._store(fresh)
    assert status == "stored" and entry.leader == 9
    status, kept = service._store(stale)
    assert status == "stale"
    assert kept.leader == 9  # the stored (newer) entry wins
    assert [e.leader for e in service.entries_for("car")] == [9]


def directory_region(field, services, context_type):
    """Node ids within radio range of the type's hashed coordinate."""
    point = services[0].directory_point(context_type)
    radius = field.medium.communication_radius
    return [node for node, service in services.items()
            if distance(field.motes[node].position, point) <= radius]


def test_lookup_times_out_with_empty_answer_and_no_leak():
    # Kill the whole directory neighborhood: queries route into a dead
    # end, no response ever comes back, and only the client-side timeout
    # stands between the caller and a stranded callback.
    sim, field, services = build(lookup_timeout=1.0, lookup_retries=1)
    for node in directory_region(field, services, "fire"):
        field.fail_node(node)
    client = services[63]
    answers = []
    called = []
    client.lookup("fire", lambda entries: (answers.extend(entries),
                                           called.append(True)))
    assert len(client._pending_queries) == 1
    sim.run(until=sim.now + 10.0)
    assert called == [True]  # callback fired exactly once, with []
    assert answers == []
    assert client._pending_queries == {}  # GC'd, no leak
    assert sim.metrics.get(
        "repro_dir_lookup_timeouts_total").value() >= 2.0  # both attempts


def test_lookup_retry_recovers_after_transient_outage():
    sim, field, services = build(lookup_timeout=1.0, lookup_retries=3)
    services[0].register("fire", "fire#3.1", (2.0, 2.0), leader=3)
    sim.run(until=2.0)
    region = directory_region(field, services, "fire")
    for node in region:
        field.fail_node(node)
    answers = []
    services[63].lookup("fire", answers.extend)
    # The first attempt dies against the dead region; recovery happens
    # before the retry budget runs out (recover keeps directory RAM —
    # this is an outage, not a power cycle).
    sim.schedule(1.5, lambda: [field.motes[n].recover() for n in region])
    sim.run(until=sim.now + 10.0)
    assert [e.label for e in answers] == ["fire#3.1"]
    assert sim.metrics.get(
        "repro_directory_ops_total").value("lookup_retry") >= 1.0


def test_dead_client_lookup_collected_without_callback():
    sim, field, services = build(lookup_timeout=1.0, lookup_retries=0)
    client = services[63]
    called = []
    client.lookup("ghost", lambda entries: called.append(entries))
    field.fail_node(63)
    sim.run(until=sim.now + 5.0)
    assert client._pending_queries == {}  # collected
    assert called == []  # nobody home: no callback either


def test_lookup_timeout_validation():
    sim, field, services = build(columns=2, rows=2)
    mote = field.motes[0]
    router = GeoRouter(mote)
    bounds = FieldBounds(0.0, 0.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        DirectoryService(mote, router, bounds, lookup_timeout=0.0)
    with pytest.raises(ValueError):
        DirectoryService(mote, router, bounds, lookup_retries=-1)


def test_stale_register_not_rebroadcast():
    # A stale registration must be rejected *silently*: replicating it
    # would overwrite the one-hop neighbors' newer replicas.
    sim, field, services = build()
    service = services[0]
    replicated = []
    service.broadcast = lambda kind, payload: replicated.append(kind)
    fresh = {"label": "car#1.1", "context_type": "car",
             "location": [2.0, 1.0], "leader": 9, "time": 10.0}
    stale = {"label": "car#1.1", "context_type": "car",
             "location": [0.0, 0.0], "leader": 1, "time": 4.0}
    service._on_register(fresh, origin=9)
    service._on_register(stale, origin=1)
    assert replicated == [REPLICATE_KIND]  # only the fresh one went out
    assert [e.leader for e in service.entries_for("car")] == [9]
    assert sim.metrics.get("repro_directory_ops_total").value(
        "stale_register") == 1.0


def test_lookup_survives_directory_node_detach():
    # Unlike fail_node (dead mote, radio still attached), remove_mote
    # detaches the radio entirely; replicas must still answer queries.
    sim, field, services = build()
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    holders = [node for node, service in services.items()
               if service.entries_for("car")]
    assert holders, "registration never stored"
    primary = min(holders)
    field.remove_mote(primary)
    sim.run(until=sim.now + 1.0)
    answers = lookup(sim, services, 40, "car", timeout=8.0)
    assert [e.label for e in answers] == ["car#1.1"]
