"""The EnviroTrack middleware core: declarations, runtime and assembly."""

from .app import EnviroTrackApp
from .base_station import APP_REPORT_KIND, BaseStation, ReportRecord
from .context import (ContextTypeDef, MethodDef, PortInvocation,
                      TimerInvocation, TrackingObjectDef, WhenInvocation)
from .middleware import EnviroTrackAgent
from .runtime import ObjectContext

__all__ = [
    "APP_REPORT_KIND",
    "BaseStation",
    "ContextTypeDef",
    "EnviroTrackAgent",
    "EnviroTrackApp",
    "MethodDef",
    "ObjectContext",
    "PortInvocation",
    "ReportRecord",
    "TimerInvocation",
    "TrackingObjectDef",
    "WhenInvocation",
]
