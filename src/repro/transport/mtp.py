"""MTP — the transport layer protocol (§5.4).

Context labels are "akin to IP addresses"; the group leader of a label
oversees all communication addressed to it.  Remote method invocation
between tracking objects works like this:

1. the source object's leader resolves the destination label to a node:
   first its *last-known-leader* LRU table, falling back to a directory
   lookup ("the directory services ... determine where an object is when
   it is first contacted");
2. the message travels by geographic routing to that node, carrying the
   source's current leader in the header;
3. a node receiving an MTP message for a label it no longer leads forwards
   it along its own last-known-leader pointer — "messages from moderately
   out-of-date remote senders can be forwarded along a chain of past
   leaders to the current leader";
4. every endpoint updates its table from the header, so "the more traffic
   exchanged between the endpoints, the more up-to-date the leader
   information is".

Connections are identified by (source label:port, destination label:port);
port ids map to methods of individual tracking objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

from ..groups import GroupManager, HEARTBEAT_KIND, Heartbeat, label_type
from ..node import Component, Mote

if TYPE_CHECKING:  # avoid the naming↔transport import cycle at runtime
    from ..naming import DirectoryEntry, DirectoryService
from .routing import GeoRouter
from .tables import LastKnownLeaderTable

MTP_KIND = "mtp.invoke"

#: Maximum forwarding-chain length before a message is dropped.
DEFAULT_CHAIN_LIMIT = 8

#: Handler signature: (args, source_label, source_port, source_leader).
PortHandler = Callable[[Dict[str, Any], str, int, int], None]


@dataclass
class Invocation:
    """One remote method invocation in flight."""

    src_label: str
    src_port: int
    src_leader: int
    dest_label: str
    dest_port: int
    args: Dict[str, Any]
    chain: int = DEFAULT_CHAIN_LIMIT

    def to_payload(self) -> Dict[str, Any]:
        return {
            "src_label": self.src_label,
            "src_port": self.src_port,
            "src_leader": self.src_leader,
            "dest_label": self.dest_label,
            "dest_port": self.dest_port,
            "args": self.args,
            "chain": self.chain,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> Optional["Invocation"]:
        try:
            return cls(
                src_label=payload["src_label"],
                src_port=int(payload["src_port"]),
                src_leader=int(payload["src_leader"]),
                dest_label=payload["dest_label"],
                dest_port=int(payload["dest_port"]),
                args=dict(payload.get("args", {})),
                chain=int(payload.get("chain", DEFAULT_CHAIN_LIMIT)),
            )
        except (KeyError, TypeError, ValueError):
            return None


class MtpAgent(Component):
    """MTP endpoint on one mote.

    Parameters
    ----------
    mote, router, groups:
        Host mote, its geographic router and group manager.
    directory:
        Directory service for first-contact lookups; optional — without it
        only table-resolved destinations work.
    table_capacity:
        Last-known-leader LRU size.
    """

    name = "mtp"

    def __init__(self, mote: Mote, router: GeoRouter, groups: GroupManager,
                 directory: Optional["DirectoryService"] = None,
                 table_capacity: int = 16) -> None:
        super().__init__(mote)
        self.router = router
        self.groups = groups
        self.directory = directory
        self.table = LastKnownLeaderTable(capacity=table_capacity)
        self._ports: Dict[Tuple[str, int], PortHandler] = {}
        self._pending: Dict[str, List[Invocation]] = {}
        self.delivered = 0
        self.forwarded = 0
        self.dropped = 0
        # Telemetry counters (no-ops when telemetry is disabled).
        metrics = self.sim.metrics
        self._messages_metric = metrics.counter(
            "repro_mtp_messages_total",
            "MTP invocations by final per-hop outcome.", ("outcome",))
        self._drops_metric = metrics.counter(
            "repro_mtp_drops_total", "MTP drops by reason.", ("reason",))

    def on_start(self) -> None:
        self.router.register_delivery(MTP_KIND, self._on_invocation)
        # Forwarding pointers come for free from overheard heartbeats: a
        # past leader stays in radio range of its successor for a while and
        # keeps its pointer fresh from the successor's keep-alives.
        self.handle(HEARTBEAT_KIND, self._on_heartbeat)

    # ------------------------------------------------------------------
    # Port registry
    # ------------------------------------------------------------------
    def register_port(self, context_type: str, port: int,
                      handler: PortHandler) -> None:
        """Bind ``port`` of objects attached to ``context_type``.

        The handler runs on whichever node currently leads a label of the
        type when an invocation for that label arrives.
        """
        key = (context_type, port)
        if key in self._ports:
            raise ValueError(f"port {port} of {context_type!r} taken")
        self._ports[key] = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def invoke(self, src_label: str, dest_label: str, dest_port: int,
               args: Dict[str, Any], src_port: int = 0) -> None:
        """Invoke ``dest_port`` on the object attached to ``dest_label``."""
        invocation = Invocation(
            src_label=src_label, src_port=src_port,
            src_leader=self.node_id, dest_label=dest_label,
            dest_port=dest_port, args=args)
        self._resolve_and_send(invocation)

    def _resolve_and_send(self, invocation: Invocation) -> None:
        pointer = self.table.get(invocation.dest_label)
        if pointer is not None:
            self._send_to(pointer.leader, invocation)
            return
        if self.directory is None:
            self.dropped += 1
            self._messages_metric.inc(1.0, "dropped")
            self._drops_metric.inc(1.0, "no_route")
            self.record("drop", reason="no_route",
                        dest=invocation.dest_label)
            return
        dest_label = invocation.dest_label
        queue = self._pending.setdefault(dest_label, [])
        queue.append(invocation)
        if len(queue) > 1:
            return  # lookup already in flight
        self.directory.lookup(
            label_type(dest_label),
            lambda entries: self._lookup_done(dest_label, entries))

    def _lookup_done(self, dest_label: str,
                     entries: List["DirectoryEntry"]) -> None:
        waiting = self._pending.pop(dest_label, [])
        match = next((entry for entry in entries
                      if entry.label == dest_label), None)
        if match is None:
            self.dropped += len(waiting)
            self._messages_metric.inc(float(len(waiting)), "dropped")
            self._drops_metric.inc(float(len(waiting)), "unknown_label")
            self.record("drop", reason="unknown_label", dest=dest_label,
                        count=len(waiting))
            return
        self.table.update(dest_label, match.leader, match.updated)
        for invocation in waiting:
            self._send_to(match.leader, invocation)

    def _send_to(self, node: int, invocation: Invocation) -> None:
        self.router.route_to_node(node, MTP_KIND, invocation.to_payload())

    # ------------------------------------------------------------------
    # Receiving / forwarding
    # ------------------------------------------------------------------
    def _on_invocation(self, payload: Dict[str, Any], origin: int) -> None:
        invocation = Invocation.from_payload(payload)
        if invocation is None:
            return
        # Header learning: remember the source's current leader.
        self.table.update(invocation.src_label, invocation.src_leader,
                          self.now)
        if invocation.dest_label in self.groups.labels_led():
            self._deliver(invocation)
            return
        self._forward(invocation)

    def _deliver(self, invocation: Invocation) -> None:
        handler = self._ports.get(
            (label_type(invocation.dest_label), invocation.dest_port))
        if handler is None:
            self.dropped += 1
            self._messages_metric.inc(1.0, "dropped")
            self._drops_metric.inc(1.0, "no_port")
            self.record("drop", reason="no_port",
                        dest=invocation.dest_label,
                        port=invocation.dest_port)
            return
        self.delivered += 1
        self._messages_metric.inc(1.0, "delivered")
        self.record("deliver", dest=invocation.dest_label,
                    port=invocation.dest_port, src=invocation.src_label)
        handler(invocation.args, invocation.src_label,
                invocation.src_port, invocation.src_leader)

    def _forward(self, invocation: Invocation) -> None:
        """Past-leader forwarding: push the message one pointer closer to
        the label's current leader."""
        if invocation.chain <= 0:
            self.dropped += 1
            self._messages_metric.inc(1.0, "dropped")
            self._drops_metric.inc(1.0, "chain_exhausted")
            self.record("drop", reason="chain_exhausted",
                        dest=invocation.dest_label)
            return
        pointer = self.table.get(invocation.dest_label)
        if pointer is None or pointer.leader == self.node_id:
            self.dropped += 1
            self._messages_metric.inc(1.0, "dropped")
            self._drops_metric.inc(1.0, "no_pointer")
            self.record("drop", reason="no_pointer",
                        dest=invocation.dest_label)
            return
        invocation.chain -= 1
        self.forwarded += 1
        self._messages_metric.inc(1.0, "forwarded")
        self.record("forward", dest=invocation.dest_label,
                    next=pointer.leader)
        self._send_to(pointer.leader, invocation)

    # ------------------------------------------------------------------
    def _on_heartbeat(self, frame) -> None:
        beat = Heartbeat.from_payload(frame.payload)
        if beat is None:
            return
        self.table.update(beat.label, beat.leader, self.now)
