"""End-to-end DSL tests: multi-context programs running on the full stack."""

from repro.core import EnviroTrackApp
from repro.lang import compile_source
from repro.sensing import LineTrajectory, StaticPoint, Target, fire_target

TWO_CONTEXTS = """
begin context vehicle_tracker
    activation: vehicle_detector()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(3s)
        report() {
            MySend(pursuer, self:label, location);
        }
    end
end context

begin context fire_watch
    activation: temperature() > 180
    heat : max(temperature) confidence=2, freshness=2s
    begin object alarm
        invocation: heat > 300
        raise_alarm() {
            MySend(pursuer, self:label, heat);
        }
    end
end context
"""


def build_app():
    from repro.lang import default_library
    library = default_library()
    library.register("vehicle_detector",
                     lambda mote: (mote.read_sensor("vehicle_seen")
                                   if mote.has_sensor("vehicle_seen")
                                   else False))
    app = EnviroTrackApp(seed=19, base_loss_rate=0.02)
    app.field.deploy_grid(10, 4)
    app.field.add_target(Target(
        "car", "vehicle", LineTrajectory((0.0, 1.5), 0.1),
        signature_radius=1.0))
    app.field.add_target(fire_target("blaze", (7.0, 3.0), radius=1.5,
                                     temperature=400.0,
                                     ignition_time=10.0))
    app.field.install_detection_sensors("vehicle_seen", kinds=["vehicle"])
    app.field.install_ambient_sensors("temperature", "temperature",
                                      ambient=25.0)
    for definition in compile_source(TWO_CONTEXTS, library=library):
        app.add_context_type(definition)
    base = app.place_base_station((-1.0, -2.0))
    return app, base


def test_two_context_types_run_concurrently():
    app, base = build_app()
    app.run(until=60.0)
    by_type = {}
    for record in base.reports:
        by_type.setdefault(record.context_type, []).append(record)
    assert "vehicle_tracker" in by_type
    assert "fire_watch" in by_type
    # The vehicle track advances; the fire alarm reports a hot reading.
    vehicle_reports = by_type["vehicle_tracker"]
    assert len(vehicle_reports) >= 3
    fire_reports = by_type["fire_watch"]
    assert all(record.values.get("heat", 0) > 300
               for record in fire_reports)


def test_motes_join_both_groups_simultaneously():
    """§3.2.1: a sensor node can be part of multiple groups at one time."""
    app, base = build_app()
    # Park the car inside the fire's neighbourhood.
    app.field.remove_target("car")
    app.field.add_target(Target(
        "car", "vehicle", StaticPoint((7.0, 2.5)), signature_radius=1.0))
    app.run(until=30.0)
    both = [
        agent for agent in app.agents.values()
        if agent.groups.label("vehicle_tracker") is not None
        and agent.groups.label("fire_watch") is not None
    ]
    assert both, "no mote ended up in both groups"
