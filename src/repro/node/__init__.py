"""Mote runtime: CPU model, node, and TinyOS-style components."""

from .component import Component
from .cpu import DEFAULT_QUEUE_LIMIT, DEFAULT_TASK_COST, Cpu
from .energy import EnergyLedger, EnergyMeter, EnergyModel
from .mote import Mote

__all__ = [
    "Component",
    "Cpu",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_TASK_COST",
    "EnergyLedger",
    "EnergyMeter",
    "EnergyModel",
    "Mote",
]
