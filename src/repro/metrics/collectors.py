"""Communication metrics — the raw numbers behind Table 1.

Table 1 reports, per target speed: % lost leader heartbeats (HB loss),
% lost sensor messages during data aggregation (Msg loss), and average
useful link utilization against the 50 kbps capacity.  These helpers read
the same quantities off the medium statistics, using the paper's
definitions (a message is lost when it was "sent but never received on any
other mote"; utilization is total bits/s over total capacity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..groups import HEARTBEAT_KIND
from ..aggregation import REPORT_KIND
from ..radio import Medium


@dataclass(frozen=True)
class CommunicationMetrics:
    """One row of Table 1 (fractions in percent)."""

    heartbeat_loss_pct: float
    report_loss_pct: float
    link_utilization_pct: float
    heartbeats_sent: int
    reports_sent: int
    frames_sent: int

    def as_row(self) -> str:
        return (f"HB loss {self.heartbeat_loss_pct:6.2f}%   "
                f"Msg loss {self.report_loss_pct:6.2f}%   "
                f"Link util {self.link_utilization_pct:5.2f}%")


def communication_metrics(medium: Medium, now: float
                          ) -> CommunicationMetrics:
    """Extract the Table 1 metrics from a finished run's medium."""
    stats = medium.stats
    return CommunicationMetrics(
        # HB loss: fraction of heartbeat reception opportunities lost — a
        # mote in range missing a heartbeat is a lost heartbeat (each miss
        # delays timers exactly as on the testbed).
        heartbeat_loss_pct=100.0 * stats.reception_loss_fraction(
            HEARTBEAT_KIND),
        # Msg loss: member→leader reports the addressed leader never got.
        report_loss_pct=100.0 * stats.addressed_loss_fraction(REPORT_KIND),
        link_utilization_pct=100.0 * stats.link_utilization(
            medium.bitrate, now),
        heartbeats_sent=stats.sent_by_kind[HEARTBEAT_KIND],
        reports_sent=stats.sent_by_kind[REPORT_KIND],
        frames_sent=stats.frames_sent,
    )


def mean_metrics(samples: Sequence[CommunicationMetrics]
                 ) -> CommunicationMetrics:
    """Average rows across independent runs ("averaged over three
    independent runs")."""
    if not samples:
        raise ValueError("no samples to average")
    n = len(samples)
    return CommunicationMetrics(
        heartbeat_loss_pct=sum(s.heartbeat_loss_pct for s in samples) / n,
        report_loss_pct=sum(s.report_loss_pct for s in samples) / n,
        link_utilization_pct=sum(s.link_utilization_pct
                                 for s in samples) / n,
        heartbeats_sent=round(sum(s.heartbeats_sent for s in samples) / n),
        reports_sent=round(sum(s.reports_sent for s in samples) / n),
        frames_sent=round(sum(s.frames_sent for s in samples) / n),
    )
