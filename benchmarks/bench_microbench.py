"""Microbenchmarks of the core data structures.

Not paper artifacts — these measure the simulator's own hot paths so
performance regressions in the substrate are visible: event-engine
throughput, sliding-window evaluation, the full parse→compile pipeline,
and a complete small tracking run.
"""

from conftest import emit

from repro.aggregation import AggregateVarSpec, default_registry
from repro.aggregation.window import SlidingWindow
from repro.experiments import TankScenario, run_tank_scenario
from repro.lang import compile_source
from repro.sim import Simulator

FIGURE2 = """
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            MySend(pursuer, self:label, location);
        }
    end
end context
"""


def test_event_engine_throughput(benchmark):
    """Schedule-and-dispatch rate of the discrete-event core."""

    def run():
        sim = Simulator()
        count = 20_000
        for i in range(count):
            sim.schedule(float(i % 100) / 10.0, lambda: None)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 20_000


def test_sliding_window_evaluation(benchmark):
    """Aggregate-state read path: add readings + evaluate under QoS."""
    spec = AggregateVarSpec("v", "avg", "s", confidence=5, freshness=1.0)
    window = SlidingWindow(spec, default_registry().get("avg"))

    def run():
        valid = 0
        for step in range(2_000):
            t = step * 0.01
            window.add(step % 10, float(step), t)
            if window.evaluate(t).valid:
                valid += 1
        return valid

    valid = benchmark(run)
    assert valid > 0


def test_dsl_pipeline(benchmark):
    """Full parse → compile of the Figure 2 program."""
    definitions = benchmark(lambda: compile_source(FIGURE2))
    assert definitions[0].name == "tracker"


def test_small_tracking_run(benchmark):
    """One complete small scenario, end to end (the unit of every sweep)."""

    def run():
        return run_tank_scenario(
            TankScenario(columns=8, rows=2, seed=1,
                         with_base_station=False))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.handovers.labels_created >= 1
