"""Shared wireless broadcast medium.

Models the MICA mote radio at the fidelity the evaluation needs:

* **Range** — a frame physically reaches every registered transceiver
  within ``communication_radius`` of the sender (distances in grid units,
  matching the paper's "communication radius of 6 grids").
* **Airtime** — a transmission occupies the channel for
  ``size_bits / bitrate`` seconds (50 kbps by default).
* **Collisions** — a reception is corrupted when a *different* transmission
  whose sender is within ``interference_radius`` of the receiver overlaps
  the reception's airtime.  This is what makes loss grow with target speed
  in Table 1: faster targets mean more concurrent handover traffic.
* **Channel loss** — independent Bernoulli loss per reception models the
  MAC-less unreliability of the motes ("no reliability is implemented in
  the MAC layer of the MICA motes").

The medium never inspects payloads; addressing (unicast vs broadcast) is a
filter applied by the receiving mote, exactly like a radio that hears
everything in range but only delivers frames addressed to it.

Spatial index
-------------
With thousands of motes the naive implementation is O(N) per delivery and
O(N·active) per collision check.  The default ``index="grid"`` keeps every
port in a uniform-grid bucket (cell size = ``communication_radius``) so
:meth:`transmit`, :meth:`channel_busy` and :meth:`neighbors_of` only
examine the cells that can possibly contain an in-range node.  The
original full-scan path is preserved behind ``Medium(index="bruteforce")``
for differential testing; both paths draw from the loss RNG streams in the
exact same order (attach order), so a given seed produces byte-identical
traces under either index (see ``docs/PROTOCOL.md`` §7 for the
invariants — in particular, a node that moves must notify the medium via
:meth:`refresh_position`, which :meth:`repro.node.Mote.move_to` does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Tuple)

from ..sim import Simulator
from .frames import Frame
from .stats import RadioStats

Position = Tuple[float, float]

#: MICA mote channel capacity used throughout the paper's Table 1.
DEFAULT_BITRATE = 50_000.0

#: Supported spatial-index strategies.
INDEX_MODES = ("grid", "bruteforce")


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two field positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


@dataclass
class _Reception:
    """A pending physical reception of one frame at one transceiver."""

    receiver: "TransceiverPort"
    corrupted: bool = False
    drop_cause: Optional[str] = None

    def corrupt(self, cause: str) -> None:
        if not self.corrupted:
            self.corrupted = True
            self.drop_cause = cause


@dataclass
class Disturbance:
    """A timed channel impairment (jamming, weather, interference burst).

    While active, every reception whose *receiver* sits inside the region
    (``center``/``radius``; a ``None`` center means field-wide) is lost
    with additional probability ``extra_loss`` on top of the base channel
    loss.  ``extra_loss=1.0`` is a blackout.
    """

    extra_loss: float
    start: float
    end: float
    center: Optional[Position] = None
    radius: Optional[float] = None

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def covers(self, position: Position) -> bool:
        if self.center is None or self.radius is None:
            return True
        return distance(self.center, position) <= self.radius


@dataclass
class _Transmission:
    """An in-flight frame occupying airtime on the channel."""

    frame: Frame
    src_pos: Position
    start: float
    end: float
    src_port: Optional["TransceiverPort"] = None
    cell: Optional[Tuple[int, int]] = None
    receptions: List[_Reception] = field(default_factory=list)

    def overlaps(self, other: "_Transmission") -> bool:
        return self.start < other.end and other.start < self.end


class TransceiverPort:
    """The medium-facing half of a mote's radio.

    Holds the position callback (positions may change for mobile nodes) and
    the delivery callback invoked when a frame survives the channel.
    """

    def __init__(self, node_id: int, position_fn: Callable[[], Position],
                 deliver_fn: Callable[[Frame], None]) -> None:
        self.node_id = node_id
        self._position_fn = position_fn
        self._deliver_fn = deliver_fn
        self.enabled = True

    @property
    def position(self) -> Position:
        return self._position_fn()

    def deliver(self, frame: Frame) -> None:
        self._deliver_fn(frame)


class _GridIndex:
    """Uniform-grid spatial hash of attached transceivers.

    Buckets are keyed by integer cell coordinates (cell size = the
    medium's communication radius), so every disk query of radius ≤ one
    cell touches at most the 3×3 neighborhood of the query cell.  Buckets
    hold ports in attach order; bucket membership tracks the *last
    notified* position of each port (updated on attach/detach/refresh).
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell size must be positive: {cell_size}")
        self.cell_size = cell_size
        self._buckets: Dict[Tuple[int, int],
                            Dict[int, TransceiverPort]] = {}
        self._cells: Dict[int, Tuple[int, int]] = {}

    def cell_of(self, position: Position) -> Tuple[int, int]:
        return (math.floor(position[0] / self.cell_size),
                math.floor(position[1] / self.cell_size))

    def add(self, port: TransceiverPort) -> None:
        key = self.cell_of(port.position)
        self._buckets.setdefault(key, {})[port.node_id] = port
        self._cells[port.node_id] = key

    def remove(self, node_id: int) -> None:
        key = self._cells.pop(node_id, None)
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.pop(node_id, None)
            if not bucket:
                del self._buckets[key]

    def refresh(self, port: TransceiverPort) -> None:
        """Re-bucket one port after its position changed."""
        new_key = self.cell_of(port.position)
        if self._cells.get(port.node_id) == new_key:
            return
        self.remove(port.node_id)
        self._buckets.setdefault(new_key, {})[port.node_id] = port
        self._cells[port.node_id] = new_key

    def cells_covering(self, position: Position,
                       radius: float) -> Iterator[Tuple[int, int]]:
        """Keys of every cell intersecting the disk (superset)."""
        span = max(1, math.ceil(radius / self.cell_size))
        cx, cy = self.cell_of(position)
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                yield (cx + dx, cy + dy)

    def near(self, position: Position,
             radius: float) -> Iterator[TransceiverPort]:
        """All ports bucketed within ``radius``-covering cells (a superset
        of the ports actually inside the disk)."""
        for key in self.cells_covering(position, radius):
            bucket = self._buckets.get(key)
            if bucket:
                yield from bucket.values()


class Medium:
    """The single shared channel all motes transmit on.

    Parameters
    ----------
    sim:
        The owning simulator (for the clock, scheduling and RNG).
    communication_radius:
        Reception range in grid units.
    interference_radius:
        Range within which a concurrent transmitter corrupts a reception;
        defaults to the communication radius.
    base_loss_rate:
        Independent per-reception Bernoulli loss probability.
    bitrate:
        Channel capacity in bits/second.
    propagation_delay:
        Fixed additional delivery latency (signal flight time), usually
        negligible next to airtime.
    index:
        ``"grid"`` (default) uses the uniform-grid spatial index;
        ``"bruteforce"`` scans every attached port — kept for
        differential testing, byte-identical for a given seed.
    """

    def __init__(self, sim: Simulator, communication_radius: float,
                 interference_radius: Optional[float] = None,
                 base_loss_rate: float = 0.0,
                 bitrate: float = DEFAULT_BITRATE,
                 propagation_delay: float = 0.0,
                 soft_edge_start: float = 1.0,
                 soft_edge_loss: float = 0.0,
                 index: str = "grid") -> None:
        if communication_radius <= 0:
            raise ValueError("communication radius must be positive")
        if not 0.0 <= base_loss_rate < 1.0:
            raise ValueError(
                f"base loss rate must be in [0, 1): {base_loss_rate}")
        if not 0.0 < soft_edge_start <= 1.0:
            raise ValueError(
                f"soft edge start must be in (0, 1]: {soft_edge_start}")
        if not 0.0 <= soft_edge_loss <= 1.0:
            raise ValueError(
                f"soft edge loss must be in [0, 1]: {soft_edge_loss}")
        if index not in INDEX_MODES:
            raise ValueError(
                f"unknown index mode {index!r} (expected one of "
                f"{INDEX_MODES})")
        self.sim = sim
        self.communication_radius = communication_radius
        self.interference_radius = (communication_radius
                                    if interference_radius is None
                                    else interference_radius)
        self.base_loss_rate = base_loss_rate
        self.bitrate = bitrate
        self.propagation_delay = propagation_delay
        # Soft reception edge (shadowing-like): receptions beyond
        # ``soft_edge_start × reach`` suffer extra loss ramping linearly up
        # to ``soft_edge_loss`` at the reach boundary.  Real radios degrade
        # toward their range limit; this makes "marginal" links flaky
        # rather than binary (the Figure 4 speed effect depends on it).
        self.soft_edge_start = soft_edge_start
        self.soft_edge_loss = soft_edge_loss
        self.index_mode = index
        self.stats = RadioStats(started_at=sim.now)
        # Telemetry: the same accounting RadioStats keeps, republished as
        # registry instruments for dashboards and the Prometheus export.
        # RadioStats stays canonical (collectors and tests read it); the
        # registry is side-state and no-ops when telemetry is disabled.
        metrics = sim.metrics
        self._frames_sent = metrics.counter(
            "repro_radio_frames_sent_total",
            "Frames put on the air, by protocol kind.", ("kind",))
        self._bits_sent = metrics.counter(
            "repro_radio_bits_sent_total",
            "On-air bits transmitted, by protocol kind.", ("kind",))
        self._receptions = metrics.counter(
            "repro_radio_receptions_total",
            "Physical reception attempts, by kind and outcome.",
            ("kind", "outcome"))
        self._frames_lost = metrics.counter(
            "repro_radio_frames_lost_total",
            "Frames received by no mote at all, by kind.", ("kind",))
        self._airtime_seconds = metrics.counter(
            "repro_radio_airtime_seconds_total",
            "Channel airtime occupied by transmissions.")
        self._ports: Dict[int, TransceiverPort] = {}
        self._active: List[_Transmission] = []
        self._rng = sim.rng.stream("radio.loss")
        self._disturbances: List[Disturbance] = []
        # Separate stream so adding a disturbance never perturbs the
        # baseline loss draws of an otherwise identical run.
        self._jam_rng = sim.rng.stream("radio.jam")
        # Attach order per node id: the grid index sorts its candidate
        # sets by it so both index modes draw loss randomness in the
        # same (dict-insertion) order — the determinism the equivalence
        # suite locks down.
        self._attach_order: Dict[int, int] = {}
        self._attach_counter = 0
        self._index: Optional[_GridIndex] = (
            _GridIndex(communication_radius) if index == "grid" else None)
        self._active_cells: Dict[Tuple[int, int], List[_Transmission]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(self, port: TransceiverPort) -> None:
        """Register a transceiver on the channel."""
        if port.node_id in self._ports:
            raise ValueError(f"node {port.node_id} already attached")
        self._ports[port.node_id] = port
        self._attach_order[port.node_id] = self._attach_counter
        self._attach_counter += 1
        if self._index is not None:
            self._index.add(port)

    def detach(self, node_id: int) -> None:
        """Remove a transceiver from the channel.

        In-flight transmissions snapshot their sender; once the sender is
        detached it no longer registers on carrier sense and pending
        receptions at the detached node are discarded instead of
        delivered (see :meth:`channel_busy` / :meth:`_complete`).
        """
        self._ports.pop(node_id, None)
        self._attach_order.pop(node_id, None)
        if self._index is not None:
            self._index.remove(node_id)

    def refresh_position(self, node_id: int) -> None:
        """Re-bucket a node after it moved (no-op for unknown nodes).

        Positions are sampled through each port's callback, so the medium
        cannot observe movement on its own; anything that relocates a
        node (``Mote.move_to``) must call this for the grid index to stay
        consistent.  Positions must not change while a transmission is in
        flight (airtime is milliseconds; field motes are static).
        """
        port = self._ports.get(node_id)
        if port is not None and self._index is not None:
            self._index.refresh(port)

    def port(self, node_id: int) -> TransceiverPort:
        """The registered transceiver of ``node_id``."""
        return self._ports[node_id]

    def node_ids(self) -> List[int]:
        """Sorted ids of all attached transceivers."""
        return sorted(self._ports)

    def _attached(self, port: Optional[TransceiverPort]) -> bool:
        """Is this exact port object still registered?"""
        return (port is not None
                and self._ports.get(port.node_id) is port)

    # ------------------------------------------------------------------
    # Candidate enumeration (the spatial-index seam)
    # ------------------------------------------------------------------
    def _ports_near(self, position: Position,
                    radius: float) -> Iterable[TransceiverPort]:
        """Ports that *may* be within ``radius`` of ``position``, in
        attach order.  Callers still apply the exact distance test; both
        index modes enumerate the true in-range subset in the same order.
        """
        if self._index is None:
            return self._ports.values()
        order = self._attach_order
        return sorted(self._index.near(position, radius),
                      key=lambda port: order[port.node_id])

    def _active_near(self, position: Position,
                     radius: float) -> Iterable[_Transmission]:
        """In-flight transmissions whose (snapshotted) source may be
        within ``radius`` of ``position``."""
        if self._index is None:
            return self._active
        candidates: List[_Transmission] = []
        for key in self._index.cells_covering(position, radius):
            candidates.extend(self._active_cells.get(key, ()))
        return candidates

    # ------------------------------------------------------------------
    # Channel state
    # ------------------------------------------------------------------
    def channel_busy(self, pos: Position) -> bool:
        """Carrier sense: is any in-flight transmitter audible at ``pos``?

        Transmissions whose sender has since been detached are ignored:
        a removed node's stale position must not keep the channel busy.
        """
        self._prune()
        return any(
            distance(tx.src_pos, pos) <= self.communication_radius
            for tx in self._active_near(pos, self.communication_radius)
            if self._attached(tx.src_port))

    def airtime(self, frame: Frame) -> float:
        """Seconds this frame occupies the channel."""
        return frame.size_bits / self.bitrate

    def neighbors_of(self, node_id: int,
                     radius: Optional[float] = None) -> List[int]:
        """Node ids within ``radius`` (default: communication radius)."""
        port = self._ports[node_id]
        limit = self.communication_radius if radius is None else radius
        origin = port.position
        return sorted(
            other.node_id for other in self._ports_near(origin, limit)
            if other.node_id != node_id
            and distance(origin, other.position) <= limit)

    # ------------------------------------------------------------------
    # Disturbances (fault injection)
    # ------------------------------------------------------------------
    def add_disturbance(self, extra_loss: float, start: float, end: float,
                        center: Optional[Position] = None,
                        radius: Optional[float] = None) -> Disturbance:
        """Register a timed (optionally regional) extra-loss window."""
        if not 0.0 <= extra_loss <= 1.0:
            raise ValueError(f"extra loss must be in [0, 1]: {extra_loss}")
        if end <= start:
            raise ValueError(f"empty disturbance window: [{start}, {end})")
        if (center is None) != (radius is None):
            raise ValueError("center and radius must be given together")
        if radius is not None and radius <= 0:
            raise ValueError(f"disturbance radius must be positive: {radius}")
        disturbance = Disturbance(extra_loss=extra_loss, start=start,
                                  end=end, center=center, radius=radius)
        self._disturbances.append(disturbance)
        return disturbance

    def active_disturbances(self) -> List[Disturbance]:
        """Disturbances covering the current instant."""
        now = self.sim.now
        self._disturbances = [d for d in self._disturbances if d.end > now]
        return [d for d in self._disturbances if d.active(now)]

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, frame: Frame) -> None:
        """Put ``frame`` on the air from its source's current position.

        Delivery (or silent loss) happens after the frame's airtime plus
        propagation delay.
        """
        src_port = self._ports.get(frame.src)
        if src_port is None:
            raise KeyError(f"unknown source node {frame.src}")
        now = self.sim.now
        frame.sent_at = now
        src_pos = src_port.position
        tx = _Transmission(frame=frame, src_pos=src_pos, start=now,
                           end=now + self.airtime(frame),
                           src_port=src_port)
        self._prune()
        disturbances = self.active_disturbances()
        reach = (self.communication_radius if frame.tx_range is None
                 else min(frame.tx_range, self.communication_radius))
        # Build the reception set: everyone in range except the sender.
        for port in self._ports_near(src_pos, reach):
            if port.node_id == frame.src or not port.enabled:
                continue
            d = distance(src_pos, port.position)
            if d > reach:
                continue
            reception = _Reception(receiver=port)
            if self._rng.random() < self._loss_probability(d, reach):
                reception.corrupt("channel")
            for disturbance in disturbances:
                if reception.corrupted:
                    break
                if disturbance.covers(port.position) and \
                        self._jam_rng.random() < disturbance.extra_loss:
                    reception.corrupt("jam")
            tx.receptions.append(reception)
        # Mutual collision marking against concurrently active airtime.
        # Any transmission that can corrupt one of our receptions — or
        # whose receptions we can corrupt — has its source within
        # interference_radius + communication_radius of ours, so the
        # indexed candidate set is a superset of the relevant ones.
        interference_reach = (self.interference_radius
                              + self.communication_radius)
        for other in self._active_near(src_pos, interference_reach):
            if not tx.overlaps(other):
                continue
            for reception in tx.receptions:
                if distance(other.src_pos,
                            reception.receiver.position) \
                        <= self.interference_radius:
                    reception.corrupt("collision")
            for reception in other.receptions:
                if distance(src_pos, reception.receiver.position) \
                        <= self.interference_radius:
                    reception.corrupt("collision")
        self._active.append(tx)
        if self._index is not None:
            tx.cell = self._index.cell_of(src_pos)
            self._active_cells.setdefault(tx.cell, []).append(tx)
        self.stats.on_send(frame.kind, frame.size_bits, frame.src, now)
        airtime = self.airtime(frame)
        self._frames_sent.inc(1.0, frame.kind)
        self._bits_sent.inc(float(frame.size_bits), frame.kind)
        self._airtime_seconds.inc(airtime)
        self.sim.record("radio.tx", node=frame.src, kind=frame.kind,
                        frame_id=frame.frame_id, dst=frame.dst)
        self.sim.schedule(airtime + self.propagation_delay,
                          self._complete, tx, label="radio.delivery")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _loss_probability(self, d: float, reach: float) -> float:
        """Per-reception loss at distance ``d`` for a given reach."""
        probability = self.base_loss_rate
        threshold = self.soft_edge_start * reach
        if self.soft_edge_loss > 0 and d > threshold and reach > threshold:
            ramp = (d - threshold) / (reach - threshold)
            probability = probability + (1 - probability) \
                * self.soft_edge_loss * min(1.0, ramp)
        return probability

    def _complete(self, tx: _Transmission) -> None:
        delivered = 0
        dst_received = False
        for reception in tx.receptions:
            if not self._attached(reception.receiver):
                # Receiver detached while the frame was in flight: the
                # radio is gone, so the reception never happened — it is
                # neither an attempt nor a delivery.
                continue
            self.stats.on_reception_attempt(tx.frame.kind,
                                            reception.corrupted)
            if reception.corrupted:
                self.stats.on_reception_dropped(reception.drop_cause
                                                or "unknown")
                self._receptions.inc(1.0, tx.frame.kind,
                                     reception.drop_cause or "unknown")
                continue
            delivered += 1
            if reception.receiver.node_id == tx.frame.dst:
                dst_received = True
            self.stats.on_receive(tx.frame.kind, self.sim.now)
            self._receptions.inc(1.0, tx.frame.kind, "delivered")
            reception.receiver.deliver(tx.frame)
        if not tx.frame.is_broadcast:
            self.stats.on_addressed_outcome(tx.frame.kind, dst_received)
        if delivered == 0:
            # The paper's loss metric: sent but never received on any mote.
            self.stats.on_frame_lost(tx.frame.kind)
            self._frames_lost.inc(1.0, tx.frame.kind)
            self.sim.record("radio.lost", node=tx.frame.src,
                            kind=tx.frame.kind, frame_id=tx.frame.frame_id)

    def _prune(self) -> None:
        now = self.sim.now
        if all(tx.end > now for tx in self._active):
            return
        kept: List[_Transmission] = []
        for tx in self._active:
            if tx.end > now:
                kept.append(tx)
            elif tx.cell is not None:
                bucket = self._active_cells.get(tx.cell)
                if bucket is not None:
                    bucket.remove(tx)
                    if not bucket:
                        del self._active_cells[tx.cell]
        self._active = kept
