"""The discrete-event simulation engine.

A single :class:`Simulator` owns the virtual clock, the event heap, the
per-subsystem random streams and the trace log.  Everything in the
reproduction — radios, motes, protocol timers, moving targets — schedules
work through this object, which makes whole-system runs deterministic for a
given seed.

Scheduler
---------
The engine is *cancellation-aware*: EnviroTrack's group management is
timer-dominated (every heartbeat kicks receive/wait watchdogs), so at
scale most heap entries are lazily-cancelled garbage.  The default
``scheduler="lazy"`` keeps the engine fast under that churn:

* a live-event counter makes :meth:`pending` O(1);
* :meth:`peek_time` lazily discards cancelled heap heads instead of
  scanning (let alone sorting) the heap;
* the heap is compacted when cancelled entries exceed a configurable
  fraction of it;
* :class:`TimerHandle` re-arms watchdog/periodic timers by mutating one
  heap entry's deadline instead of cancel-and-reschedule.

``Simulator(scheduler="heap")`` keeps the original cancel-and-reschedule
path for differential testing; both schedulers produce byte-identical
traces (see ``docs/ENGINE.md`` and the scheduler equivalence suite).

Example
-------
>>> sim = Simulator(seed=7)
>>> fired = []
>>> _ = sim.schedule(2.0, fired.append, 'b')
>>> _ = sim.schedule(1.0, fired.append, 'a')
>>> sim.run(until=10.0)
>>> fired
['a', 'b']
"""

from __future__ import annotations

import heapq
import time as _time
from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional

from ..telemetry.profiler import EventLoopProfiler
from ..telemetry.registry import MetricsRegistry, NullRegistry
from ..telemetry.spans import NullSpanTracker, SpanTracker
from .events import Event, EventSequencer, TraceRecord
from .rng import RandomStreams

#: Supported scheduler strategies.  ``"lazy"`` (default) is the
#: cancellation-aware scheduler; ``"heap"`` is the original
#: cancel-and-reschedule path, kept for differential testing.
SCHEDULER_MODES = ("lazy", "heap")

#: Compact once cancelled entries exceed this fraction of the heap…
DEFAULT_COMPACT_RATIO = 0.5
#: …but never bother below this many cancelled entries.
DEFAULT_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class TimerHandle:
    """One re-armable timer slot owned by :class:`TimerService`.

    A handle owns **at most one** heap entry at a time (``event``).  Its
    authoritative firing point is ``(deadline, seq)``; the heap entry's
    ``(time, seq)`` may lag behind after in-place re-arms.  The engine
    reconciles on pop: an entry that is no longer ``handle.event`` is
    stale garbage; an entry whose ``(time, seq)`` trails the handle's is
    re-pushed at the true deadline; a matching entry fires.

    Every re-arm consumes one sequence number — exactly like the
    cancel-and-reschedule it replaces — so tie-breaking, and therefore
    the whole trace, is byte-identical across schedulers.
    """

    __slots__ = ("callback", "label", "deadline", "seq", "span", "event")

    def __init__(self, callback: Callable[[], Any], label: str) -> None:
        self.callback = callback
        self.label = label
        self.deadline = 0.0
        self.seq = -1
        self.span: Optional[int] = None
        self.event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self.event is not None


class TimerService:
    """Arms, re-arms and cancels :class:`TimerHandle` slots.

    Under the lazy scheduler a re-arm of an already-armed handle is three
    attribute writes and a sequence-number bump — no allocation, no heap
    operation.  Under ``scheduler="heap"`` every arm falls back to the
    original cancel-and-reschedule so the two modes stay differentially
    comparable.
    """

    def __init__(self, sim: "Simulator", rearm: bool) -> None:
        self._sim = sim
        self._rearm = rearm

    def create(self, callback: Callable[[], Any],
               label: str = "timer") -> TimerHandle:
        """Allocate an unarmed handle for ``callback``."""
        return TimerHandle(callback, label)

    def arm(self, handle: TimerHandle, delay: float) -> None:
        """(Re)arm ``handle`` to fire ``delay`` seconds from now."""
        sim = self._sim
        if delay < 0:
            raise SimulationError(
                f"cannot arm timer {delay!r}s in the past (now={sim._now})")
        if not self._rearm:
            self.cancel(handle)
            handle.event = sim.schedule(delay, self._legacy_fire, handle,
                                        label=handle.label)
            return
        deadline = sim._now + delay
        spans = sim._live_spans
        handle.deadline = deadline
        handle.seq = sim._seq.next()
        handle.span = None if spans is None else spans.current
        entry = handle.event
        if entry is not None and entry.time <= deadline:
            # Fast path: the pending entry pops no later than the new
            # deadline, so it can catch up lazily at pop time.
            return
        if entry is not None:
            # Shortened deadline: the entry sits too late in the heap to
            # ever catch up — abandon it and push a fresh one.
            handle.event = None
            sim._note_cancelled()
        event = Event(time=deadline, seq=handle.seq,
                      callback=handle.callback, label=handle.label,
                      span=handle.span, handle=handle)
        handle.event = event
        heapq.heappush(sim._heap, event)
        sim._live += 1

    def cancel(self, handle: TimerHandle) -> None:
        """Disarm ``handle``; its heap entry becomes lazy garbage."""
        entry = handle.event
        if entry is None:
            return
        handle.event = None
        if not self._rearm:
            entry.cancel()  # owner callback keeps the counters exact
            return
        self._sim._note_cancelled()

    @staticmethod
    def _legacy_fire(handle: TimerHandle) -> None:
        """heap-mode trampoline: clear the slot, then fire."""
        handle.event = None
        handle.callback()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Each named random stream derives deterministically
        from it (see :class:`repro.sim.rng.RandomStreams`).
    trace_capacity:
        Maximum number of retained trace records (oldest dropped first);
        ``None`` retains everything.
    telemetry:
        When True (default) the simulator owns a live
        :class:`~repro.telemetry.registry.MetricsRegistry` (``.metrics``)
        and :class:`~repro.telemetry.spans.SpanTracker` (``.spans``).
        When False both are null objects that accept every call and
        record nothing.  Telemetry is pure side-state either way: the
        event order, RNG streams and trace — hence ``trace_digest`` —
        are identical for both settings.
    scheduler:
        ``"lazy"`` (default) enables in-place timer re-arms and heap
        compaction; ``"heap"`` keeps the original cancel-and-reschedule
        path.  Traces are byte-identical across both.
    compact_ratio / compact_min:
        Lazy-scheduler compaction trigger: the heap is rebuilt without
        garbage once cancelled entries exceed ``compact_ratio`` of the
        heap *and* number at least ``compact_min``.
    """

    def __init__(self, seed: int = 0,
                 trace_capacity: Optional[int] = None,
                 telemetry: bool = True,
                 scheduler: str = "lazy",
                 compact_ratio: float = DEFAULT_COMPACT_RATIO,
                 compact_min: int = DEFAULT_COMPACT_MIN) -> None:
        if scheduler not in SCHEDULER_MODES:
            raise ValueError(f"unknown scheduler {scheduler!r} "
                             f"(expected one of {SCHEDULER_MODES})")
        if not 0.0 < compact_ratio <= 1.0:
            raise ValueError(
                f"compact_ratio must be in (0, 1]: {compact_ratio}")
        self.seed = seed
        self.scheduler = scheduler
        self.compact_ratio = compact_ratio
        self.compact_min = max(1, compact_min)
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = EventSequencer()
        self._running = False
        self._stopped = False
        #: Scheduled, non-cancelled events (kept exact on every push,
        #: pop, cancel and re-arm, so ``pending()`` is O(1)).
        self._live = 0
        #: Cancelled/stale entries still sitting in the heap.
        self._cancelled = 0
        self.compactions = 0
        self.rng = RandomStreams(seed)
        self.trace_capacity = trace_capacity
        self.trace: Deque[TraceRecord] = deque(maxlen=trace_capacity)
        self._events_fired = 0
        self.telemetry_enabled = telemetry
        if telemetry:
            self.metrics = MetricsRegistry()
            self.spans = SpanTracker(clock=lambda: self._now)
        else:
            self.metrics = NullRegistry()
            self.spans = NullSpanTracker()
        # Hot-path alias: the event loop touches span context on every
        # schedule and dispatch, so it branches on one None check and
        # plain attribute access instead of calling through self.spans.
        self._live_spans: Optional[SpanTracker] = \
            self.spans if telemetry else None
        self._trace_counter = self.metrics.counter(
            "repro_trace_records_total",
            "Trace records written, by category.", ("category",))
        self._heap_gauge = self.metrics.gauge(
            "repro_sim_heap_size",
            "Event-heap entries, including lazily-cancelled garbage.")
        self._cancelled_gauge = self.metrics.gauge(
            "repro_sim_cancelled_pending",
            "Cancelled/stale entries awaiting lazy discard or compaction.")
        self._compactions_counter = self.metrics.counter(
            "repro_sim_compactions_total",
            "Heap compactions (garbage-triggered rebuilds).")
        self.timers = TimerService(self, rearm=(scheduler == "lazy"))
        self._profiler: Optional[EventLoopProfiler] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_fired

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> Optional[EventLoopProfiler]:
        """The attached event-loop profiler, or None."""
        return self._profiler

    def enable_profiler(self) -> EventLoopProfiler:
        """Attach (or return the already attached) event-loop profiler.

        Profiling measures host wall time only; it never touches
        simulated time, RNG or the trace.
        """
        if self._profiler is None:
            self._profiler = EventLoopProfiler()
        return self._profiler

    def disable_profiler(self) -> None:
        """Detach the profiler (its accumulated data is discarded)."""
        self._profiler = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, label: str = "", **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` after ``delay`` seconds.

        Returns the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay!r}s in the past (now={self._now})")
        return self.schedule_at(self._now + delay, callback, *args,
                                label=label, **kwargs)

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any, label: str = "", **kwargs: Any) -> Event:
        """Schedule ``callback`` at absolute simulation time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r} before now={self._now}")
        spans = self._live_spans
        event = Event(time=when, seq=self._seq.next(), callback=callback,
                      args=args, kwargs=kwargs, label=label,
                      span=None if spans is None else spans.current,
                      owner=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any,
                  label: str = "", **kwargs: Any) -> Event:
        """Schedule ``callback`` at the current time (after pending events
        at this time that were scheduled earlier)."""
        return self.schedule(0.0, callback, *args, label=label, **kwargs)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping & compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """One live heap entry just became garbage (cancel or stale re-arm)."""
        self._live -= 1
        self._cancelled += 1
        if (self.scheduler == "lazy"
                and self._cancelled >= self.compact_min
                and self._cancelled > self.compact_ratio * len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without garbage entries.

        Trace-neutral: the surviving entries' ``(time, seq)`` keys are
        unchanged (deferred timer entries are normalized to their true
        deadline, where they would have ended up anyway), so pop order —
        and therefore the trace — is identical with or without
        compaction.
        """
        live: List[Event] = []
        for event in self._heap:
            handle = event.handle
            if handle is not None:
                if event is handle.event:
                    event.time = handle.deadline
                    event.seq = handle.seq
                    event.span = handle.span
                    live.append(event)
            elif not event.cancelled:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled = 0
        self.compactions += 1
        self._compactions_counter.inc()
        self._publish_engine_metrics()

    def _publish_engine_metrics(self) -> None:
        """Refresh the heap gauges (called on compaction and run exit)."""
        self._heap_gauge.set(len(self._heap))
        self._cancelled_gauge.set(self._cancelled)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_next(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the next fireable event, reconciling lazy heap entries.

        Discards cancelled/stale heads, re-pushes timer entries whose
        handle's deadline moved later, and returns None at quiescence or
        when the next firing lies strictly after ``until``.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if until is not None and event.time > until:
                # A deferred timer entry's stale time only *understates*
                # its true deadline, so crossing the horizon here is
                # definitive for every entry kind.
                return None
            heapq.heappop(heap)
            handle = event.handle
            if handle is not None:
                if event is not handle.event:
                    self._cancelled -= 1  # stale slot: lazily discarded
                    continue
                if event.time != handle.deadline or event.seq != handle.seq:
                    # Re-armed in place: catch up to the true deadline.
                    event.time = handle.deadline
                    event.seq = handle.seq
                    event.span = handle.span
                    heapq.heappush(heap, event)
                    continue
                handle.event = None  # fires now; callback may re-arm
            elif event.cancelled:
                self._cancelled -= 1
                continue
            else:
                event.owner = None
            self._live -= 1
            return event
        return None

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Dispatch events until the horizon, the event budget, or quiescence.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is advanced to ``until``.  ``None`` runs to quiescence.
        max_events:
            Safety valve for runaway schedules.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                event = self._pop_next(until)
                if event is None:
                    break
                self._now = event.time
                self._dispatch(event)
                self._events_fired += 1
                fired += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
            self._publish_engine_metrics()

    def step(self) -> Optional[Event]:
        """Dispatch exactly one (non-cancelled) event; return it or None.

        Shares :meth:`run`'s semantics: calling it from inside an event
        handler raises :class:`SimulationError` instead of corrupting the
        in-progress dispatch, and it clears a pending :meth:`stop` flag
        the way a fresh ``run()`` would.
        """
        if self._running:
            raise SimulationError("step() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            event = self._pop_next()
            if event is None:
                return None
            self._now = event.time
            self._dispatch(event)
            self._events_fired += 1
            return event
        finally:
            self._running = False

    def _dispatch(self, event: Event) -> None:
        """Fire one event inside its causal span, optionally profiled."""
        spans = self._live_spans
        profiler = self._profiler
        if spans is None:
            if profiler is None:
                event.fire()
                return
            started = _time.perf_counter()
            try:
                event.fire()
            finally:
                profiler.note(event.label,
                              _time.perf_counter() - started)
            return
        previous = spans.current
        spans.current = event.span
        if profiler is None:
            try:
                event.fire()
            finally:
                spans.current = previous
            return
        started = _time.perf_counter()
        try:
            event.fire()
        finally:
            profiler.note(event.label, _time.perf_counter() - started)
            spans.current = previous

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of scheduled, non-cancelled events — O(1)."""
        return self._live

    def cancelled_pending(self) -> int:
        """Cancelled/stale entries still occupying the heap — O(1)."""
        return self._cancelled

    def heap_size(self) -> int:
        """Total heap entries, garbage included — O(1)."""
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None when quiescent.

        Lazily discards cancelled heads and normalizes re-armed timer
        entries while peeking, so repeated peeks under cancellation
        churn amortize to O(log n) instead of the O(n log n) a
        sort-based scan would cost.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            handle = event.handle
            if handle is not None:
                if event is not handle.event:
                    heapq.heappop(heap)
                    self._cancelled -= 1
                    continue
                if event.time != handle.deadline or event.seq != handle.seq:
                    heapq.heappop(heap)
                    event.time = handle.deadline
                    event.seq = handle.seq
                    event.span = handle.span
                    heapq.heappush(heap, event)
                    continue
            elif event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return event.time
        return None

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def record(self, category: str, node: Optional[int] = None,
               **detail: Any) -> None:
        """Append a structured record to the trace log.

        The trace is a bounded deque when ``trace_capacity`` is set, so
        eviction of the oldest record is O(1) rather than the O(n) a
        list-head delete would cost.
        """
        self.trace.append(TraceRecord(time=self._now, category=category,
                                      node=node, detail=detail))
        self._trace_counter.inc(1.0, category)

    def trace_records(self, category: Optional[str] = None,
                      node: Optional[int] = None) -> Iterable[TraceRecord]:
        """Iterate trace records matching the filters."""
        return (r for r in self.trace if r.matches(category, node))
