"""Unit tests for the causal span tracker."""

import pytest

from repro.telemetry.spans import NullSpanTracker, SpanTracker


def make_tracker(times=None):
    clock = {"t": 0.0}

    def now():
        return clock["t"]

    return SpanTracker(clock=now), clock


class TestLifecycle:
    def test_start_finish_duration(self):
        tracker, clock = make_tracker()
        sid = tracker.start("frame.heartbeat", node=3)
        clock["t"] = 2.5
        tracker.finish(sid)
        record = tracker.get(sid)
        assert record.name == "frame.heartbeat"
        assert record.node == 3
        assert record.started_at == 0.0
        assert record.duration == pytest.approx(2.5)

    def test_finish_is_idempotent(self):
        tracker, clock = make_tracker()
        sid = tracker.start("a")
        clock["t"] = 1.0
        tracker.finish(sid)
        clock["t"] = 9.0
        tracker.finish(sid)
        assert tracker.get(sid).ended_at == pytest.approx(1.0)

    def test_unfinished_span_has_no_duration(self):
        tracker, _ = make_tracker()
        sid = tracker.start("a")
        assert tracker.get(sid).duration is None

    def test_ids_are_deterministic(self):
        a, _ = make_tracker()
        b, _ = make_tracker()
        assert [a.start("x") for _ in range(3)] == \
            [b.start("x") for _ in range(3)]


class TestContext:
    def test_parent_defaults_to_current(self):
        tracker, _ = make_tracker()
        root = tracker.start("root")
        with tracker.activate(root):
            child = tracker.start("child")
        assert tracker.get(child).parent_id == root
        assert [r.span_id for r in tracker.children(root)] == [child]

    def test_root_flag_forces_tree_root(self):
        tracker, _ = make_tracker()
        outer = tracker.start("outer")
        with tracker.activate(outer):
            forced = tracker.start("forced", root=True)
        assert tracker.get(forced).parent_id is None

    def test_span_context_manager_nests_and_restores(self):
        tracker, _ = make_tracker()
        with tracker.span("outer") as outer:
            assert tracker.current == outer
            with tracker.span("inner") as inner:
                assert tracker.current == inner
            assert tracker.current == outer
        assert tracker.current is None
        assert tracker.get(inner).parent_id == outer
        assert tracker.get(outer).ended_at is not None

    def test_swap_returns_previous(self):
        tracker, _ = make_tracker()
        sid = tracker.start("a")
        assert tracker.swap(sid) is None
        assert tracker.swap(None) == sid


class TestTreeQueries:
    def build(self, tracker):
        #      r
        #     / \
        #    a   b
        #    |
        #    c
        r = tracker.start("r", root=True)
        a = tracker.start("a", parent=r)
        b = tracker.start("b", parent=r)
        c = tracker.start("c", parent=a)
        return r, a, b, c

    def test_subtree_preorder(self):
        tracker, _ = make_tracker()
        r, a, b, c = self.build(tracker)
        assert tracker.subtree(r) == [r, a, c, b]
        assert tracker.subtree(a) == [a, c]

    def test_ancestors_root_to_leaf(self):
        tracker, _ = make_tracker()
        r, a, b, c = self.build(tracker)
        assert tracker.ancestors(c) == [r, a, c]
        assert tracker.ancestors(r) == [r]

    def test_unknown_span_raises(self):
        tracker, _ = make_tracker()
        with pytest.raises(KeyError):
            tracker.subtree(99)
        with pytest.raises(KeyError):
            tracker.ancestors(99)

    def test_roots_find_len_contains(self):
        tracker, _ = make_tracker()
        r, a, b, c = self.build(tracker)
        assert [rec.span_id for rec in tracker.roots()] == [r]
        assert [rec.span_id for rec in tracker.find("a")] == [a]
        assert len(tracker) == 4
        assert r in tracker
        assert 99 not in tracker

    def test_frame_association(self):
        tracker, _ = make_tracker()
        r, a, b, c = self.build(tracker)
        tracker.note_frame(a, 10)
        tracker.note_frame(c, 11)
        tracker.note_frame(b, 12)
        assert tracker.span_of_frame(11) == c
        assert tracker.span_of_frame(77) is None
        assert tracker.subtree_frames(a) == {10, 11}
        assert tracker.ancestor_frames(c) == {10, 11}
        assert tracker.subtree_frames(r) == {10, 11, 12}

    def test_note_frame_on_unknown_span_is_noop(self):
        tracker, _ = make_tracker()
        tracker.note_frame(99, 1)
        assert tracker.span_of_frame(1) is None

    def test_format_tree(self):
        tracker, _ = make_tracker()
        r, a, b, c = self.build(tracker)
        tracker.note_frame(c, 5)
        text = tracker.format_tree(r)
        lines = text.splitlines()
        assert lines[0].startswith("r ")
        assert any(line.startswith("    c") and "frames=[5]" in line
                   for line in lines)


class TestNullTracker:
    def test_api_surface_records_nothing(self):
        tracker = NullSpanTracker()
        assert tracker.enabled is False
        assert tracker.start("a") is None
        tracker.finish(None)
        tracker.note_frame(None, 1)
        with tracker.activate(5) as active:
            assert active is None
        with tracker.span("x") as sid:
            assert sid is None
        assert tracker.swap(3) is None
        assert tracker.current is None
        assert len(tracker) == 0
        assert 1 not in tracker
        assert tracker.spans() == []
        assert tracker.roots() == []
        assert tracker.children(1) == []
        assert tracker.find("a") == []
        assert tracker.span_of_frame(1) is None
