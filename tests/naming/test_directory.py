"""Unit tests for the directory service (§5.3)."""

from repro.naming import DirectoryService, FieldBounds
from repro.sensing import SensorField
from repro.sim import Simulator
from repro.transport import GeoRouter


def build(columns=8, rows=8, communication_radius=2.0, entry_ttl=30.0):
    sim = Simulator(seed=9)
    field = SensorField(sim, communication_radius=communication_radius)
    field.deploy_grid(columns, rows)
    bounds = FieldBounds(0.0, 0.0, float(columns - 1), float(rows - 1))
    services = {}
    for mote in field.mote_list():
        router = GeoRouter(mote)
        router.start()
        service = DirectoryService(mote, router, bounds,
                                   entry_ttl=entry_ttl, hash_margin=1.0)
        service.start()
        services[mote.node_id] = service
    return sim, field, services


def lookup(sim, services, node_id, context_type, timeout=5.0):
    answers = []
    services[node_id].lookup(context_type, answers.extend)
    sim.run(until=sim.now + timeout)
    return answers


def test_register_then_query():
    sim, field, services = build()
    services[0].register("fire", "fire#3.1", location=(2.0, 2.0), leader=3)
    sim.run(until=2.0)
    answers = lookup(sim, services, 63, "fire")
    assert [e.label for e in answers] == ["fire#3.1"]
    assert answers[0].leader == 3
    assert answers[0].location == (2.0, 2.0)


def test_query_for_unknown_type_returns_empty():
    sim, field, services = build()
    answers = lookup(sim, services, 5, "ghost")
    assert answers == []


def test_multiple_labels_of_one_type():
    sim, field, services = build()
    # Staggered like real periodic refreshes (simultaneous fire-and-forget
    # registrations can collide on the air; refresh repairs that in
    # production use).
    services[0].register("fire", "fire#1.1", (1.0, 1.0), leader=1)
    sim.schedule(1.0, services[10].register, "fire", "fire#2.2",
                 (5.0, 5.0), 2)
    sim.run(until=3.0)
    answers = lookup(sim, services, 30, "fire")
    assert sorted(e.label for e in answers) == ["fire#1.1", "fire#2.2"]


def test_update_refreshes_location():
    sim, field, services = build()
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    services[7].register("car", "car#1.1", (6.0, 0.0), leader=9)
    sim.run(until=sim.now + 2.0)
    answers = lookup(sim, services, 20, "car")
    assert len(answers) == 1
    assert answers[0].leader == 9
    assert answers[0].location == (6.0, 0.0)


def test_entries_expire_without_updates():
    sim, field, services = build(entry_ttl=5.0)
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    assert lookup(sim, services, 20, "car")
    sim.run(until=20.0)
    assert lookup(sim, services, 20, "car") == []


def test_replication_survives_directory_node_failure():
    sim, field, services = build()
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    # Find and kill the node holding the entry nearest the hash point.
    holders = [node for node, service in services.items()
               if service.entries_for("car")]
    assert holders, "registration never stored"
    primary = min(holders, key=lambda n: n)
    field.fail_node(primary)
    sim.run(until=sim.now + 1.0)
    answers = lookup(sim, services, 40, "car", timeout=8.0)
    assert [e.label for e in answers] == ["car#1.1"]


def test_directory_point_is_shared_knowledge():
    sim, field, services = build()
    points = {service.directory_point("fire")
              for service in services.values()}
    assert len(points) == 1


def test_lookup_survives_leader_handoff():
    # The label migrates to a new leader (handover); a later registration
    # must win, and the directory must keep answering with one entry.
    sim, field, services = build()
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    services[9].register("car", "car#1.1", (2.0, 1.0), leader=9)
    sim.run(until=sim.now + 2.0)
    answers = lookup(sim, services, 42, "car")
    assert [(e.label, e.leader) for e in answers] == [("car#1.1", 9)]
    assert answers[0].location == (2.0, 1.0)


def test_stale_registration_rejected():
    # A delayed replica of the *old* leader's registration must not
    # overwrite the newer entry (the `updated` timestamp arbitrates).
    sim, field, services = build()
    service = services[0]
    fresh = {"label": "car#1.1", "context_type": "car",
             "location": [2.0, 1.0], "leader": 9, "time": 10.0}
    stale = {"label": "car#1.1", "context_type": "car",
             "location": [0.0, 0.0], "leader": 1, "time": 4.0}
    assert service._store(fresh).leader == 9
    kept = service._store(stale)
    assert kept.leader == 9  # the stored (newer) entry wins
    assert [e.leader for e in service.entries_for("car")] == [9]


def test_lookup_survives_directory_node_detach():
    # Unlike fail_node (dead mote, radio still attached), remove_mote
    # detaches the radio entirely; replicas must still answer queries.
    sim, field, services = build()
    services[0].register("car", "car#1.1", (0.0, 0.0), leader=1)
    sim.run(until=2.0)
    holders = [node for node, service in services.items()
               if service.entries_for("car")]
    assert holders, "registration never stored"
    primary = min(holders)
    field.remove_mote(primary)
    sim.run(until=sim.now + 1.0)
    answers = lookup(sim, services, 40, "car", timeout=8.0)
    assert [e.label for e in answers] == ["car#1.1"]
