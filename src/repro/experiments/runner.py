"""Parallel multi-seed sweep driver.

Every figure/table/chaos experiment is a sweep of independent simulation
runs, each fully determined by a frozen, picklable task description (a
:class:`~repro.experiments.scenarios.TankScenario`, a speed-search cell,
a chaos cell).  This module fans those runs out over a ``multiprocessing``
worker pool — one worker per task, ordered result merge — so wall-clock
time divides by the core count while results stay **byte-identical** to a
serial sweep:

* each run builds its own :class:`~repro.sim.Simulator` seeded from the
  task, so no randomness crosses process boundaries;
* frame ids restart per run (:func:`repro.radio.reset_frame_ids`), so a
  run's trace does not depend on which process executed it or what ran
  before;
* ``pool.map`` preserves task order, so folds over outcomes see the same
  sequence a serial loop would.

Workers return :class:`ScenarioOutcome` — a reduced, picklable summary of
a run (a live ``TankRunResult`` holds the whole app object graph and
cannot cross a process boundary).  The outcome includes the run's
:func:`~repro.sim.trace_digest`, which the determinism suite uses to
assert serial == parallel == repeated execution.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from ..metrics import CommunicationMetrics
from ..sim import derive_seed, dump_trace, trace_digest
from .scenarios import TankRunResult, TankScenario, run_tank_scenario

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ScenarioOutcome:
    """Everything the sweep analyses need from one tank-scenario run,
    reduced to plain picklable data plus a whole-trace digest."""

    scenario: TankScenario
    successful_handovers: int
    failed_handovers: int
    labels_created: int
    effective_labels: int
    coherent: bool
    coverage: float
    communication: CommunicationMetrics
    trace_digest: str


def reduce_run(run: TankRunResult) -> ScenarioOutcome:
    """Collapse a live run result into its picklable outcome."""
    return ScenarioOutcome(
        scenario=run.scenario,
        successful_handovers=run.handovers.successful_handovers,
        failed_handovers=run.handovers.failed_handovers,
        labels_created=run.handovers.labels_created,
        effective_labels=len(run.handovers.effective_labels()),
        coherent=run.coherent,
        coverage=run.coverage,
        communication=run.communication,
        trace_digest=trace_digest(run.app.sim),
    )


def run_scenario_outcome(scenario: TankScenario) -> ScenarioOutcome:
    """Worker entry point: run one scenario, return its outcome."""
    return reduce_run(run_tank_scenario(scenario))


def derive_run_seed(base: int, *parts: object) -> int:
    """Deterministic per-run seed from a sweep base and task coordinates.

    Stable across interpreter runs and PYTHONHASHSEED settings (SHA-256
    underneath), and independent of sweep enumeration order — the same
    (base, coordinates) always names the same universe.
    """
    return derive_seed(base, ":".join(str(part) for part in parts)) \
        % (2 ** 63)


def default_jobs() -> int:
    """Worker count for ``--jobs 0``: every available core."""
    return os.cpu_count() or 1


def parallel_map(fn: Callable[[T], R], tasks: Iterable[T],
                 jobs: Optional[int] = 1) -> List[R]:
    """Ordered map over picklable tasks.

    ``jobs <= 1`` (or a single task) runs inline in this process — the
    serial reference path.  Otherwise a worker pool of ``min(jobs,
    len(tasks))`` processes maps with chunksize 1 (worker-per-task) and
    the results come back in task order.  ``jobs=None``/``0`` means one
    worker per core.
    """
    task_list = list(tasks)
    if not jobs:
        jobs = default_jobs()
    if jobs <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    with context.Pool(processes=min(jobs, len(task_list))) as pool:
        return pool.map(fn, task_list, chunksize=1)


def run_scenarios(scenarios: Sequence[TankScenario],
                  jobs: Optional[int] = 1) -> List[ScenarioOutcome]:
    """Run a batch of scenarios (worker-per-seed), outcomes in order."""
    return parallel_map(run_scenario_outcome, scenarios, jobs=jobs)


def dump_scenario_trace(scenario: TankScenario, path: str) -> int:
    """Write one sweep scenario's full trace to a JSONL file.

    Live runs cannot cross a process boundary, so sweep experiments
    honour ``--trace-out`` by deterministically rerunning one
    representative scenario in this process — frame ids reset per run,
    so the rerun's trace is byte-identical to what the sweep's worker
    produced.  Returns the record count written.
    """
    run = run_tank_scenario(scenario)
    return dump_trace(run.app.sim, path)
