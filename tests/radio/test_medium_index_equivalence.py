"""Differential suite: grid-indexed medium ≡ brute-force medium.

Two media built from identically seeded simulators — one with the
uniform-grid spatial index, one with the original full scan — are driven
through the same randomized program of broadcasts, unicasts, quiesce
steps, detaches and (quiescent) moves, under random layouts, loss rates
and disturbances.  Everything observable must match **exactly**:
delivery logs, carrier sense, neighbor queries, radio statistics and the
whole-trace digest.  Any divergence means the index changed physics (or
RNG draw order), not just speed.

Frames are created with explicit ``frame_id``s so both media transmit
literally identical frames regardless of module-global counter state.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import BROADCAST, Frame, Medium, TransceiverPort
from repro.sim import Simulator, trace_digest

FIELD = 40.0


def positions_strategy():
    coordinate = st.floats(min_value=-FIELD, max_value=FIELD,
                           allow_nan=False, allow_infinity=False)
    return st.lists(st.tuples(coordinate, coordinate),
                    min_size=2, max_size=25)


def ops_strategy(node_count: int):
    """A program of medium operations over ``node_count`` motes."""
    node = st.integers(min_value=0, max_value=node_count - 1)
    send = st.tuples(st.just("send"), node,
                     st.one_of(st.just(BROADCAST), node),
                     st.one_of(st.none(),
                               st.floats(min_value=0.5, max_value=12.0,
                                         allow_nan=False)))
    quiesce = st.tuples(st.just("quiesce"), st.just(0), st.just(0),
                        st.none())
    detach = st.tuples(st.just("detach"), node, st.just(0), st.none())
    # Moves happen only at quiescence (positions must not change while a
    # transmission is in flight — docs/PROTOCOL.md §7), so the op first
    # drains the channel, then relocates, then notifies both media.
    move = st.tuples(st.just("move"), node,
                     st.integers(min_value=-3, max_value=3),
                     st.floats(min_value=-FIELD, max_value=FIELD,
                               allow_nan=False))
    return st.lists(st.one_of(send, quiesce, detach, move),
                    min_size=1, max_size=40)


class _Rig:
    """One medium plus the mutable state the op program manipulates."""

    def __init__(self, index, seed, positions, loss, soft_start,
                 soft_loss, disturbances):
        self.sim = Simulator(seed=seed)
        self.medium = Medium(self.sim, communication_radius=6.0,
                             base_loss_rate=loss,
                             soft_edge_start=soft_start,
                             soft_edge_loss=soft_loss, index=index)
        for extra, start, end in disturbances:
            self.medium.add_disturbance(extra, start, end)
        self.positions = {i: pos for i, pos in enumerate(positions)}
        self.inbox = []
        self.attached = set()
        for i in range(len(positions)):
            self.medium.attach(TransceiverPort(
                i, (lambda i=i: self.positions[i]),
                (lambda frame, i=i: self.inbox.append(
                    (i, frame.frame_id, frame.src, frame.kind)))))
            self.attached.add(i)

    def run(self, ops):
        frame_id = 0
        probes = []
        for op, a, b, c in ops:
            if op == "send" and a in self.attached:
                frame_id += 1
                self.medium.transmit(Frame(
                    src=a, dst=b if b in self.attached or b == BROADCAST
                    else BROADCAST,
                    kind="eq", frame_id=frame_id, tx_range=c))
                probes.append(("busy", self.medium.channel_busy(
                    self.positions[a])))
                self.sim.run(until=self.sim.now + 0.001)
            elif op == "quiesce":
                self.sim.run()
            elif op == "detach" and a in self.attached:
                self.medium.detach(a)
                self.attached.discard(a)
            elif op == "move" and a in self.attached:
                self.sim.run()  # drain: no moves during airtime
                old = self.positions[a]
                self.positions[a] = (old[0] + 2.5 * b, c)
                self.medium.refresh_position(a)
            if a in self.attached:
                probes.append(("nbr", tuple(self.medium.neighbors_of(a))))
        self.sim.run()
        return probes

    def observations(self, probes):
        return (self.inbox, probes, repr(self.medium.stats),
                trace_digest(self.sim))


@settings(max_examples=200, deadline=None)
@given(positions=positions_strategy(),
       loss=st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
       soft=st.tuples(st.floats(min_value=0.5, max_value=1.0,
                                allow_nan=False),
                      st.floats(min_value=0.0, max_value=0.8,
                                allow_nan=False)),
       disturbances=st.lists(
           st.tuples(st.floats(min_value=0.0, max_value=1.0,
                               allow_nan=False),
                     st.floats(min_value=0.0, max_value=0.05,
                               allow_nan=False),
                     st.floats(min_value=0.06, max_value=0.3,
                               allow_nan=False)),
           max_size=2),
       seed=st.integers(min_value=0, max_value=2**31),
       data=st.data())
def test_grid_equals_bruteforce(positions, loss, soft, disturbances,
                                seed, data):
    ops = data.draw(ops_strategy(len(positions)))
    soft_start, soft_loss = soft
    results = []
    for index in ("grid", "bruteforce"):
        rig = _Rig(index, seed, positions, loss, soft_start, soft_loss,
                   disturbances)
        probes = rig.run(ops)
        results.append(rig.observations(probes))
    grid, brute = results
    assert grid[0] == brute[0], "delivery logs diverged"
    assert grid[1] == brute[1], "busy/neighbor probes diverged"
    assert grid[2] == brute[2], "radio stats diverged"
    assert grid[3] == brute[3], "trace digests diverged"


@settings(max_examples=50, deadline=None)
@given(positions=positions_strategy(),
       radius=st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
       origin=st.tuples(
           st.floats(min_value=-FIELD, max_value=FIELD, allow_nan=False),
           st.floats(min_value=-FIELD, max_value=FIELD, allow_nan=False)))
def test_neighbor_queries_match_any_radius(positions, radius, origin):
    """neighbors_of with an explicit radius — larger or smaller than the
    cell size — returns the same set under both index modes, and exactly
    the closed-disk membership (boundary inclusive)."""
    media = []
    for index in ("grid", "bruteforce"):
        sim = Simulator(seed=1)
        medium = Medium(sim, communication_radius=6.0, index=index)
        for i, pos in enumerate(positions):
            medium.attach(TransceiverPort(i, (lambda p=pos: p),
                                          lambda frame: None))
        medium.attach(TransceiverPort(999, (lambda: origin),
                                      lambda frame: None))
        media.append(medium)
    grid, brute = media
    expected = sorted(
        i for i, pos in enumerate(positions)
        if math.hypot(pos[0] - origin[0], pos[1] - origin[1]) <= radius)
    assert grid.neighbors_of(999, radius=radius) == expected
    assert brute.neighbors_of(999, radius=radius) == expected
