"""FaultInjector behaviour: every event kind, skip paths, determinism."""

from repro.faults import (ClockSkew, EnergyDrain, FaultInjector, FaultPlan,
                          LeaderCrash, LossSpike, NodeCrash, NodeReboot,
                          RegionJam, leader_crash_schedule)
from repro.groups import GroupConfig, GroupManager, Role
from repro.node.energy import EnergyMeter
from repro.sensing import SensorField
from repro.sim import Simulator


def build_field(seed=0, count=4, loss=0.0):
    sim = Simulator(seed=seed)
    field = SensorField(sim, communication_radius=10.0,
                        base_loss_rate=loss)
    for i in range(count):
        field.add_mote((float(i), 0.0))
    return sim, field


def build_group(seed, loss=0.0, count=6, sensing_ids=frozenset({1, 2, 3}),
                heartbeat_period=0.5):
    sim = Simulator(seed=seed)
    field = SensorField(sim, communication_radius=10.0,
                        base_loss_rate=loss)
    managers = {}
    for i in range(count):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing_ids,
                      GroupConfig(heartbeat_period=heartbeat_period,
                                  suppression_range=None))
        manager.start()
        managers[i] = manager
    return sim, field, managers


def categories(sim, prefix="fault."):
    return [r.category for r in sim.trace if r.category.startswith(prefix)]


def test_node_crash_kills_mote_and_records():
    sim, field = build_field()
    injector = FaultInjector(sim, field)
    injector.arm(FaultPlan.of(NodeCrash(time=1.0, node=2)))
    sim.run(until=2.0)
    assert not field.motes[2].alive
    assert categories(sim) == ["fault.crash"]


def test_crash_of_dead_or_unknown_mote_is_skipped():
    sim, field = build_field()
    field.motes[2].fail()
    injector = FaultInjector(sim, field)
    injector.arm(FaultPlan.of(NodeCrash(time=1.0, node=2),
                              NodeCrash(time=1.5, node=99)))
    sim.run(until=2.0)
    assert categories(sim) == ["fault.crash_skipped",
                               "fault.crash_skipped"]


def test_reboot_revives_dead_mote_only():
    sim, field = build_field()
    injector = FaultInjector(sim, field)
    injector.arm(FaultPlan.of(NodeCrash(time=1.0, node=0),
                              NodeReboot(time=2.0, node=0),
                              NodeReboot(time=3.0, node=1)))
    sim.run(until=4.0)
    assert field.motes[0].alive
    assert categories(sim) == ["fault.crash", "fault.reboot",
                               "fault.reboot_skipped"]


def test_leader_crash_resolves_victim_at_fire_time():
    sim, field, managers = build_group(seed=3)
    injector = FaultInjector(sim, field, managers=managers)
    injector.arm(FaultPlan.of(LeaderCrash(time=4.0, context_type="t")))
    sim.run(until=4.5)
    records = [r for r in sim.trace
               if r.category == "fault.leader_crash"]
    assert len(records) == 1
    victim = records[0].node
    assert victim in {1, 2, 3}
    assert not field.motes[victim].alive
    assert records[0].detail["label"] is not None


def test_leader_crash_without_leader_is_skipped():
    sim, field, managers = build_group(seed=3)
    injector = FaultInjector(sim, field, managers=managers)
    # Nobody tracks this context type, so there is nobody to kill.
    injector.arm(FaultPlan.of(LeaderCrash(time=0.1,
                                          context_type="other")))
    sim.run(until=0.5)
    assert categories(sim) == ["fault.leader_crash_skipped"]


def test_leader_crash_reboot_after_power_cycles_victim():
    sim, field, managers = build_group(seed=3)
    injector = FaultInjector(sim, field, managers=managers)
    injector.arm(FaultPlan.of(
        LeaderCrash(time=4.0, context_type="t", reboot_after=1.0)))
    sim.run(until=6.0)
    victim = next(r.node for r in sim.trace
                  if r.category == "fault.leader_crash")
    assert field.motes[victim].alive
    reboots = [r for r in sim.trace if r.category == "fault.reboot"]
    assert [r.node for r in reboots] == [victim]
    assert abs(reboots[0].time - 5.0) < 1e-9


def test_region_jam_blocks_covered_receivers():
    sim, field = build_field(count=3)
    injector = FaultInjector(sim, field)
    injector.arm(FaultPlan.of(RegionJam(time=0.5, duration=2.0,
                                        center=(0.0, 0.0), radius=1.5,
                                        extra_loss=1.0)))
    sim.run(until=1.0)
    assert "fault.jam" in categories(sim)
    active = field.medium.active_disturbances()
    assert len(active) == 1
    assert active[0].covers((1.0, 0.0))
    assert not active[0].covers((3.0, 0.0))
    sim.run(until=3.0)
    assert field.medium.active_disturbances() == []


def test_loss_spike_is_field_wide():
    sim, field = build_field()
    injector = FaultInjector(sim, field)
    injector.arm(FaultPlan.of(LossSpike(time=0.5, duration=1.0,
                                        extra_loss=0.4)))
    sim.run(until=1.0)
    active = field.medium.active_disturbances()
    assert len(active) == 1
    assert active[0].covers((123.0, -456.0))
    assert active[0].extra_loss == 0.4


def test_energy_drain_charges_ledger():
    sim, field = build_field()
    meter = EnergyMeter(sim)
    for mote in field.mote_list():
        meter.attach(mote)
    injector = FaultInjector(sim, field, meter=meter)
    injector.arm(FaultPlan.of(EnergyDrain(time=1.0, node=2, joules=0.25)))
    sim.run(until=2.0)
    assert meter.ledgers[2].drain_joules == 0.25
    assert "drain" in meter.breakdown(sim.now)


def test_energy_drain_without_meter_is_skipped():
    sim, field = build_field()
    injector = FaultInjector(sim, field)
    injector.arm(FaultPlan.of(EnergyDrain(time=1.0, node=2, joules=0.25)))
    sim.run(until=2.0)
    assert categories(sim) == ["fault.drain_skipped"]


def test_clock_skew_scales_mote_timers():
    sim, field = build_field()
    injector = FaultInjector(sim, field)
    injector.arm(FaultPlan.of(ClockSkew(time=1.0, node=0, factor=2.0),
                              ClockSkew(time=1.0, node=99, factor=2.0)))
    sim.run(until=2.0)
    assert field.motes[0].clock_scale == 2.0
    assert "fault.skew_skipped" in categories(sim)


def test_same_seed_and_plan_reproduce_identical_trace():
    plan = leader_crash_schedule("t", start=3.0, period=2.0, count=2,
                                 reboot_after=1.0).merged(
        FaultPlan.of(LossSpike(time=4.0, duration=1.0, extra_loss=0.3)))

    def run():
        sim, field, managers = build_group(seed=11, loss=0.1)
        injector = FaultInjector(sim, field, managers=managers)
        injector.arm(plan)
        sim.run(until=9.0)
        # Frame ids draw from a process-global counter, so normalize
        # them out; everything else must replay exactly.
        return [(r.time, r.category, r.node,
                 {k: v for k, v in r.detail.items() if k != "frame_id"})
                for r in sim.trace]

    assert run() == run()


def test_different_seed_changes_trace():
    def run(seed):
        sim, field, managers = build_group(seed=seed, loss=0.1)
        injector = FaultInjector(sim, field, managers=managers)
        injector.arm(leader_crash_schedule("t", start=3.0, period=2.0,
                                           count=2))
        sim.run(until=8.0)
        return [(r.time, r.category, r.node) for r in sim.trace]

    assert run(1) != run(2)
