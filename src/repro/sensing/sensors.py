"""Sensor models.

Each model is a factory returning a zero-argument read function suitable
for :meth:`repro.node.Mote.install_sensor`.  Read functions sample the
environment (the field's target list) at the current simulation time, so a
sensor is always consistent with where the targets really are.

Models provided:

* **binary detection** — true when any matching target's signature radius
  covers the node.  This is the testbed's light-sensor emulation: "the
  magnetic field of the target was emulated by moving a round object ...
  to block a strong light source from the appropriate sensors".
* **magnetic** — Honeywell-style magnetometer: disturbance proportional to
  ferrous mass, attenuated with the cube of distance (§6.1), thresholded
  for detection but also readable as a raw magnitude (the paper suggests
  proximity estimation from raw readings as future improvement).
* **scalar ambient** — temperature/light style readings with additive
  contributions from targets (used by the fire-monitoring example).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Sequence, Tuple

from .target import Target

Position = Tuple[float, float]
TargetSource = Callable[[], Sequence[Target]]
Clock = Callable[[], float]


def binary_detection_sensor(clock: Clock, position: Position,
                            targets: TargetSource,
                            kinds: Optional[Iterable[str]] = None
                            ) -> Callable[[], bool]:
    """True iff some (matching) target is within its signature radius."""
    kind_set = None if kinds is None else set(kinds)

    def read() -> bool:
        t = clock()
        for target in targets():
            if kind_set is not None and target.kind not in kind_set:
                continue
            if target.detectable_from(position, t):
                return True
        return False

    return read


def magnetic_sensor(clock: Clock, position: Position,
                    targets: TargetSource,
                    noise_std: float = 0.0,
                    rng: Optional[random.Random] = None,
                    reference_mass: float = 1000.0,
                    reference_distance: float = 0.2
                    ) -> Callable[[], float]:
    """Raw magnetometer magnitude (arbitrary units).

    Each target with a ``ferrous_mass`` attribute contributes
    ``mass / reference_mass * (reference_distance / r)**3`` — the cube-law
    attenuation the paper uses to size the tank's detection radius.
    Distances are clamped below ``reference_distance`` to avoid the pole.
    """
    noise_rng = rng or random.Random(0)

    def read() -> float:
        t = clock()
        total = 0.0
        for target in targets():
            mass = target.attributes.get("ferrous_mass")
            if mass is None or not target.active_at(t):
                continue
            r = max(target.distance_to(position, t), reference_distance)
            total += (mass / reference_mass) * (reference_distance / r) ** 3
        if noise_std > 0:
            total += noise_rng.gauss(0.0, noise_std)
        return max(total, 0.0)

    return read


def threshold_detector(read_fn: Callable[[], float],
                       threshold: float) -> Callable[[], bool]:
    """Wrap a scalar sensor into a boolean detector."""

    def read() -> bool:
        return read_fn() >= threshold

    return read


def ambient_scalar_sensor(clock: Clock, position: Position,
                          targets: TargetSource, attribute: str,
                          ambient: float = 0.0,
                          noise_std: float = 0.0,
                          rng: Optional[random.Random] = None
                          ) -> Callable[[], float]:
    """Ambient + in-signature target contributions for ``attribute``.

    E.g. ``attribute="temperature"`` with a fire target carrying
    ``{"temperature": 400.0}`` reads 400 inside the fire and ``ambient``
    elsewhere (with optional Gaussian noise).
    """
    noise_rng = rng or random.Random(0)

    def read() -> float:
        t = clock()
        value = ambient
        for target in targets():
            contribution = target.attributes.get(attribute)
            if contribution is None:
                continue
            if target.detectable_from(position, t):
                value = max(value, float(contribution))
        if noise_std > 0:
            value += noise_rng.gauss(0.0, noise_std)
        return value

    return read


def position_sensor(position: Position) -> Callable[[], Position]:
    """The node's own (assumed known) location — the paper assumes
    location-aware nodes and routing throughout."""

    def read() -> Position:
        return position

    return read
