"""Aggregation function library.

Section 3.2.3: "Several aggregation functions are provided in the system,
such as average, sum, and center of gravity", plus "mechanisms for
programming custom aggregation functions".  This module is that library: a
registry of named reducers over the fresh readings of a sensor group.

Readings may be scalars or fixed-length tuples (positions); vector-aware
functions (``avg``, ``sum``, ``centroid``) aggregate component-wise.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Sequence, Tuple

Reading = Any
AggregationFn = Callable[[Sequence[Reading]], Any]


class AggregationError(ValueError):
    """Raised when an aggregation cannot be computed from its inputs."""


def _require_nonempty(values: Sequence[Reading], name: str) -> None:
    if not values:
        raise AggregationError(f"{name}() needs at least one reading")


def _is_vector(value: Reading) -> bool:
    return isinstance(value, (tuple, list))


def _component_wise(values: Sequence[Reading], name: str,
                    reduce_fn: Callable[[Sequence[float]], float]
                    ) -> Reading:
    """Apply ``reduce_fn`` per component for vectors, directly for scalars."""
    if _is_vector(values[0]):
        width = len(values[0])
        for v in values:
            if not _is_vector(v) or len(v) != width:
                raise AggregationError(
                    f"{name}(): mixed shapes {values[0]!r} vs {v!r}")
        return tuple(reduce_fn([v[i] for v in values])
                     for i in range(width))
    for v in values:
        if _is_vector(v):
            raise AggregationError(
                f"{name}(): mixed shapes {values[0]!r} vs {v!r}")
    return reduce_fn([float(v) for v in values])


def aggregate_avg(values: Sequence[Reading]) -> Reading:
    """Arithmetic mean (component-wise for vectors) — the Figure 2
    ``avg(position)`` aggregate."""
    _require_nonempty(values, "avg")
    return _component_wise(values, "avg", lambda xs: sum(xs) / len(xs))


def aggregate_sum(values: Sequence[Reading]) -> Reading:
    """Sum of readings (component-wise for vectors)."""
    _require_nonempty(values, "sum")
    return _component_wise(values, "sum", sum)


def aggregate_min(values: Sequence[Reading]) -> Reading:
    """Minimum reading (component-wise for vectors)."""
    _require_nonempty(values, "min")
    return _component_wise(values, "min", min)


def aggregate_max(values: Sequence[Reading]) -> Reading:
    """Maximum reading (component-wise for vectors)."""
    _require_nonempty(values, "max")
    return _component_wise(values, "max", max)


def aggregate_count(values: Sequence[Reading]) -> int:
    """Number of contributing readings (any type)."""
    return len(values)


def aggregate_median(values: Sequence[Reading]) -> Reading:
    """Median reading (component-wise for vectors)."""
    _require_nonempty(values, "median")

    def median(xs: Sequence[float]) -> float:
        ordered = sorted(xs)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    return _component_wise(values, "median", median)


def aggregate_stddev(values: Sequence[Reading]) -> Reading:
    """Population standard deviation."""
    _require_nonempty(values, "stddev")

    def stddev(xs: Sequence[float]) -> float:
        mean = sum(xs) / len(xs)
        return math.sqrt(sum((x - mean) ** 2 for x in xs) / len(xs))

    return _component_wise(values, "stddev", stddev)


def aggregate_centroid(values: Sequence[Reading]) -> Tuple[float, ...]:
    """Center of gravity of position readings (§3.2.3's example)."""
    _require_nonempty(values, "centroid")
    if not _is_vector(values[0]):
        raise AggregationError("centroid() needs vector readings")
    result = _component_wise(values, "centroid",
                             lambda xs: sum(xs) / len(xs))
    return tuple(result)


def aggregate_any(values: Sequence[Reading]) -> bool:
    """True when any reading is truthy (event confirmation)."""
    return any(bool(v) for v in values)


def aggregate_all(values: Sequence[Reading]) -> bool:
    return bool(values) and all(bool(v) for v in values)


class AggregationRegistry:
    """Named registry; scenario and DSL code look functions up by name."""

    def __init__(self) -> None:
        self._functions: Dict[str, AggregationFn] = {}

    def register(self, name: str, fn: AggregationFn,
                 replace: bool = False) -> None:
        if not replace and name in self._functions:
            raise ValueError(f"aggregation {name!r} already registered")
        self._functions[name] = fn

    def get(self, name: str) -> AggregationFn:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(
                f"unknown aggregation {name!r}; known: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions


def default_registry() -> AggregationRegistry:
    """The stock library shipped with the middleware."""
    registry = AggregationRegistry()
    registry.register("avg", aggregate_avg)
    registry.register("sum", aggregate_sum)
    registry.register("min", aggregate_min)
    registry.register("max", aggregate_max)
    registry.register("count", aggregate_count)
    registry.register("median", aggregate_median)
    registry.register("stddev", aggregate_stddev)
    registry.register("centroid", aggregate_centroid)
    registry.register("any", aggregate_any)
    registry.register("all", aggregate_all)
    return registry


#: Process-wide default registry (scenarios may build their own).
DEFAULT_REGISTRY = default_registry()
