"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
the reproduced rows/series.  Set ``REPRO_BENCH_QUICK=1`` to shrink the
sweeps for smoke-testing (a couple of parameter points, one repetition);
the default runs the full reproduction.
"""

import os

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def emit(title: str, body: str) -> None:
    """Print a reproduced table under a visible banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
