"""Tests for the run report: text summary, SVG dashboard, Prometheus."""

import xml.dom.minidom
from dataclasses import replace

from repro.experiments import TankScenario, run_tank_scenario
from repro.sim import dump_trace
from repro.telemetry.report import RunReport


def make_run():
    scenario = TankScenario(columns=6, rows=2, seed=11)
    run = run_tank_scenario(scenario)
    return run.app.sim


class TestFromSim:
    def test_text_summary_covers_subsystems(self):
        sim = make_run()
        sim_report = RunReport.from_sim(sim)
        text = sim_report.format_text()
        assert "gm" in text
        assert "radio" in text
        assert "frames by kind" in text.lower() or "heartbeat" in text
        assert "span" in text.lower()

    def test_profiler_section_present_when_enabled(self):
        from repro.experiments.scenarios import build_app
        from repro.radio import reset_frame_ids

        reset_frame_ids()
        scenario = TankScenario(columns=6, rows=2, seed=11)
        app = build_app(scenario)
        app.sim.enable_profiler()
        app.install()
        app.run(until=scenario.duration)
        text = RunReport.from_sim(app.sim).format_text()
        assert "handler" in text

    def test_dashboard_svg_is_wellformed(self, tmp_path):
        sim = make_run()
        sim_report = RunReport.from_sim(sim)
        svg = sim_report.dashboard_svg()
        xml.dom.minidom.parseString(svg)
        assert svg.count("<svg") >= 5  # outer + 4 panels
        path = tmp_path / "dash.svg"
        sim_report.save_dashboard(str(path))
        xml.dom.minidom.parse(str(path))

    def test_prometheus_export(self, tmp_path):
        sim = make_run()
        sim_report = RunReport.from_sim(sim)
        path = tmp_path / "metrics.prom"
        sim_report.save_prometheus(str(path))
        text = path.read_text()
        assert "# TYPE repro_trace_records_total counter" in text
        assert "repro_radio_frames_sent_total" in text


class TestFromTraceFile:
    def test_loaded_trace_report(self, tmp_path):
        sim = make_run()
        path = tmp_path / "run.jsonl"
        dump_trace(sim, str(path))
        loaded = RunReport.from_trace_file(str(path))
        live = RunReport.from_sim(sim)
        assert loaded.category_counts() == live.category_counts()
        assert loaded.duration > 0
        text = loaded.format_text()
        assert "gm" in text
        xml.dom.minidom.parseString(loaded.dashboard_svg())

    def test_loaded_trace_prometheus_has_derived_counter(self, tmp_path):
        sim = make_run()
        path = tmp_path / "run.jsonl"
        dump_trace(sim, str(path))
        loaded = RunReport.from_trace_file(str(path))
        text = loaded.derived_registry().render_prometheus()
        assert 'repro_trace_records_total{category="radio.tx"}' in text

    def test_empty_trace_renders_placeholders(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        loaded = RunReport.from_trace_file(str(path))
        assert loaded.duration == 0.0
        xml.dom.minidom.parseString(loaded.dashboard_svg())
        assert loaded.format_text()


class TestSeriesHelpers:
    def test_rate_series_buckets(self):
        sim = make_run()
        sim_report = RunReport.from_sim(sim)
        series = sim_report.rate_series(["radio"])
        assert "radio" in series
        points = series["radio"]
        assert points
        assert all(time >= 0 for time, _ in points)
        assert any(rate > 0 for _, rate in points)

    def test_leadership_events_sorted(self):
        sim = make_run()
        sim_report = RunReport.from_sim(sim)
        events = sim_report.leadership_events()
        assert events == sorted(events, key=lambda r: r.time)
