"""Unit tests for sliding windows — the §3.2.3 QoS semantics."""

import pytest

from repro.aggregation import (AggregateStore, AggregateVarSpec,
                               default_registry)
from repro.aggregation.window import SlidingWindow


def make_window(confidence=2, freshness=1.0, function="avg"):
    spec = AggregateVarSpec("v", function, "sensor",
                            confidence=confidence, freshness=freshness)
    return SlidingWindow(spec, default_registry().get(function))


class TestValiditySemantics:
    def test_null_until_critical_mass(self):
        window = make_window(confidence=2)
        window.add(sender=1, value=10.0, time=0.0)
        result = window.evaluate(now=0.5)
        assert not result.valid
        assert result.value is None
        assert result.contributors == 1

    def test_valid_at_critical_mass(self):
        window = make_window(confidence=2)
        window.add(1, 10.0, 0.0)
        window.add(2, 20.0, 0.1)
        result = window.evaluate(now=0.5)
        assert result.valid
        assert result.value == pytest.approx(15.0)
        assert result.contributors == 2

    def test_stale_readings_do_not_count(self):
        window = make_window(confidence=2, freshness=1.0)
        window.add(1, 10.0, 0.0)
        window.add(2, 20.0, 2.0)
        result = window.evaluate(now=2.5)  # reading 1 is 2.5s old
        assert not result.valid
        assert result.contributors == 1

    def test_critical_mass_counts_devices_not_messages(self):
        window = make_window(confidence=2)
        for t in (0.0, 0.2, 0.4):
            window.add(1, 10.0, t)  # same sender, many messages
        assert not window.evaluate(now=0.5).valid

    def test_latest_reading_per_sender_wins(self):
        window = make_window(confidence=1)
        window.add(1, 10.0, 0.0)
        window.add(1, 30.0, 0.5)
        assert window.evaluate(now=0.6).value == pytest.approx(30.0)

    def test_reordered_older_reading_ignored(self):
        window = make_window(confidence=1)
        window.add(1, 30.0, 0.5)
        window.add(1, 10.0, 0.2)  # late arrival of an older measurement
        assert window.evaluate(now=0.6).value == pytest.approx(30.0)

    def test_oldest_reading_age_within_freshness(self):
        window = make_window(confidence=2, freshness=1.0)
        window.add(1, 10.0, 0.0)
        window.add(2, 20.0, 0.5)
        result = window.evaluate(now=0.9)
        assert result.valid
        assert result.oldest_reading_age == pytest.approx(0.9)
        assert result.oldest_reading_age <= 1.0

    def test_prune_removes_stale(self):
        window = make_window(confidence=1, freshness=1.0)
        window.add(1, 10.0, 0.0)
        window.add(2, 20.0, 5.0)
        window.prune(now=5.5)
        assert len(window) == 1

    def test_boolean_result_protocol(self):
        window = make_window(confidence=1)
        assert not window.evaluate(now=0.0)
        window.add(1, 1.0, 0.0)
        assert window.evaluate(now=0.1)


class TestSpecValidation:
    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            AggregateVarSpec("v", "avg", "s", confidence=0)

    def test_rejects_bad_freshness(self):
        with pytest.raises(ValueError):
            AggregateVarSpec("v", "avg", "s", freshness=0.0)


class TestAggregateStore:
    def build(self):
        specs = [
            AggregateVarSpec("location", "avg", "position",
                             confidence=2, freshness=1.0),
            AggregateVarSpec("heat", "max", "temperature",
                             confidence=1, freshness=2.0),
        ]
        return AggregateStore(specs, default_registry())

    def test_report_fans_out_to_windows(self):
        store = self.build()
        store.add_report(1, {"location": (0.0, 0.0), "heat": 50.0}, 0.0)
        store.add_report(2, {"location": (2.0, 2.0)}, 0.1)
        location = store.read("location", 0.5)
        assert location.valid
        assert location.value == pytest.approx((1.0, 1.0))
        heat = store.read("heat", 0.5)
        assert heat.valid and heat.value == pytest.approx(50.0)

    def test_unknown_variables_in_report_ignored(self):
        store = self.build()
        store.add_report(1, {"bogus": 1.0}, 0.0)
        assert store.read("heat", 0.1).valid is False

    def test_read_all(self):
        store = self.build()
        store.add_report(1, {"heat": 10.0}, 0.0)
        results = store.read_all(0.1)
        assert set(results) == {"location", "heat"}
        assert results["heat"].valid

    def test_duplicate_spec_rejected(self):
        specs = [AggregateVarSpec("x", "avg", "s"),
                 AggregateVarSpec("x", "sum", "s")]
        with pytest.raises(ValueError):
            AggregateStore(specs, default_registry())

    def test_max_freshness(self):
        assert self.build().max_freshness() == pytest.approx(2.0)

    def test_clear(self):
        store = self.build()
        store.add_report(1, {"heat": 10.0}, 0.0)
        store.clear()
        assert not store.read("heat", 0.1).valid
