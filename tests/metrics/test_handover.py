"""Unit tests for handover/coherence analysis."""

import pytest

from repro.metrics import analyze_handovers, tracking_coverage
from repro.sim import Simulator


def record(sim, t, category, node=0, **detail):
    detail.setdefault("type", "tracker")
    sim.schedule_at(t, lambda: sim.record(category, node=node, **detail))


def run_trace(events, until=100.0):
    sim = Simulator()
    for event in events:
        record(sim, *event[:2], **event[2]) if False else None
    sim.run(until=until)
    return sim


def build_sim(events, until=100.0):
    sim = Simulator()
    for t, category, detail in events:
        detail = dict(detail)
        detail.setdefault("type", "tracker")
        node = detail.pop("node", 0)
        sim.schedule_at(
            t, lambda c=category, n=node, d=detail: sim.record(c, node=n,
                                                               **d))
    sim.run(until=until)
    return sim


def test_single_label_run_is_coherent():
    sim = build_sim([
        (1.0, "gm.label_created", {"label": "L1"}),
        (1.0, "gm.leader_start", {"label": "L1", "via": "created"}),
        (10.0, "gm.leader_stop", {"label": "L1", "reason": "relinquish"}),
        (10.1, "gm.claim", {"label": "L1", "node": 1}),
        (10.1, "gm.leader_start", {"label": "L1", "via": "claim",
                                   "node": 1}),
    ])
    stats = analyze_handovers(sim, "tracker", grace=2.0)
    assert stats.coherent
    assert stats.labels_created == 1
    assert stats.successful_handovers == 1
    assert stats.handover_success_pct == 100.0
    assert stats.effective_labels() == ["L1"]


def test_persistent_duplicate_label_breaks_coherence():
    sim = build_sim([
        (1.0, "gm.label_created", {"label": "L1"}),
        (1.0, "gm.leader_start", {"label": "L1", "via": "created"}),
        (20.0, "gm.label_created", {"label": "L2", "node": 5}),
        (20.0, "gm.leader_start", {"label": "L2", "via": "created",
                                   "node": 5}),
    ])
    stats = analyze_handovers(sim, "tracker", grace=2.0)
    assert not stats.coherent
    assert stats.failed_handovers == 1
    assert sorted(stats.effective_labels()) == ["L1", "L2"]


def test_quickly_suppressed_duplicate_is_noise():
    """A spurious label that yields within the grace window does not
    violate coherence — the paper expects such minority leaders."""
    sim = build_sim([
        (1.0, "gm.label_created", {"label": "L1"}),
        (1.0, "gm.leader_start", {"label": "L1", "via": "created"}),
        (1.1, "gm.label_created", {"label": "L2", "node": 3}),
        (1.1, "gm.leader_start", {"label": "L2", "via": "created",
                                  "node": 3}),
        (1.6, "gm.label_deleted", {"label": "L2", "node": 3}),
        (1.6, "gm.leader_stop", {"label": "L2", "reason": "suppressed",
                                 "node": 3}),
    ])
    stats = analyze_handovers(sim, "tracker", grace=2.0)
    assert stats.coherent
    assert stats.labels_created == 2
    assert stats.effective_labels() == ["L1"]
    assert stats.suppressions == 1


def test_other_context_types_ignored():
    sim = build_sim([
        (1.0, "gm.label_created", {"label": "L1"}),
        (2.0, "gm.label_created", {"label": "F1", "type": "fire"}),
    ])
    stats = analyze_handovers(sim, "tracker", grace=1.0)
    assert stats.labels_created == 1


def test_takeovers_and_claims_counted():
    sim = build_sim([
        (1.0, "gm.takeover", {"label": "L1"}),
        (2.0, "gm.takeover", {"label": "L1"}),
        (3.0, "gm.claim", {"label": "L1"}),
        (4.0, "gm.yield", {"label": "L1"}),
    ])
    stats = analyze_handovers(sim, "tracker")
    assert stats.takeovers == 2
    assert stats.claims == 1
    assert stats.yields == 1
    assert stats.successful_handovers == 3


def test_open_tenure_extends_to_now():
    sim = build_sim([
        (1.0, "gm.label_created", {"label": "L1"}),
        (1.0, "gm.leader_start", {"label": "L1", "via": "created"}),
    ], until=50.0)
    stats = analyze_handovers(sim, "tracker", grace=2.0)
    assert stats.label_led_time["L1"] == pytest.approx(49.0)


def test_no_handovers_gives_none_pct():
    sim = build_sim([
        (1.0, "gm.label_created", {"label": "L1"}),
        (1.0, "gm.leader_start", {"label": "L1", "via": "created"}),
    ])
    stats = analyze_handovers(sim, "tracker")
    assert stats.handover_success_pct is None


class TestCoverage:
    def test_full_coverage(self):
        sim = build_sim([
            (0.0, "gm.leader_start", {"label": "L1", "via": "created"}),
        ], until=100.0)
        assert tracking_coverage(sim, "tracker", 10.0, 90.0,
                                 max_gap=1.0) == pytest.approx(1.0)

    def test_gap_reduces_coverage(self):
        sim = build_sim([
            (0.0, "gm.leader_start", {"label": "L1", "via": "created"}),
            (40.0, "gm.leader_stop", {"label": "L1", "reason": "x"}),
            (60.0, "gm.leader_start", {"label": "L2", "via": "created",
                                       "node": 2}),
        ], until=100.0)
        coverage = tracking_coverage(sim, "tracker", 0.0, 100.0,
                                     max_gap=1.0)
        assert coverage == pytest.approx(0.8)

    def test_micro_gaps_bridged(self):
        sim = build_sim([
            (0.0, "gm.leader_start", {"label": "L1", "via": "created"}),
            (50.0, "gm.leader_stop", {"label": "L1", "reason": "x"}),
            (50.5, "gm.leader_start", {"label": "L1", "via": "takeover",
                                       "node": 2}),
        ], until=100.0)
        coverage = tracking_coverage(sim, "tracker", 0.0, 100.0,
                                     max_gap=1.0)
        assert coverage == pytest.approx(1.0)

    def test_no_leaders_zero_coverage(self):
        sim = build_sim([], until=10.0)
        assert tracking_coverage(sim, "tracker", 0.0, 10.0,
                                 max_gap=1.0) == 0.0

    def test_empty_interval_rejected(self):
        sim = build_sim([], until=10.0)
        with pytest.raises(ValueError):
            tracking_coverage(sim, "tracker", 5.0, 5.0, max_gap=1.0)
