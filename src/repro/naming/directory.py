"""Object naming and directory services (§5.3).

Every context type hashes to a coordinate; the nodes around that point form
the *directory object* for the type.  A context label registers itself when
it "first comes alive", sends occasional location updates, and the
directory answers queries like "where are all the fires?" with the list of
active labels and their last known coordinates.

Implementation notes:

* registrations/queries travel over greedy geographic routing
  (:mod:`repro.transport.routing`);
* the node nearest the hashed point stores the entry and replicates it to
  its one-hop neighborhood ("the nodes within one hop of that coordinate
  are responsible"), so the directory survives single-node failures;
* entries expire after ``entry_ttl`` without updates — departed labels
  vanish without explicit deregistration, matching the protocol's
  soft-state philosophy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..node import Component, Mote
from ..radio import distance
from ..transport.routing import GeoRouter
from .geohash import FieldBounds, hash_to_coordinate

Position = Tuple[float, float]

REGISTER_KIND = "dir.register"
REPLICATE_KIND = "dir.replicate"
QUERY_KIND = "dir.query"
RESPONSE_KIND = "dir.response"

#: Default soft-state lifetime of a directory entry (seconds).
DEFAULT_ENTRY_TTL = 30.0


@dataclass
class DirectoryEntry:
    """One active context label known to a directory object."""

    label: str
    context_type: str
    location: Position
    leader: int
    updated: float

    def fresh(self, now: float, ttl: float) -> bool:
        return now - self.updated <= ttl


class DirectoryService(Component):
    """Directory participant running on every mote.

    Parameters
    ----------
    mote, router:
        Host mote and its geographic router.
    bounds:
        Field bounds every node agrees on (hash domain).
    entry_ttl:
        Entry expiry without updates.
    hash_margin:
        Keep hashed coordinates this far from the field edge.
    """

    name = "dir"

    def __init__(self, mote: Mote, router: GeoRouter, bounds: FieldBounds,
                 entry_ttl: float = DEFAULT_ENTRY_TTL,
                 hash_margin: float = 1.0) -> None:
        super().__init__(mote)
        self.router = router
        self.bounds = bounds.shrunk(hash_margin)
        self.entry_ttl = entry_ttl
        self._entries: Dict[str, DirectoryEntry] = {}
        self._pending_queries: Dict[int, Callable[
            [List[DirectoryEntry]], None]] = {}
        self._query_seq = 0
        # Telemetry counter (no-op when telemetry is disabled).
        self._ops_metric = self.sim.metrics.counter(
            "repro_directory_ops_total",
            "Directory operations by kind.", ("op",))

    def on_start(self) -> None:
        self.router.register_delivery(REGISTER_KIND, self._on_register)
        self.router.register_delivery(QUERY_KIND, self._on_query)
        self.router.register_delivery(RESPONSE_KIND, self._on_response)
        self.handle(REPLICATE_KIND, self._on_replicate_frame)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def directory_point(self, context_type: str) -> Position:
        """Where this type's directory object lives."""
        return hash_to_coordinate(context_type, self.bounds)

    def register(self, context_type: str, label: str,
                 location: Position, leader: int) -> None:
        """Announce (or refresh) an active context label.

        Called by a label's leader when the label first comes alive and
        periodically thereafter ("occasional updates ... keep the location
        information up to date").
        """
        self._ops_metric.inc(1.0, "register")
        with self.sim.spans.span(f"dir.register.{context_type}",
                                 node=self.node_id):
            self.router.route_to_point(
                self.directory_point(context_type), REGISTER_KIND, {
                    "context_type": context_type,
                    "label": label,
                    "location": [location[0], location[1]],
                    "leader": leader,
                    "time": self.now,
                })

    def lookup(self, context_type: str,
               callback: Callable[[List[DirectoryEntry]], None]) -> None:
        """Ask "where are all the <type>s?"; the callback receives the
        entries (possibly empty) when the response returns."""
        self._query_seq += 1
        query_id = self._query_seq
        self._pending_queries[query_id] = callback
        self._ops_metric.inc(1.0, "lookup")
        # Named span: the query frame, its routed hops, the directory
        # node's handler and the response all become children, so
        # ``spans.find("dir.lookup")`` + ``TraceQuery.span()`` reads a
        # lookup end-to-end.
        with self.sim.spans.span(f"dir.lookup.{context_type}",
                                 node=self.node_id):
            self.router.route_to_point(
                self.directory_point(context_type), QUERY_KIND, {
                    "context_type": context_type,
                    "query_id": query_id,
                    "reply_to": self.node_id,
                })

    # ------------------------------------------------------------------
    # Directory-object side
    # ------------------------------------------------------------------
    def entries_for(self, context_type: str) -> List[DirectoryEntry]:
        """Fresh locally stored entries of a type (directory nodes only)."""
        self._expire()
        return sorted((entry for entry in self._entries.values()
                       if entry.context_type == context_type),
                      key=lambda entry: entry.label)

    def _store(self, payload: Dict[str, Any]) -> Optional[DirectoryEntry]:
        try:
            entry = DirectoryEntry(
                label=payload["label"],
                context_type=payload["context_type"],
                location=(float(payload["location"][0]),
                          float(payload["location"][1])),
                leader=int(payload["leader"]),
                updated=float(payload.get("time", self.now)),
            )
        except (KeyError, TypeError, ValueError, IndexError):
            return None
        existing = self._entries.get(entry.label)
        if existing is not None and existing.updated > entry.updated:
            return existing
        self._entries[entry.label] = entry
        return entry

    def _on_register(self, payload: Dict[str, Any], origin: int) -> None:
        entry = self._store(payload)
        if entry is None:
            return
        self._ops_metric.inc(1.0, "stored")
        self.record("stored", label=entry.label, type=entry.context_type)
        # Replicate to the one-hop neighborhood around the hash point.
        self.broadcast(REPLICATE_KIND, dict(payload))

    def _on_replicate_frame(self, frame) -> None:
        payload = frame.payload
        context_type = payload.get("context_type")
        if not isinstance(context_type, str):
            return
        # Only nodes near the hashed coordinate keep replicas.
        point = self.directory_point(context_type)
        if distance(self.mote.position, point) \
                <= self.mote.medium.communication_radius:
            self._store(payload)

    def _on_query(self, payload: Dict[str, Any], origin: int) -> None:
        context_type = payload.get("context_type")
        reply_to = payload.get("reply_to")
        if not isinstance(context_type, str) or reply_to is None:
            return
        self._ops_metric.inc(1.0, "query_answered")
        entries = self.entries_for(context_type)
        self.router.route_to_node(int(reply_to), RESPONSE_KIND, {
            "query_id": payload.get("query_id"),
            "entries": [{
                "context_type": entry.context_type,
                "label": entry.label,
                "location": [entry.location[0], entry.location[1]],
                "leader": entry.leader,
                "time": entry.updated,
            } for entry in entries],
        })

    def _on_response(self, payload: Dict[str, Any], origin: int) -> None:
        callback = self._pending_queries.pop(
            payload.get("query_id"), None)
        if callback is None:
            return
        self._ops_metric.inc(1.0, "response")
        entries = []
        for raw in payload.get("entries", []):
            entry = self._store_parse(raw)
            if entry is not None:
                entries.append(entry)
        callback(entries)

    @staticmethod
    def _store_parse(raw: Dict[str, Any]) -> Optional[DirectoryEntry]:
        try:
            return DirectoryEntry(
                label=raw["label"], context_type=raw["context_type"],
                location=(float(raw["location"][0]),
                          float(raw["location"][1])),
                leader=int(raw["leader"]), updated=float(raw["time"]))
        except (KeyError, TypeError, ValueError, IndexError):
            return None

    def _expire(self) -> None:
        horizon = self.now - self.entry_ttl
        stale = [label for label, entry in self._entries.items()
                 if entry.updated < horizon]
        for label in stale:
            del self._entries[label]
