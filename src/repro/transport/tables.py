"""Bounded LRU tables for transport state.

§5.4: "Leadership information is retained for as long as possible, given
limited table sizes.  Replacement is done on a least-recently-used basis."
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass
class LeaderPointer:
    """Last-known leader of a context label."""

    leader: int
    updated: float


class LastKnownLeaderTable:
    """LRU map: context label → last-known leader.

    Both reads and writes refresh recency, so labels in active conversations
    stay resident while idle ones age out.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, LeaderPointer]" = OrderedDict()
        self.evictions = 0

    def update(self, label: str, leader: int, now: float) -> None:
        """Record ``leader`` as the freshest known leader of ``label``.

        An older timestamp never overwrites a newer pointer (reordered
        messages must not roll leadership information back).
        """
        existing = self._entries.get(label)
        if existing is not None:
            if now >= existing.updated:
                existing.leader = leader
                existing.updated = now
            self._entries.move_to_end(label)
            return
        self._entries[label] = LeaderPointer(leader=leader, updated=now)
        self._entries.move_to_end(label)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get(self, label: str) -> Optional[LeaderPointer]:
        entry = self._entries.get(label)
        if entry is not None:
            self._entries.move_to_end(label)
        return entry

    def peek(self, label: str) -> Optional[LeaderPointer]:
        """Read without refreshing recency (for tests/metrics)."""
        return self._entries.get(label)

    def forget(self, label: str) -> None:
        self._entries.pop(label, None)

    def clear(self) -> None:
        """Drop every pointer (a reboot wipes transport RAM)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, label: str) -> bool:
        return label in self._entries

    def labels(self) -> Iterator[str]:
        """Labels from least- to most-recently used."""
        return iter(self._entries)


class NegativeCache:
    """Bounded TTL memory of labels the directory recently did not know.

    A lookup that comes back without the requested label parks the label
    here; until the entry expires, repeated sends to it fail locally
    instead of storming the directory point with queries that will fail
    again (§5.3's directory object is a small neighborhood of nodes — a
    hot unknown label would otherwise monopolize it).
    """

    def __init__(self, ttl: float = 5.0, capacity: int = 32) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.ttl = ttl
        self.capacity = capacity
        self._expiry: "OrderedDict[str, float]" = OrderedDict()
        self.hits = 0

    def store(self, label: str, now: float) -> None:
        """Remember ``label`` as unknown until ``now + ttl``."""
        self._expiry[label] = now + self.ttl
        self._expiry.move_to_end(label)
        while len(self._expiry) > self.capacity:
            self._expiry.popitem(last=False)

    def fresh(self, label: str, now: float) -> bool:
        """True while the negative entry is unexpired (expired entries
        are evicted on the way out)."""
        expiry = self._expiry.get(label)
        if expiry is None:
            return False
        if now >= expiry:
            del self._expiry[label]
            return False
        self.hits += 1
        return True

    def forget(self, label: str) -> None:
        self._expiry.pop(label, None)

    def clear(self) -> None:
        self._expiry.clear()

    def __len__(self) -> int:
        return len(self._expiry)
