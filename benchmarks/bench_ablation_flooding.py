"""Ablation A — h-hop heartbeat flooding past the group perimeter.

§5.2 describes forwarding leader heartbeats "h hops past the group's
perimeter" to extend the awareness horizon, and §6.2 leaves evaluating the
mechanism to future work.  This ablation runs it: with heartbeat transmit
power confined to the sensing radius (the failing Figure 4 setting),
non-member forwarding restores handover success at the cost of extra
traffic.
"""

from conftest import QUICK, emit

from repro.experiments import SPEED_50_KMH, TankScenario, run_tank_scenario


def run_setting(flood_hops: int, repetitions: int):
    successes = failures = 0
    heartbeats = 0
    for rep in range(repetitions):
        # Sharp-disk radio on a jittered grid: heartbeat reach ends
        # exactly at the sensing radius, so whether a node ahead of the
        # target has heard the label is purely a question of *geometry* —
        # which the h-hop flood extends by one radio hop per hop of h.
        scenario = TankScenario(
            columns=12 if QUICK else 16, rows=3, speed=SPEED_50_KMH,
            sensing_radius=1.0, heartbeat_tx_range=1.0,
            member_rebroadcast=False, flood_hops=flood_hops,
            deployment_jitter=0.25, base_loss_rate=0.03,
            with_base_station=False, seed=90 + rep)
        result = run_tank_scenario(scenario)
        successes += result.handovers.successful_handovers
        failures += result.handovers.failed_handovers
        heartbeats += result.communication.heartbeats_sent
    total = successes + failures
    pct = 100.0 * successes / total if total else 0.0
    return pct, heartbeats / repetitions


def test_ablation_flooding(benchmark):
    repetitions = 1 if QUICK else 4

    def run():
        return {hops: run_setting(hops, repetitions)
                for hops in (0, 1, 2)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation A — heartbeat flood hops past the perimeter "
             "(heartbeat reach = sensing radius)",
             f"{'h':>3} {'handover success':>17} {'heartbeats/run':>15}"]
    for hops, (pct, heartbeats) in sorted(results.items()):
        lines.append(f"{hops:>3} {pct:>16.1f}% {heartbeats:>15.0f}")
    emit("Ablation A — h-hop flooding", "\n".join(lines))

    if not QUICK:
        # Flooding extends the awareness horizon: success improves …
        assert results[1][0] > results[0][0]
        # … and costs traffic: forwarded copies multiply heartbeats.
        assert results[1][1] > results[0][1]
        # Extra hops beyond the first give little additional benefit at
        # this geometry but keep costing messages.
        assert results[2][1] >= results[1][1]
