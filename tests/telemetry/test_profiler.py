"""Unit and integration tests for the event-loop profiler."""

import pytest

from repro.sim import Simulator, trace_digest
from repro.telemetry.profiler import (EventLoopProfiler, UNLABELED,
                                      normalize_label)


class TestNormalizeLabel:
    def test_strips_node_suffix(self):
        assert normalize_label("gm.heartbeat@12") == "gm.heartbeat"

    def test_plain_label_unchanged(self):
        assert normalize_label("radio.delivery") == "radio.delivery"

    def test_empty_label_sentinel(self):
        assert normalize_label("") == UNLABELED

    def test_leading_at_not_treated_as_suffix(self):
        assert normalize_label("@weird") == "@weird"


class TestProfiler:
    def test_note_accumulates(self):
        p = EventLoopProfiler()
        p.note("gm.heartbeat@1", 0.002)
        p.note("gm.heartbeat@2", 0.004)
        p.note("radio.delivery", 0.001)
        profile = p.get("gm.heartbeat")
        assert profile.count == 2
        assert profile.total_seconds == pytest.approx(0.006)
        assert profile.max_seconds == pytest.approx(0.004)
        assert profile.mean_seconds == pytest.approx(0.003)
        assert p.events_profiled == 3
        assert p.total_seconds == pytest.approx(0.007)
        assert "gm.heartbeat@99" in p
        assert "never" not in p

    def test_profiles_sorted_hottest_first(self):
        p = EventLoopProfiler()
        p.note("cold", 0.001)
        p.note("hot", 0.010)
        assert [x.label for x in p.profiles()] == ["hot", "cold"]
        assert [x.label for x in p.hot(1)] == ["hot"]

    def test_by_category_rollup(self):
        p = EventLoopProfiler()
        p.note("gm.heartbeat", 0.002)
        p.note("gm.defend", 0.001)
        p.note("radio.delivery", 0.004)
        rollup = p.by_category()
        assert rollup["gm"].count == 2
        assert rollup["gm"].total_seconds == pytest.approx(0.003)
        assert rollup["radio"].max_seconds == pytest.approx(0.004)

    def test_format_table(self):
        p = EventLoopProfiler()
        p.note("gm.heartbeat", 0.002)
        table = p.format_table()
        assert "gm.heartbeat" in table
        assert "events" in table


class TestEngineIntegration:
    def run_sim(self, profiler_on):
        sim = Simulator(seed=5)
        if profiler_on:
            sim.enable_profiler()

        def tick(n):
            sim.record("app.tick", node=n)
            if n:
                sim.schedule(1.0, tick, n - 1, label=f"app.tick@{n}")

        sim.schedule(1.0, tick, 3, label="app.tick@3")
        sim.run()
        return sim

    def test_profiler_counts_events_by_label(self):
        sim = self.run_sim(profiler_on=True)
        assert sim.profiler.get("app.tick").count == 4
        assert sim.profiler.events_profiled == 4

    def test_profiler_does_not_perturb_the_trace(self):
        plain = self.run_sim(profiler_on=False)
        profiled = self.run_sim(profiler_on=True)
        assert trace_digest(plain) == trace_digest(profiled)
        # Profiler output stays outside the trace entirely.
        assert all(not r.category.startswith("profiler")
                   for r in profiled.trace)

    def test_enable_is_idempotent_disable_discards(self):
        sim = Simulator()
        p = sim.enable_profiler()
        assert sim.enable_profiler() is p
        sim.disable_profiler()
        assert sim.profiler is None

    def test_profiler_works_with_telemetry_off(self):
        sim = Simulator(seed=5, telemetry=False)
        sim.enable_profiler()
        sim.schedule(1.0, lambda: None, label="x.y")
        sim.run()
        assert sim.profiler.events_profiled == 1
