"""Tests for --trace-out plumbing, the report CLI, and the overhead gate."""

import xml.dom.minidom

import pytest

from repro.cli import main
from repro.experiments import TankScenario, dump_scenario_trace
from repro.experiments.bench import OVERHEAD_FACTOR, OverheadResult
from repro.experiments.scenarios import run_tank_scenario
from repro.sim import load_trace, trace_digest


class TestDumpScenarioTrace:
    def test_dump_matches_a_direct_run(self, tmp_path):
        scenario = TankScenario(columns=6, rows=2, seed=11)
        path = tmp_path / "scenario.jsonl"
        count = dump_scenario_trace(scenario, str(path))
        assert count > 0
        dumped = load_trace(str(path))
        direct = run_tank_scenario(scenario).app.sim
        assert trace_digest(dumped) == trace_digest(direct)


class TestCliTraceOut:
    def test_figure3_writes_trace(self, tmp_path):
        trace_path = tmp_path / "figure3.jsonl"
        lines = []
        assert main(["figure3", "--trace-out", str(trace_path)],
                    out=lines.append) == 0
        assert trace_path.exists()
        assert load_trace(str(trace_path))
        assert any("wrote trace" in line for line in lines)

    def test_table1_quick_writes_trace(self, tmp_path):
        trace_path = tmp_path / "table1.jsonl"
        assert main(["table1", "--quick", "--trace-out",
                     str(trace_path)], out=lambda _: None) == 0
        assert load_trace(str(trace_path))

    def test_report_from_saved_trace(self, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        scenario = TankScenario(columns=6, rows=2, seed=11)
        dump_scenario_trace(scenario, str(trace_path))
        svg_path = tmp_path / "dash.svg"
        prom_path = tmp_path / "metrics.prom"
        lines = []
        assert main(["report", str(trace_path), "--svg", str(svg_path),
                     "--prom", str(prom_path)], out=lines.append) == 0
        xml.dom.minidom.parse(str(svg_path))
        assert "repro_trace_records_total" in prom_path.read_text()
        assert any("gm" in line for line in lines)

    def test_report_missing_file_exits_2(self):
        assert main(["report", "/nonexistent/trace.jsonl"],
                    out=lambda _: None) == 2

    def test_report_live_quick_run(self, tmp_path):
        trace_path = tmp_path / "live.jsonl"
        lines = []
        assert main(["report", "--quick", "--trace-out",
                     str(trace_path)], out=lines.append) == 0
        assert load_trace(str(trace_path))
        output = "\n".join(lines)
        assert "handler" in output  # live runs profile the event loop


class TestOverheadGate:
    def test_ratio_and_within(self):
        result = OverheadResult(nodes=1, frames=1, repeats=1,
                                off_seconds=1.0, on_seconds=1.04)
        assert result.ratio == pytest.approx(1.04)
        assert result.within()
        assert not OverheadResult(nodes=1, frames=1, repeats=1,
                                  off_seconds=1.0,
                                  on_seconds=1.2).within()

    def test_zero_off_time_is_neutral(self):
        result = OverheadResult(nodes=1, frames=1, repeats=1,
                                off_seconds=0.0, on_seconds=0.5)
        assert result.ratio == 1.0

    def test_factor_is_five_percent(self):
        assert OVERHEAD_FACTOR == pytest.approx(1.05)

    def test_format_table_mentions_ratio(self):
        result = OverheadResult(nodes=100, frames=200, repeats=5,
                                off_seconds=1.0, on_seconds=1.03)
        table = result.format_table()
        assert "1.030x" in table
        assert "telemetry" in table
