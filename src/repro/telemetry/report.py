"""Run reports: text summary, SVG dashboard, Prometheus export.

``python -m repro report`` (or :class:`RunReport` directly) renders what
a run *did* — message rates per subsystem, the leadership/takeover
timeline, energy use and hot event handlers — from either of two
sources:

* a **live simulator** (``RunReport.from_sim``): trace + metrics
  registry + span tracker + optional profiler, everything available;
* a **saved JSONL trace** (``RunReport.from_trace_file``): trace records
  only.  Everything derivable from the trace (counts, rates, the
  takeover timeline) still renders; registry-only sections (energy) and
  profiler sections degrade to a note instead of failing.

This module imports :mod:`repro.sim` and :mod:`repro.analysis`, so the
``repro.telemetry`` package intentionally does **not** import it at
module level (the engine imports the telemetry core; importing report
back into the package would cycle).  Use
``from repro.telemetry import report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from ..analysis.svg import BarChart, LineChart
from ..sim import TraceRecord, load_trace
from .profiler import EventLoopProfiler
from .registry import MetricsRegistry

#: Leadership-transition trace categories, in the order a takeover story
#: unfolds.  ``gm.leader_start``/``gm.leader_stop`` bound tenures;
#: ``gm.takeover``/``gm.claim``/``gm.relinquish`` explain why.
LEADERSHIP_CATEGORIES = ("gm.claim", "gm.takeover", "gm.relinquish",
                         "gm.leader_start", "gm.leader_stop")

#: How many time buckets the rate chart uses across the run.
RATE_BUCKETS = 40


def _subsystem(category: str) -> str:
    """The part of a trace category before the first dot."""
    return category.split(".", 1)[0]


@dataclass
class RunReport:
    """A rendered view of one run, from a live sim or a saved trace."""

    title: str
    source: str
    records: List[TraceRecord]
    metrics: Optional[MetricsRegistry] = None
    profiler: Optional[EventLoopProfiler] = None
    span_count: int = 0
    span_root_count: int = 0
    span_top_names: List[Tuple[str, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sim(cls, sim, title: str = "simulation run") -> "RunReport":
        """Build a report from a live simulator (full telemetry)."""
        metrics = sim.metrics if sim.telemetry_enabled else None
        report = cls(title=title, source="live run",
                     records=list(sim.trace), metrics=metrics,
                     profiler=sim.profiler)
        spans = sim.spans
        if getattr(spans, "enabled", False):
            names: Dict[str, int] = {}
            for record in spans.spans():
                key = record.name.split(".", 1)[0]
                names[key] = names.get(key, 0) + 1
            report.span_count = len(spans)
            report.span_root_count = len(spans.roots())
            report.span_top_names = sorted(
                names.items(), key=lambda item: (-item[1], item[0]))[:8]
        return report

    @classmethod
    def from_trace_file(cls, path: str,
                        title: Optional[str] = None) -> "RunReport":
        """Build a report from a saved JSONL trace (records only)."""
        return cls(title=title or f"trace {path}", source=path,
                   records=load_trace(path))

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Simulated seconds covered by the trace."""
        if not self.records:
            return 0.0
        return self.records[-1].time - self.records[0].time

    def category_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.category] = out.get(record.category, 0) + 1
        return out

    def subsystem_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            key = _subsystem(record.category)
            out[key] = out.get(key, 0) + 1
        return out

    def frames_by_kind(self) -> Dict[str, int]:
        """Transmitted frames per kind (from ``radio.tx`` records)."""
        out: Dict[str, int] = {}
        for record in self.records:
            if record.category == "radio.tx":
                kind = str(record.detail.get("kind", "?"))
                out[kind] = out.get(kind, 0) + 1
        return out

    def leadership_events(self) -> List[TraceRecord]:
        wanted = set(LEADERSHIP_CATEGORIES)
        return [record for record in self.records
                if record.category in wanted]

    def rate_series(self, subsystems: Sequence[str]
                    ) -> Dict[str, List[Tuple[float, float]]]:
        """Events/second over time, bucketed, per subsystem."""
        if not self.records or self.duration <= 0:
            return {name: [] for name in subsystems}
        start = self.records[0].time
        width = self.duration / RATE_BUCKETS
        wanted = set(subsystems)
        counts: Dict[str, List[int]] = {
            name: [0] * RATE_BUCKETS for name in subsystems}
        for record in self.records:
            name = _subsystem(record.category)
            if name not in wanted:
                continue
            index = min(int((record.time - start) / width),
                        RATE_BUCKETS - 1)
            counts[name][index] += 1
        return {name: [(start + (i + 0.5) * width, count / width)
                       for i, count in enumerate(buckets)]
                for name, buckets in counts.items()}

    def energy_breakdown(self) -> Dict[str, float]:
        """Joules by activity from the registry gauge (live runs with an
        attached :class:`~repro.node.energy.EnergyMeter` only)."""
        if self.metrics is None:
            return {}
        gauge = self.metrics.get("repro_energy_joules")
        if gauge is None:
            return {}
        return {key[0]: value for key, value in gauge.series().items()}

    def derived_registry(self) -> MetricsRegistry:
        """The registry to export: the live one, or counters rebuilt from
        the trace records (so saved traces still export cleanly)."""
        if self.metrics is not None:
            return self.metrics
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_trace_records_total",
            "Trace records written, by category.", ("category",))
        for category, count in sorted(self.category_counts().items()):
            counter.inc(count, category)
        return registry

    # ------------------------------------------------------------------
    # Text rendering
    # ------------------------------------------------------------------
    def format_text(self) -> str:
        lines = [f"Run report — {self.title}",
                 f"source: {self.source}",
                 f"{len(self.records)} trace records over "
                 f"{self.duration:.1f} simulated seconds"]
        duration = self.duration or 1.0
        lines.append("")
        lines.append("Per-subsystem trace records")
        lines.append(f"{'subsystem':<12} {'records':>8} {'rate':>10}")
        for name, count in sorted(self.subsystem_counts().items(),
                                  key=lambda item: (-item[1], item[0])):
            lines.append(f"{name:<12} {count:8d} "
                         f"{count / duration:8.1f}/s")
        kinds = self.frames_by_kind()
        if kinds:
            lines.append("")
            lines.append("Transmitted frames by kind")
            lines.append(f"{'kind':<20} {'frames':>8}")
            for kind, count in sorted(kinds.items(),
                                      key=lambda item: (-item[1],
                                                        item[0])):
                lines.append(f"{kind:<20} {count:8d}")
        events = self.leadership_events()
        lines.append("")
        lines.append(f"Leadership timeline ({len(events)} transitions)")
        shown = events[:12]
        for record in shown:
            node = "-" if record.node is None else record.node
            label = record.detail.get("label", "")
            lines.append(f"  t={record.time:8.2f}  node {node:>4}  "
                         f"{record.category:<17} {label}")
        if len(events) > len(shown):
            lines.append(f"  … {len(events) - len(shown)} more")
        energy = self.energy_breakdown()
        if energy:
            lines.append("")
            lines.append("Energy by activity (joules, fleet-wide)")
            for activity, joules in sorted(energy.items()):
                lines.append(f"  {activity:<8} {joules:10.3f} J")
        lines.append("")
        if self.profiler is not None:
            lines.append("Hot event handlers (host wall time)")
            lines.append(self.profiler.format_table(10))
        else:
            lines.append("Hot handlers: profiler not enabled for this "
                         "source (sim.enable_profiler() on a live run).")
        if self.span_count:
            lines.append("")
            lines.append(f"Causal spans: {self.span_count} "
                         f"({self.span_root_count} roots); top names: "
                         + ", ".join(f"{name} ({count})"
                                     for name, count
                                     in self.span_top_names))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # SVG dashboard
    # ------------------------------------------------------------------
    def dashboard_svg(self, panel_width: int = 620,
                      panel_height: int = 420) -> str:
        """A 2×2 dashboard: subsystem volume, message rate over time,
        takeover timeline, and energy or hot handlers."""
        panels = [
            self._subsystem_chart(panel_width, panel_height),
            self._rate_chart(panel_width, panel_height),
            self._leadership_chart(panel_width, panel_height),
            self._cost_chart(panel_width, panel_height),
        ]
        width, height = 2 * panel_width, 2 * panel_height + 28
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="sans-serif">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'font-size="16" font-weight="bold">'
            f'{escape(self.title)} — {escape(self.source)}</text>',
        ]
        for index, panel in enumerate(panels):
            x = (index % 2) * panel_width
            y = 28 + (index // 2) * panel_height
            parts.append(f'<svg x="{x}" y="{y}" width="{panel_width}" '
                         f'height="{panel_height}">')
            parts.append(panel)
            parts.append('</svg>')
        parts.append('</svg>')
        return "\n".join(parts)

    def _subsystem_chart(self, width: int, height: int) -> str:
        counts = sorted(self.subsystem_counts().items(),
                        key=lambda item: (-item[1], item[0]))[:8]
        if not counts:
            return _placeholder(width, height, "Trace records",
                                "no trace records")
        chart = BarChart(title="Trace records by subsystem",
                         groups=[name for name, _ in counts],
                         series_names=["records"],
                         values=[[float(count) for _, count in counts]],
                         y_label="records", width=width, height=height)
        return chart.to_svg()

    def _rate_chart(self, width: int, height: int) -> str:
        top = [name for name, _ in
               sorted(self.subsystem_counts().items(),
                      key=lambda item: (-item[1], item[0]))[:5]]
        series = self.rate_series(top)
        if not any(series.values()):
            return _placeholder(width, height, "Message rate",
                                "trace too short to bucket")
        chart = LineChart(title="Trace record rate over time",
                          x_label="simulated time (s)",
                          y_label="records/s", width=width, height=height)
        for name in top:
            if series[name]:
                chart.add_series(name, series[name], draw_markers=False)
        return chart.to_svg()

    def _leadership_chart(self, width: int, height: int) -> str:
        events = self.leadership_events()
        if not events:
            return _placeholder(width, height, "Takeover timeline",
                                "no leadership transitions in trace")
        chart = LineChart(title="Leadership transitions (cumulative)",
                          x_label="simulated time (s)",
                          y_label="transitions", width=width,
                          height=height)
        for category in LEADERSHIP_CATEGORIES:
            points = [(record.time, index + 1)
                      for index, record in enumerate(
                          r for r in events if r.category == category)]
            if points:
                chart.add_series(category.split(".", 1)[1], points,
                                 draw_markers=len(points) <= 40)
        return chart.to_svg()

    def _cost_chart(self, width: int, height: int) -> str:
        if self.profiler is not None and self.profiler.events_profiled:
            hot = self.profiler.hot(8)
            chart = BarChart(
                title="Hot event handlers (host ms)",
                groups=[profile.label[-18:] for profile in hot],
                series_names=["wall ms"],
                values=[[profile.total_seconds * 1e3
                         for profile in hot]],
                y_label="wall ms", width=width, height=height)
            return chart.to_svg()
        energy = self.energy_breakdown()
        if energy:
            items = sorted(energy.items())
            chart = BarChart(title="Energy by activity (J)",
                             groups=[name for name, _ in items],
                             series_names=["joules"],
                             values=[[value for _, value in items]],
                             y_label="joules", width=width,
                             height=height)
            return chart.to_svg()
        return _placeholder(
            width, height, "Cost",
            "no profiler or energy data for this source")

    # ------------------------------------------------------------------
    # Writers
    # ------------------------------------------------------------------
    def save_dashboard(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dashboard_svg())

    def save_text(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.format_text())
            handle.write("\n")

    def save_prometheus(self, path: str) -> None:
        """Write the registry in Prometheus text exposition format."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.derived_registry().render_prometheus())


def _placeholder(width: int, height: int, title: str,
                 message: str) -> str:
    """An empty panel that says why it is empty."""
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">'
        f'<rect width="{width}" height="{height}" fill="white"/>'
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{escape(title)}</text>'
        f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle" '
        f'fill="#888">{escape(message)}</text></svg>')
