"""Sense-function standard library.

"EnviroTrack contains a library of such functions for the programmer to
choose from.  New user-defined functions can be easily added by application
developers."  A :class:`SenseLibrary` maps the function names usable in
``activation:`` conditions to callables over the local mote; the defaults
bridge to the sensor kits :class:`repro.sensing.SensorField` installs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..node import Mote

SenseFunction = Callable[..., Any]


class SenseLibrary:
    """Named sense functions available to DSL activation conditions."""

    def __init__(self) -> None:
        self._functions: Dict[str, SenseFunction] = {}

    def register(self, name: str, fn: SenseFunction,
                 replace: bool = False) -> None:
        if not replace and name in self._functions:
            raise ValueError(f"sense function {name!r} already registered")
        self._functions[name] = fn

    def register_sensor_alias(self, name: str, sensor: str) -> None:
        """Expose ``sensor`` under the DSL function name ``name``."""

        def read(mote: Mote) -> Any:
            return mote.read_sensor(sensor)

        self.register(name, read)

    def get(self, name: str) -> SenseFunction:
        return self._functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)


def default_library() -> SenseLibrary:
    """The stock library.

    Detection-style functions (named ``*_sensor_reading`` after the paper's
    ``magnetic sensor reading()``) read the boolean detector a field kit
    installs; scalar functions read raw values for threshold conditions
    like ``temperature() > 180``.
    """
    library = SenseLibrary()
    aliases = {
        # Figure 2's activation condition.
        "magnetic_sensor_reading": "magnetic_detect",
        # The testbed's light-occlusion emulation.
        "light_sensor_reading": "light_detect",
        "photo_sensor_reading": "photo_detect",
        "acoustic_sensor_reading": "acoustic_detect",
        "motion_sensor_reading": "motion_detect",
        # Scalar reads for threshold activation conditions.
        "temperature": "temperature",
        "light": "light",
        "magnetic": "magnetic",
        "position": "position",
    }
    for fn_name, sensor in aliases.items():
        library.register_sensor_alias(fn_name, sensor)
    return library


#: Shared default library instance.
DEFAULT_LIBRARY = default_library()
