"""The EnviroTrack middleware agent — one per mote.

This component is the run-time system of §5: it owns the mote's group
manager, turns context type declarations into live protocol behaviour, and
hosts tracking-object execution when the mote leads a label.

Responsibilities per context type:

* evaluate the activation (and optional deactivation) condition via the
  group manager's sensing checks;
* as a **member**: sample the declared sensors every ``P_e = L_e − d``
  seconds and report to the current leader (the data collection protocol
  of §3.2.3);
* as a **leader**: maintain the label's :class:`AggregateStore`, bump the
  label weight per member report, execute attached object methods on their
  timer / condition / port invocations, refresh the directory entry, and
  carry committed object state on heartbeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..aggregation import (AggregationRegistry, DEFAULT_REGISTRY,
                           REPORT_KIND, AggregateStore, build_report,
                           parse_report, report_period, sample_readings)
from ..groups import GroupConfig, GroupListener, GroupManager, Role
from ..node import Component, Mote
from ..radio import distance
from ..transport import GeoRouter, MtpAgent
from ..naming import DirectoryService
from .context import (ContextTypeDef, MethodDef, PortInvocation,
                      TimerInvocation, WhenInvocation)
from .runtime import ObjectContext

#: Router inner-kind for MySend reports to the base station.
APP_REPORT_KIND = "app.report"


@dataclass
class _TypeRuntime:
    """Live state of one context type on one mote."""

    definition: ContextTypeDef
    report_timer: Any = None
    store: Optional[AggregateStore] = None
    octx: Optional[ObjectContext] = None
    object_timers: List[Any] = field(default_factory=list)
    when_latch: Dict[str, bool] = field(default_factory=dict)
    directory_timer: Any = None


class EnviroTrackAgent(Component, GroupListener):
    """Per-mote middleware run-time.

    Parameters
    ----------
    mote:
        Host mote.
    context_types:
        Declarations to run on this node (normally identical fleet-wide —
        "an application program is thus distributed among the sensor
        nodes").
    registry:
        Aggregation function registry.
    router / directory / mtp:
        Optional substrates; without a router, MySend falls back to direct
        single-hop unicast to the base station.
    base_station:
        Node id of the pursuer-facing mote, if any.
    """

    name = "etrack"

    def __init__(self, mote: Mote, context_types: List[ContextTypeDef],
                 registry: AggregationRegistry = DEFAULT_REGISTRY,
                 router: Optional[GeoRouter] = None,
                 directory: Optional[DirectoryService] = None,
                 mtp: Optional[MtpAgent] = None,
                 base_station: Optional[int] = None) -> None:
        super().__init__(mote)
        self.registry = registry
        self.router = router
        self.directory = directory
        self.mtp = mtp
        self.base_station = base_station
        self.groups = GroupManager(mote)
        self.groups.add_listener(self)
        self._runtimes: Dict[str, _TypeRuntime] = {}
        self._hysteresis: Dict[str, bool] = {}
        for definition in context_types:
            if definition.name in self._runtimes:
                raise ValueError(
                    f"duplicate context type {definition.name!r}")
            self._runtimes[definition.name] = _TypeRuntime(
                definition=definition)
        self._rng = self.sim.rng.stream("etrack.jitter")

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.handle(REPORT_KIND, self._on_report_frame)
        if self.router is not None:
            # Multihop report relay: "All members of a sensor group can
            # communicate with each other possibly using multiple hops
            # through other members" (§3.2.1) — reports for an
            # out-of-radio-range leader travel by geographic routing.
            self.router.register_delivery(REPORT_KIND,
                                          self._on_routed_report)
        for runtime in self._runtimes.values():
            definition = runtime.definition
            self.groups.track(definition.name,
                              self._build_sense_fn(definition),
                              definition.group)
            if self.mtp is not None:
                for port, method in definition.ports().items():
                    self.mtp.register_port(
                        definition.name, port,
                        self._make_port_handler(definition.name, method))
        self.groups.start()

    # ------------------------------------------------------------------
    # Sensing conditions
    # ------------------------------------------------------------------
    def _condition_fn(self, condition) -> Callable[[Mote], bool]:
        if callable(condition):
            def evaluate(mote: Mote) -> bool:
                # Heterogeneous deployments: a mote without the sensors a
                # condition reads (e.g. the base station) never senses.
                try:
                    return bool(condition(mote))
                except (KeyError, LookupError):
                    return False

            return evaluate
        sensor_name = str(condition)

        def read(mote: Mote) -> bool:
            if not mote.has_sensor(sensor_name):
                return False
            return bool(mote.read_sensor(sensor_name))

        return read

    def _build_sense_fn(self, definition: ContextTypeDef
                        ) -> Callable[[Mote], bool]:
        activation = self._condition_fn(definition.activation)
        if definition.deactivation is None:
            # Footnote 1: deactivation defaults to ¬activation — the sense
            # condition is simply the activation predicate.
            return activation
        deactivation = self._condition_fn(definition.deactivation)
        key = definition.name

        def sense(mote: Mote) -> bool:
            active = self._hysteresis.get(key, False)
            if active:
                if deactivation(mote):
                    active = False
            elif activation(mote):
                active = True
            self._hysteresis[key] = active
            return active

        return sense

    # ------------------------------------------------------------------
    # GroupListener: membership → data collection
    # ------------------------------------------------------------------
    def on_member_join(self, context_type: str, label: str,
                       leader: int) -> None:
        runtime = self._runtimes[context_type]
        definition = runtime.definition
        if not definition.aggregates:
            return
        period = report_period(definition.aggregates,
                               definition.delay_estimate)
        if runtime.report_timer is not None:
            runtime.report_timer.stop()
        runtime.report_timer = self.mote.periodic(
            period, lambda: self._send_member_report(context_type),
            label=f"etrack.report.{context_type}",
            initial_delay=self._rng.uniform(0, min(period, 0.2)))
        runtime.report_timer.start()

    def on_member_leave(self, context_type: str, label: str) -> None:
        runtime = self._runtimes[context_type]
        if runtime.report_timer is not None:
            runtime.report_timer.stop()
            runtime.report_timer = None

    def _send_member_report(self, context_type: str) -> None:
        runtime = self._runtimes[context_type]
        if self.groups.role(context_type) is not Role.MEMBER:
            return
        leader = self.groups.leader_of(context_type)
        label = self.groups.label(context_type)
        if leader is None or label is None:
            return
        readings = sample_readings(self.mote, runtime.definition.aggregates)
        if not readings:
            return
        payload = build_report(context_type, label, self.node_id, self.now,
                               readings)
        leader_pos = self.groups.leader_position(context_type)
        if (self.router is not None and leader_pos is not None
                and distance(self.mote.position, leader_pos)
                > self.mote.medium.communication_radius):
            # Leader beyond single-hop range: relay through the group.
            self.router.route_to_node(leader, REPORT_KIND, payload)
            return
        self.unicast(leader, REPORT_KIND, payload,
                     size_bits=runtime.definition.report_size_bits)

    # ------------------------------------------------------------------
    # GroupListener: leadership → object execution
    # ------------------------------------------------------------------
    def on_leader_start(self, context_type: str, label: str,
                        inherited_state: Optional[dict],
                        inherited_weight: int, via: str) -> None:
        runtime = self._runtimes[context_type]
        definition = runtime.definition
        runtime.store = AggregateStore(definition.aggregates, self.registry,
                                       metrics=self.sim.metrics)
        runtime.octx = ObjectContext(
            context_type=context_type, label=label, node_id=self.node_id,
            clock=lambda: self.sim.now, store=runtime.store,
            send_fn=lambda values: self._send_to_base(values),
            invoke_fn=self._make_invoker(label),
            set_state_fn=lambda state: self.groups.set_persistent_state(
                context_type, state),
            get_state_fn=lambda: self.groups.persistent_state(context_type),
            record_fn=self.record, position=self.mote.position,
            lookup_fn=(self.directory.lookup
                       if self.directory is not None else None))
        runtime.when_latch = {}
        # Seed declared object data (Appendix A data declarations) into
        # this leader incarnation's locals.
        for obj in definition.objects:
            runtime.octx.locals.update(obj.initial_data())
        self._start_object_schedules(runtime)
        if definition.aggregates:
            # The leader is itself a group member; contribute local
            # readings on the same report period (no radio needed).
            period = report_period(definition.aggregates,
                                   definition.delay_estimate)
            timer = self.mote.periodic(
                period, lambda: self._leader_self_report(context_type),
                label=f"etrack.selfreport.{context_type}",
                initial_delay=0.0)
            timer.start()
            runtime.object_timers.append(timer)
        if (self.directory is not None
                and definition.directory_update_period is not None):
            self._register_directory(context_type)
            runtime.directory_timer = self.mote.periodic(
                definition.directory_update_period,
                lambda: self._register_directory(context_type),
                label=f"etrack.dir.{context_type}")
            runtime.directory_timer.start()

    def on_leader_stop(self, context_type: str, label: str,
                       reason: str) -> None:
        runtime = self._runtimes[context_type]
        for timer in runtime.object_timers:
            timer.stop()
        runtime.object_timers = []
        if runtime.directory_timer is not None:
            runtime.directory_timer.stop()
            runtime.directory_timer = None
        runtime.store = None
        runtime.octx = None
        runtime.when_latch = {}

    def _start_object_schedules(self, runtime: _TypeRuntime) -> None:
        for obj in runtime.definition.objects:
            for method in obj.methods:
                invocation = method.invocation
                if isinstance(invocation, TimerInvocation):
                    timer = self.mote.periodic(
                        invocation.period,
                        self._make_timer_body(runtime, method),
                        label=f"etrack.obj.{obj.name}.{method.name}")
                    timer.start()
                    runtime.object_timers.append(timer)
                elif isinstance(invocation, WhenInvocation):
                    timer = self.mote.periodic(
                        invocation.poll_period,
                        self._make_when_body(runtime, method, invocation),
                        label=f"etrack.when.{obj.name}.{method.name}")
                    timer.start()
                    runtime.object_timers.append(timer)
                # PortInvocation methods fire on MTP delivery only.

    def _make_timer_body(self, runtime: _TypeRuntime,
                         method: MethodDef) -> Callable[[], None]:
        def run() -> None:
            if runtime.octx is not None:
                self._run_method(runtime, method, (runtime.octx,))

        return run

    def _make_when_body(self, runtime: _TypeRuntime, method: MethodDef,
                        invocation: WhenInvocation) -> Callable[[], None]:
        def poll() -> None:
            octx = runtime.octx
            if octx is None:
                return
            try:
                holds = bool(invocation.predicate(octx))
            except Exception as exc:  # app predicate bug: log, don't crash
                self.record("app_error", method=method.name,
                            phase="predicate", error=repr(exc))
                return
            previous = runtime.when_latch.get(method.name, False)
            runtime.when_latch[method.name] = holds
            if holds and (not invocation.edge_triggered or not previous):
                self._run_method(runtime, method, (octx,))

        return poll

    def _make_port_handler(self, context_type: str, method: MethodDef):
        def handler(args: Dict[str, Any], src_label: str, src_port: int,
                    src_leader: int) -> None:
            runtime = self._runtimes[context_type]
            if runtime.octx is None:
                return
            self._run_method(runtime, method,
                             (runtime.octx, args, src_label, src_port))

        return handler

    def _run_method(self, runtime: _TypeRuntime, method: MethodDef,
                    args: tuple) -> None:
        try:
            method.body(*args)
        except Exception as exc:  # never let app bugs kill the middleware
            self.record("app_error", method=method.name, phase="body",
                        error=repr(exc))

    # ------------------------------------------------------------------
    # Leader-side data paths
    # ------------------------------------------------------------------
    def _leader_self_report(self, context_type: str) -> None:
        runtime = self._runtimes[context_type]
        if runtime.store is None:
            return
        readings = sample_readings(self.mote, runtime.definition.aggregates)
        if readings:
            runtime.store.add_report(self.node_id, readings, self.now)

    def _on_routed_report(self, payload: Dict[str, Any],
                          origin: int) -> None:
        self._accept_report(payload)

    def _on_report_frame(self, frame) -> None:
        self._accept_report(frame.payload)

    def _accept_report(self, raw_payload) -> None:
        payload = parse_report(raw_payload)
        if payload is None:
            return
        context_type = payload["type"]
        runtime = self._runtimes.get(context_type)
        if runtime is None or runtime.store is None:
            return
        if self.groups.label(context_type) != payload["label"]:
            return
        runtime.store.add_report(int(payload["sender"]),
                                 payload["readings"],
                                 float(payload["time"]))
        self.groups.note_member_report(context_type, payload["label"])

    # ------------------------------------------------------------------
    # Outbound paths
    # ------------------------------------------------------------------
    def _send_to_base(self, values: Dict[str, Any]) -> None:
        if self.base_station is None:
            self.record("mysend_dropped", reason="no_base_station")
            return
        message = dict(values)
        message["reported_at"] = self.now
        message["reporter"] = self.node_id
        if self.router is not None:
            self.router.route_to_node(self.base_station, APP_REPORT_KIND,
                                      message)
        else:
            self.unicast(self.base_station, APP_REPORT_KIND, message)

    def _make_invoker(self, src_label: str):
        def invoke(dest_label: str, port: int,
                   args: Dict[str, Any]) -> None:
            if self.mtp is None:
                self.record("invoke_dropped", reason="no_mtp",
                            dest=dest_label)
                return
            self.mtp.invoke(src_label, dest_label, port, args)

        return invoke

    def _register_directory(self, context_type: str) -> None:
        label = self.groups.label(context_type)
        if label is None or self.directory is None:
            return
        self.directory.register(context_type, label, self.mote.position,
                                self.node_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def runtime_of(self, context_type: str) -> _TypeRuntime:
        return self._runtimes[context_type]

    def context_types(self) -> List[str]:
        return sorted(self._runtimes)
