"""Ad hoc (random) deployments: the paper's actual deployment story.

"We consider ad hoc sensor networks, where a large number of miniature
sensor nodes are dropped randomly over an area for monitoring purposes."
The grid testbed was a lab convenience; the middleware must track over a
random scattering too.
"""

import pytest

from repro.aggregation import AggregateVarSpec
from repro.core import (ContextTypeDef, EnviroTrackApp, MethodDef,
                        TimerInvocation, TrackingObjectDef)
from repro.sensing import LineTrajectory, Target


def build_random_app(seed=51, count=90):
    app = EnviroTrackApp(seed=seed, base_loss_rate=0.05,
                         communication_radius=6.0,
                         enable_directory=False, enable_mtp=False)
    # Density ~1.5 motes per unit square keeps the sensing disk populated
    # everywhere with high probability.
    app.field.deploy_random(count, (0.0, 0.0, 12.0, 5.0))
    app.field.add_target(Target(
        "intruder", "vehicle", LineTrajectory((0.0, 2.5), 0.1),
        signature_radius=1.2))
    app.field.install_detection_sensors("seen", kinds=["vehicle"])

    def report(ctx):
        location = ctx.read("location")
        if location.valid:
            ctx.my_send({"location": location.value})

    app.add_context_type(ContextTypeDef(
        name="tracker", activation="seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=2, freshness=1.0)],
        objects=[TrackingObjectDef("r", [
            MethodDef("report", TimerInvocation(4.0), report)])]))
    base = app.place_base_station((-1.0, -2.0))
    return app, base


def test_tracking_over_random_scattering():
    app, base = build_random_app()
    app.run(until=120.0)
    assert base.reports, "no reports from the ad hoc deployment"
    labels = base.labels_seen()
    # Random density can cause a brief duplicate; the dominant label must
    # carry the bulk of the track.
    dominant = max(labels, key=lambda l: len(base.track(l)))
    track = base.track(dominant)
    assert len(track) >= 8
    xs = [pos[0] for _, pos in track]
    assert xs[-1] - xs[0] > 6.0
    for t, (x, y) in track:
        assert abs(y - 2.5) < 1.5
        assert abs(x - 0.1 * t) < 1.5


def test_pursuer_velocity_estimate():
    app, base = build_random_app(seed=52)
    app.run(until=120.0)
    dominant = max(base.labels_seen(),
                   key=lambda label: len(base.track(label)))
    velocity = base.estimate_velocity(dominant, window=8)
    assert velocity is not None
    vx, vy = velocity
    # True velocity is (0.1, 0.0) grid/s.
    assert vx == pytest.approx(0.1, abs=0.05)
    assert vy == pytest.approx(0.0, abs=0.05)


def test_velocity_estimate_needs_two_fixes():
    app, base = build_random_app(seed=53)
    assert base.estimate_velocity("never-seen") is None
