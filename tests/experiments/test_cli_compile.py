"""Tests for the CLI 'compile' subcommand."""

from repro.cli import main

GOOD = """
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report() { MySend(pursuer, self:label, location); }
    end
end context
"""

BAD = "begin context oops activation f( end context"


def run(args):
    lines = []
    code = main(args, out=lines.append)
    return code, "\n".join(lines)


def test_compile_valid_program(tmp_path):
    path = tmp_path / "prog.et"
    path.write_text(GOOD)
    code, output = run(["compile", str(path)])
    assert code == 0
    assert "begin context tracker" in output
    assert "[ok: 1 context type(s): tracker]" in output


def test_compile_reports_syntax_errors(tmp_path):
    path = tmp_path / "bad.et"
    path.write_text(BAD)
    code, output = run(["compile", str(path)])
    assert code == 1
    assert "bad.et" in output


def test_compile_missing_file():
    code, output = run(["compile", "/no/such/file.et"])
    assert code == 2


def test_compile_requires_argument():
    code, output = run(["compile"])
    assert code == 2
    assert "missing" in output
