"""Target trajectories.

All trajectories are pure functions of simulation time, so positions are
reproducible and targets never need their own events: whoever samples a
sensor evaluates the trajectory at the current clock.

Distances are in grid units (1 unit = the paper's 140 m inter-mote hop) and
speeds in grid hops per second — the paper's T-72 case study moves at
0.1 hop/s (10 s/hop ≙ 50 km/hr at the 1000:1 scale).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

Position = Tuple[float, float]


class Trajectory:
    """Base: a position-valued function of time."""

    def position(self, t: float) -> Position:
        raise NotImplementedError

    def speed_at(self, t: float, dt: float = 1e-3) -> float:
        """Numerical instantaneous speed (grid units / second)."""
        x0, y0 = self.position(max(0.0, t - dt))
        x1, y1 = self.position(t + dt)
        span = (t + dt) - max(0.0, t - dt)
        if span <= 0:
            return 0.0
        return math.hypot(x1 - x0, y1 - y0) / span


class StaticPoint(Trajectory):
    """A non-moving target (e.g. a fire's ignition point)."""

    def __init__(self, point: Position) -> None:
        self.point = point

    def position(self, t: float) -> Position:
        return self.point


class LineTrajectory(Trajectory):
    """Constant-velocity straight line — the Figure 3 tank run.

    Parameters
    ----------
    start:
        Position at ``t = 0``.
    speed:
        Grid hops per second.
    heading:
        Radians; 0 points along +x (the paper's run crosses the grid at
        constant ``y = 0.5``).
    """

    def __init__(self, start: Position, speed: float,
                 heading: float = 0.0) -> None:
        if speed < 0:
            raise ValueError(f"speed must be >= 0: {speed}")
        self.start = start
        self.speed = speed
        self.heading = heading

    def position(self, t: float) -> Position:
        return (self.start[0] + self.speed * t * math.cos(self.heading),
                self.start[1] + self.speed * t * math.sin(self.heading))


class WaypointTrajectory(Trajectory):
    """Piecewise-linear motion through waypoints at constant speed.

    The target stops at the final waypoint.
    """

    def __init__(self, waypoints: Sequence[Position], speed: float) -> None:
        if len(waypoints) < 1:
            raise ValueError("need at least one waypoint")
        if speed <= 0:
            raise ValueError(f"speed must be > 0: {speed}")
        self.waypoints: List[Position] = list(waypoints)
        self.speed = speed
        self._arrivals = [0.0]
        for prev, cur in zip(self.waypoints, self.waypoints[1:]):
            leg = math.hypot(cur[0] - prev[0], cur[1] - prev[1])
            self._arrivals.append(self._arrivals[-1] + leg / speed)

    @property
    def total_time(self) -> float:
        """Time at which the final waypoint is reached."""
        return self._arrivals[-1]

    def position(self, t: float) -> Position:
        if t <= 0:
            return self.waypoints[0]
        if t >= self._arrivals[-1]:
            return self.waypoints[-1]
        for i in range(1, len(self._arrivals)):
            if t <= self._arrivals[i]:
                t0, t1 = self._arrivals[i - 1], self._arrivals[i]
                frac = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
                x0, y0 = self.waypoints[i - 1]
                x1, y1 = self.waypoints[i]
                return (x0 + frac * (x1 - x0), y0 + frac * (y1 - y0))
        return self.waypoints[-1]


class RandomWalkTrajectory(Trajectory):
    """A seeded random walk inside a bounding box.

    Precomputes waypoints so the trajectory stays a pure function of time.
    """

    def __init__(self, start: Position, speed: float,
                 bounds: Tuple[float, float, float, float],
                 step_length: float = 2.0, steps: int = 256,
                 seed: int = 0) -> None:
        import random as _random
        rng = _random.Random(seed)
        x_lo, y_lo, x_hi, y_hi = bounds
        if x_lo >= x_hi or y_lo >= y_hi:
            raise ValueError(f"degenerate bounds: {bounds}")
        points: List[Position] = [start]
        x, y = start
        for _ in range(steps):
            angle = rng.uniform(0, 2 * math.pi)
            x = min(max(x + step_length * math.cos(angle), x_lo), x_hi)
            y = min(max(y + step_length * math.sin(angle), y_lo), y_hi)
            points.append((x, y))
        self._inner = WaypointTrajectory(points, speed)

    def position(self, t: float) -> Position:
        return self._inner.position(t)

    @property
    def total_time(self) -> float:
        return self._inner.total_time
