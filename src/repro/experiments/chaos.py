"""The ``chaos`` experiment: recovery latency under injected leader crashes.

The paper's robustness story (§5.2/§6.2) is qualitative: receive timers
at 2.1× the heartbeat period recover leadership after "the current
leader fails".  This experiment makes it quantitative.  A line of motes
tracks one stationary stimulus; a :class:`~repro.faults.FaultPlan`
repeatedly kills whichever mote currently leads (power-cycling the
victim after half a crash period so the population does not shrink), and
:func:`~repro.metrics.recovery.analyze_recovery` measures, per crash:

* takeover latency (crash → stable unique live leader on the same label),
* label continuity (the crashed label still served at window end),
* duplicate-leader time (two live leaders of one label).

The sweep crosses heartbeat period × crash period; the §5.2 design bound
``2.1 × heartbeat_period + takeover slack`` is reported next to the
observed latencies, so any protocol regression shows up as a bound
violation rather than a vague slowdown.

Members send lightweight periodic report frames (the role the EnviroTrack
middleware's member reports play) so established labels gain weight and
out-compete labels minted by rebooted creators — without reports every
weight tie would resolve lexicographically, which no deployed system
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import FaultInjector, leader_crash_schedule
from ..groups import GroupConfig, GroupManager, Role
from ..metrics import RecoveryReport, analyze_recovery
from ..metrics.recovery import CrashRecovery
from ..node import Component
from ..radio import reset_frame_ids
from ..sensing import SensorField
from ..sim import Simulator, dump_trace
from .runner import parallel_map

CONTEXT_TYPE = "chaos"
REPORT_KIND = "chaos.report"

#: Scheduling slack on top of the receive timeout: takeover probe rounds
#: (≤ 2 × claim_window), duplicate resolution by defence/yield, CPU task
#: service.  Keep in sync with GroupConfig defaults.
TAKEOVER_SLACK = 0.5


class MemberReporter(Component):
    """Minimal member→leader reporting loop (weight feeder).

    Each mote periodically broadcasts a report naming its current label
    while it is a member; the leader that hears a matching report bumps
    the label's weight via ``note_member_report`` — exactly the paper's
    "number of messages received by the leader from members to date".
    """

    name = "chaosapp"

    def __init__(self, mote, manager: GroupManager, period: float,
                 context_type: str = CONTEXT_TYPE,
                 kind: str = REPORT_KIND) -> None:
        super().__init__(mote)
        self.manager = manager
        self.period = period
        self.context_type = context_type
        self.kind = kind

    def on_start(self) -> None:
        self.handle(self.kind, self._on_report)
        timer = self.mote.periodic(
            self.period, self._tick, label="chaos.report",
            initial_delay=self.sim.rng.stream("chaos.report").uniform(
                0, self.period))
        timer.start()

    def _tick(self) -> None:
        label = self.manager.label(self.context_type)
        if label is None \
                or self.manager.role(self.context_type) is not Role.MEMBER:
            return
        self.broadcast(self.kind, {"type": self.context_type,
                                   "label": label,
                                   "sender": self.node_id})

    def _on_report(self, frame) -> None:
        label = frame.payload.get("label")
        if isinstance(label, str):
            self.manager.note_member_report(self.context_type, label)


@dataclass(frozen=True)
class ChaosPoint:
    """One (heartbeat period, crash period) cell of the sweep."""

    heartbeat_period: float
    crash_period: float
    runs: int
    report: RecoveryReport

    @property
    def latency_bound(self) -> float:
        """§5.2 design bound: receive timeout + takeover slack."""
        return 2.1 * self.heartbeat_period + TAKEOVER_SLACK

    @property
    def within_bound_rate(self) -> Optional[float]:
        latencies = self.report.latencies()
        if not latencies:
            return None
        bound = self.latency_bound
        return sum(1 for value in latencies if value <= bound) \
            / len(latencies)


@dataclass(frozen=True)
class ChaosResult:
    """Recovery-latency sweep over heartbeat period × crash period."""

    points: List[ChaosPoint]

    def point(self, heartbeat_period: float,
              crash_period: float) -> ChaosPoint:
        for candidate in self.points:
            if (candidate.heartbeat_period == heartbeat_period
                    and candidate.crash_period == crash_period):
                return candidate
        raise KeyError((heartbeat_period, crash_period))

    def series(self, crash_period: float) -> List[Tuple[float, float]]:
        """(heartbeat period, mean takeover latency) for one crash rate."""
        pairs = [(p.heartbeat_period, p.report.mean_latency)
                 for p in self.points if p.crash_period == crash_period
                 and p.report.mean_latency is not None]
        return sorted(pairs)

    def crash_periods(self) -> List[float]:
        return sorted({p.crash_period for p in self.points})

    def heartbeat_periods(self) -> List[float]:
        return sorted({p.heartbeat_period for p in self.points})

    def format_table(self) -> str:
        lines = ["Chaos — leader-crash recovery latency "
                 "(bound = 2.1 x HB period + takeover slack)",
                 f"{'HB (s)':>7} {'crash every':>12} {'crashes':>8} "
                 f"{'recovered':>10} {'mean lat':>9} {'p95 lat':>8} "
                 f"{'bound':>6} {'<bound':>7} {'continuity':>11} "
                 f"{'dup time':>9}"]
        for point in sorted(self.points,
                            key=lambda p: (p.heartbeat_period,
                                           p.crash_period)):
            report = point.report
            mean = report.mean_latency
            p95 = report.p95_latency
            within = point.within_bound_rate
            continuity = report.continuity_rate
            lines.append(
                f"{point.heartbeat_period:7.2f} "
                f"{point.crash_period:10.1f}s "
                f"{report.crash_count:8d} "
                f"{report.recovered_count:10d} "
                f"{(f'{mean:8.3f}s' if mean is not None else '     n/a')} "
                f"{(f'{p95:7.3f}s' if p95 is not None else '    n/a')} "
                f"{point.latency_bound:5.2f}s "
                f"{(f'{100 * within:5.0f}%' if within is not None else '   n/a'):>7} "
                f"{(f'{100 * continuity:9.0f}%' if continuity is not None else '      n/a'):>11} "
                f"{report.total_duplicate_time:8.3f}s")
        return "\n".join(lines)


def _chaos_run(seed: int, heartbeat_period: float, crash_period: float,
               crashes: int, base_loss_rate: float,
               mote_count: int, sensing_count: int,
               trace_out: Optional[str] = None,
               telemetry: bool = True,
               scheduler: str = "lazy") -> RecoveryReport:
    """One chaos run: build the line deployment, arm the plan, measure."""
    # Frame ids restart per run so traces depend only on this run's
    # parameters — not on prior runs or on which sweep worker ran it.
    reset_frame_ids()
    sim = Simulator(seed=seed, telemetry=telemetry, scheduler=scheduler)
    field = SensorField(sim, communication_radius=10.0,
                        base_loss_rate=base_loss_rate)
    sensing_ids = set(range(sensing_count))
    managers: Dict[int, GroupManager] = {}
    for i in range(mote_count):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track(CONTEXT_TYPE,
                      lambda m: m.node_id in sensing_ids,
                      GroupConfig(heartbeat_period=heartbeat_period,
                                  suppression_range=None))
        manager.start()
        reporter = MemberReporter(mote, manager,
                                  period=2.0 * heartbeat_period)
        reporter.start()
        managers[i] = manager
    # Warm up long enough for a leader to be elected and gain weight.
    start = 2.0 + 4.0 * heartbeat_period
    injector = FaultInjector(sim, field, managers=managers)
    injector.arm(leader_crash_schedule(
        CONTEXT_TYPE, start=start, period=crash_period, count=crashes,
        reboot_after=crash_period / 2.0))
    sim.run(until=start + crashes * crash_period)
    if trace_out:
        dump_trace(sim, trace_out)
    return analyze_recovery(sim, CONTEXT_TYPE,
                            stability=0.5 * heartbeat_period)


def _chaos_task(task: Tuple[int, float, float, int, float, int, int]
                ) -> RecoveryReport:
    """Worker entry point: one (seed, cell-parameters) chaos run."""
    (seed, heartbeat_period, crash_period, crashes, base_loss_rate,
     mote_count, sensing_count) = task
    return _chaos_run(seed, heartbeat_period, crash_period, crashes,
                      base_loss_rate, mote_count, sensing_count)


def chaos(heartbeat_periods: Optional[Sequence[float]] = None,
          crash_periods: Optional[Sequence[float]] = None,
          repetitions: int = 3, crashes_per_run: int = 4,
          base_loss_rate: float = 0.1, mote_count: int = 10,
          sensing_count: int = 4, seed_base: int = 70,
          quick: bool = False, jobs: int = 1,
          trace_out: Optional[str] = None) -> ChaosResult:
    """Sweep crash rate × heartbeat period; aggregate recovery stats.

    Each sweep cell merges the per-crash measurements of ``repetitions``
    independent runs into one :class:`RecoveryReport`.  ``jobs`` fans the
    individual runs out worker-per-seed; seeds depend only on the cell
    index and repetition, so parallel results equal serial ones.
    ``trace_out`` writes the first run's trace as JSONL (deterministic
    serial rerun; frame ids reset per run, so it matches the sweep's).
    """
    if heartbeat_periods is None:
        heartbeat_periods = (0.25, 0.5) if quick else (0.25, 0.5, 1.0)
    if crash_periods is None:
        crash_periods = (4.0,) if quick else (4.0, 8.0)
    if quick:
        repetitions = 1
        crashes_per_run = min(crashes_per_run, 3)
    cells = [(heartbeat_period, crash_period)
             for heartbeat_period in heartbeat_periods
             for crash_period in crash_periods]
    tasks = [(seed_base + 1000 * cell_index + rep, heartbeat_period,
              crash_period, crashes_per_run, base_loss_rate, mote_count,
              sensing_count)
             for cell_index, (heartbeat_period, crash_period)
             in enumerate(cells)
             for rep in range(repetitions)]
    reports = parallel_map(_chaos_task, tasks, jobs=jobs)
    if trace_out:
        _chaos_run(*tasks[0], trace_out=trace_out)
    points: List[ChaosPoint] = []
    for cell_index, (heartbeat_period, crash_period) in enumerate(cells):
        merged: List[CrashRecovery] = []
        for report in reports[cell_index * repetitions:
                              (cell_index + 1) * repetitions]:
            merged.extend(report.crashes)
        points.append(ChaosPoint(
            heartbeat_period=heartbeat_period,
            crash_period=crash_period, runs=repetitions,
            report=RecoveryReport(context_type=CONTEXT_TYPE,
                                  crashes=tuple(merged))))
    return ChaosResult(points=points)
