"""Telemetry must be pure side-state: digests match with it on or off.

These runs double as the acceptance check for the observability
subsystem — the metrics registry, span tracker and (disabled or enabled)
profiler may never draw randomness, schedule events or write trace
records, so each scenario family is run both ways and compared by
``trace_digest``.
"""

from dataclasses import replace

import pytest

from repro.experiments import TankScenario, run_tank_scenario
from repro.sim import Simulator, trace_digest


QUICK = TankScenario(columns=6, rows=2, seed=11)


def scenario_digest(**overrides):
    scenario = replace(QUICK, **overrides)
    run = run_tank_scenario(scenario)
    return trace_digest(run.app.sim)


class TestDigestEquivalence:
    def test_tracking_scenario(self):
        assert scenario_digest(telemetry=True) == \
            scenario_digest(telemetry=False)

    def test_tracking_scenario_with_directory_and_mtp(self):
        kwargs = dict(enable_directory=True, enable_mtp=True)
        assert scenario_digest(telemetry=True, **kwargs) == \
            scenario_digest(telemetry=False, **kwargs)

    def test_leader_kill_scenario(self):
        kwargs = dict(leader_kill_times=(1.0,))
        assert scenario_digest(telemetry=True, **kwargs) == \
            scenario_digest(telemetry=False, **kwargs)

    def test_profiler_enabled_matches_too(self):
        from repro.experiments.scenarios import build_app
        from repro.radio import reset_frame_ids

        def run(profiled):
            reset_frame_ids()
            app = build_app(QUICK)
            if profiled:
                app.sim.enable_profiler()
            app.install()
            app.run(until=QUICK.duration)
            return trace_digest(app.sim)

        assert run(profiled=False) == run(profiled=True)

    def test_metrics_populate_only_when_enabled(self):
        on = run_tank_scenario(replace(QUICK, telemetry=True)).app.sim
        off = run_tank_scenario(replace(QUICK, telemetry=False)).app.sim
        assert on.metrics.get("repro_trace_records_total").total() == \
            len(on.trace)
        assert len(on.spans) > 0
        assert off.metrics.names() == []
        assert len(off.spans) == 0


class TestChaosEquivalence:
    def test_chaos_run_digest(self, tmp_path):
        from repro.experiments.chaos import _chaos_run
        from repro.sim import load_trace

        paths = {}
        for mode in (True, False):
            path = tmp_path / f"chaos-{mode}.jsonl"
            _chaos_run(3, 0.25, 2.0, 1, 0.05, 8, 3,
                       trace_out=str(path), telemetry=mode)
            paths[mode] = path
        assert trace_digest(load_trace(str(paths[True]))) == \
            trace_digest(load_trace(str(paths[False])))


class TestEngineLevelEquivalence:
    def test_rng_streams_untouched_by_telemetry(self):
        def draws(telemetry):
            sim = Simulator(seed=42, telemetry=telemetry)
            out = []
            sim.schedule(1.0, lambda: out.append(
                sim.rng.stream("medium").random()))
            sim.schedule(2.0, lambda: out.append(
                sim.rng.stream("mac").random()))
            sim.run()
            return out

        assert draws(True) == pytest.approx(draws(False))
