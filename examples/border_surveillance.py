#!/usr/bin/env python
"""Border surveillance: size a deployment physically, then simulate it.

Reproduces the paper's §6.1 reasoning end to end:

1. from the target's ferrous mass, derive its magnetic detection range
   (cube-law scaling from a reference traffic sensor);
2. from the detection range, derive the widest grid spacing that still
   guarantees coverage, and the mote count for a 70 km × 5 km border;
3. simulate a 2 km section of that border at the derived scale (1 grid
   unit = one spacing) with the Figure 2 tracker and verify the tank
   cannot cross unseen.

Run:
    python examples/border_surveillance.py
"""

from repro import (AggregateVarSpec, ContextTypeDef, EnviroTrackApp,
                   LineTrajectory, MethodDef, Target, TimerInvocation,
                   TrackingObjectDef)
from repro.experiments import paper_case_study


def main() -> None:
    plan = paper_case_study()
    print("deployment plan (paper §6.1):")
    print(" ", plan.summary())

    # Simulate a ~2 km section: 15 columns at 140 m spacing.
    columns, rows = 15, 3
    print(f"\nsimulating a {columns * plan.grid_spacing_m / 1000:.1f} km "
          f"section ({columns}x{rows} motes) ...")

    app = EnviroTrackApp(seed=42, base_loss_rate=0.05)
    app.field.deploy_grid(columns, rows)
    # Detection radius in grid units = detection range / spacing.
    signature = plan.detection_range_m / plan.grid_spacing_m
    app.field.add_target(Target(
        "t72", "vehicle",
        LineTrajectory((0.0, 1.0), speed=plan.hops_per_second),
        signature_radius=signature))
    app.field.install_detection_sensors("tank_seen", kinds=["vehicle"])

    def report(ctx):
        location = ctx.read("location")
        if location.valid:
            ctx.my_send({"location": location.value})

    app.add_context_type(ContextTypeDef(
        name="tracker", activation="tank_seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=2, freshness=1.0)],
        objects=[TrackingObjectDef("reporter", [
            MethodDef("report", TimerInvocation(5.0), report)])]))
    base = app.place_base_station((-1.0, -2.0))

    crossing_time = (columns + 2) / plan.hops_per_second
    app.run(until=crossing_time)

    labels = base.labels_seen()
    print(f"\ntank tracked under {len(labels)} context label(s); "
          f"{len(base.reports)} position reports:")
    for t, (x, y) in base.track(labels[0])[:8]:
        meters = x * plan.grid_spacing_m
        print(f"  t={t:6.1f}s  x={meters:7.0f} m  (grid {x:5.2f}, "
              f"{y:4.2f})")
    assert len(labels) == 1, "coherence violated"
    print("\ncontext label coherent across the whole section — the "
          "border cannot be crossed unseen at this spacing.")


if __name__ == "__main__":
    main()
