"""The lazy scheduler must be trace-equivalent to cancel-and-reschedule.

Random programs of schedules, cancellations, watchdog kicks and periodic
stop/starts are run under both ``Simulator(scheduler="lazy")`` and
``Simulator(scheduler="heap")``; fire order, trace digest and the
events-fired count must match exactly.  A separate property pins the
lazy scheduler's raison d'être: the heap stays bounded by the number of
*live* timers under sustained watchdog churn, instead of growing with
the kick count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (OneShotTimer, PeriodicTimer, Simulator,
                       WatchdogTimer, trace_digest)

# One program step: advance a little, then apply one action to one of the
# program's timers/events.  Both runs consume the identical step list.
steps = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=0.4,
                  allow_nan=False, allow_infinity=False),  # dt
        st.integers(min_value=0, max_value=5),             # action
        st.integers(min_value=0, max_value=7),             # target index
        st.floats(min_value=0.05, max_value=1.5,
                  allow_nan=False, allow_infinity=False),  # delay param
    ),
    min_size=1, max_size=40)

timeouts = st.lists(st.floats(min_value=0.1, max_value=1.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=3, max_size=3)


def _run_program(scheduler, program, dog_timeouts, seed):
    """Execute one generated program; return (fire log, digest, fired)."""
    sim = Simulator(seed=seed, scheduler=scheduler,
                    compact_min=4, compact_ratio=0.25)
    log = []

    def note(kind, idx):
        log.append((kind, idx, sim.now))
        sim.record("fire", kind=kind, idx=idx)

    dogs = [WatchdogTimer(sim, timeout=timeout,
                          callback=lambda i=i: note("dog", i),
                          label=f"dog{i}")
            for i, timeout in enumerate(dog_timeouts)]
    ticker = PeriodicTimer(sim, 0.3, lambda: note("tick", 0),
                           label="tick")
    shot = OneShotTimer(sim, lambda: note("shot", 0), label="shot")
    plain = []

    def apply(action, idx, param):
        if action == 0:
            plain.append(sim.schedule(param, note, "plain", len(plain),
                                      label="plain"))
        elif action == 1 and plain:
            plain[idx % len(plain)].cancel()
        elif action == 2:
            dogs[idx % len(dogs)].kick()
        elif action == 3:
            dogs[idx % len(dogs)].cancel()
        elif action == 4:
            if ticker.running and idx % 2:
                ticker.stop()
            else:
                ticker.start()
        else:
            shot.start(param)

    when = 0.0
    for dt, action, idx, param in program:
        when += dt
        sim.schedule_at(when, apply, action, idx, param)
    sim.run(until=when + 3.0)
    return log, trace_digest(sim), sim.events_fired


@given(steps, timeouts, st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=120, deadline=None)
def test_random_programs_fire_identically(program, dog_timeouts, seed):
    lazy = _run_program("lazy", program, dog_timeouts, seed)
    heap = _run_program("heap", program, dog_timeouts, seed)
    assert lazy == heap


@given(st.integers(min_value=1, max_value=30),
       st.floats(min_value=0.01, max_value=0.1,
                 allow_nan=False, allow_infinity=False))
@settings(max_examples=25, deadline=None)
def test_heap_bounded_under_sustained_watchdog_churn(dog_count, period):
    """Kicking N watchdogs forever keeps the heap O(N), not O(kicks)."""
    sim = Simulator(seed=7)
    dogs = [WatchdogTimer(sim, timeout=5.0, callback=lambda: None,
                          label=f"dog{i}")
            for i in range(dog_count)]
    peak = [0]

    def kick_all():
        for dog in dogs:
            dog.kick()
        peak[0] = max(peak[0], sim.heap_size())

    PeriodicTimer(sim, period, kick_all, label="kicker").start()
    sim.run(until=20.0)
    kicks = 20.0 / period  # ≥ 200 kick rounds
    # One entry per watchdog + the kicker itself + a little slack; in
    # particular nowhere near one entry per kick.
    bound = dog_count + 2
    assert peak[0] <= bound
    assert sim.heap_size() <= bound
    assert kicks * dog_count > 10 * bound  # the bound actually bites


def test_compaction_bounds_plain_cancel_churn():
    """Cancel-heavy plain-event load stays bounded via compaction."""
    sim = Simulator(seed=8, compact_min=32, compact_ratio=0.25)
    peak = [0]

    def churn(round_no):
        for _ in range(10):
            sim.schedule(1.0, lambda: None).cancel()
        peak[0] = max(peak[0], sim.heap_size())
        if round_no < 200:
            sim.schedule(0.01, churn, round_no + 1)

    sim.schedule(0.0, churn, 0)
    sim.run()
    assert sim.compactions > 0
    # 2000 cancelled schedules total, but the heap never held more than
    # a small multiple of the compaction floor.
    assert peak[0] <= 8 * 32
