"""Figure 4 — % successful context label handovers.

Paper: with heartbeats propagated one hop past the sensing radius, all
handovers succeed at both emulated tank speeds; with heartbeats confined
to the sensing radius, a fraction of handovers fail, and more so at the
higher speed.
"""

from conftest import QUICK, emit

from repro.experiments import figure4


def test_figure4_handover_success(benchmark):
    result = benchmark.pedantic(
        lambda: figure4(repetitions=1 if QUICK else 4, quick=QUICK),
        rounds=1, iterations=1)
    emit("Figure 4 — successful handovers", result.format_table())

    propagate_33 = result.cell(33, True).success_pct
    propagate_50 = result.cell(50, True).success_pct
    confined_33 = result.cell(33, False).success_pct
    confined_50 = result.cell(50, False).success_pct

    # Propagating past the sensing radius fixes handovers at both speeds.
    assert propagate_33 == 100.0
    assert propagate_50 == 100.0
    if not QUICK:
        # Confined heartbeats lose a visible fraction of handovers …
        assert confined_33 < 99.0
        assert confined_50 < 99.0
        # … and propagation beats confinement at both speeds.
        assert propagate_33 > confined_33
        assert propagate_50 > confined_50
