"""Unit tests for geographic hashing of type names."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.naming import FieldBounds, hash_to_coordinate


def bounds_strategy():
    coordinate = st.floats(min_value=-1000.0, max_value=1000.0,
                           allow_nan=False)
    return st.tuples(coordinate, coordinate, coordinate, coordinate) \
        .filter(lambda t: t[0] + 1e-3 < t[2] and t[1] + 1e-3 < t[3]) \
        .map(lambda t: FieldBounds(t[0], t[1], t[2], t[3]))


class TestFieldBounds:
    def test_properties(self):
        bounds = FieldBounds(0.0, 0.0, 10.0, 4.0)
        assert bounds.width == 10.0
        assert bounds.height == 4.0
        assert bounds.contains((5.0, 2.0))
        assert not bounds.contains((11.0, 2.0))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            FieldBounds(5.0, 0.0, 5.0, 4.0)

    def test_shrunk_keeps_margin(self):
        bounds = FieldBounds(0.0, 0.0, 10.0, 10.0).shrunk(1.0)
        assert bounds.x_lo == 1.0 and bounds.x_hi == 9.0

    def test_shrunk_noop_when_margin_too_large(self):
        bounds = FieldBounds(0.0, 0.0, 2.0, 2.0)
        assert bounds.shrunk(1.5) == bounds


class TestHash:
    BOUNDS = FieldBounds(0.0, 0.0, 20.0, 10.0)

    def test_deterministic(self):
        assert hash_to_coordinate("fire", self.BOUNDS) == \
            hash_to_coordinate("fire", self.BOUNDS)

    def test_always_inside_bounds(self):
        for name in ("fire", "tracker", "CAR", "x" * 100, ""):
            assert self.BOUNDS.contains(
                hash_to_coordinate(name, self.BOUNDS))

    def test_different_names_spread(self):
        points = {hash_to_coordinate(f"type-{i}", self.BOUNDS)
                  for i in range(50)}
        assert len(points) == 50

    def test_salt_rehomes(self):
        plain = hash_to_coordinate("fire", self.BOUNDS)
        salted = hash_to_coordinate("fire", self.BOUNDS, salt="v2")
        assert plain != salted


class TestHashProperties:
    """Property coverage: every (name, salt, field) stays in-field."""

    @given(name=st.text(max_size=64), salt=st.text(max_size=16),
           bounds=bounds_strategy())
    def test_hashed_coordinate_always_in_field(self, name, salt, bounds):
        assert bounds.contains(hash_to_coordinate(name, bounds, salt=salt))

    @given(name=st.text(max_size=64), bounds=bounds_strategy())
    def test_hash_is_a_pure_function(self, name, bounds):
        # Nodes hash with no coordination; any disagreement would split
        # the directory.
        assert hash_to_coordinate(name, bounds) == \
            hash_to_coordinate(name, bounds)

    @given(bounds=bounds_strategy())
    def test_shrunk_bounds_still_contain_hashes(self, bounds):
        shrunk = bounds.shrunk(min(bounds.width, bounds.height) / 4.0)
        point = hash_to_coordinate("tracker", shrunk)
        assert shrunk.contains(point)
        assert bounds.contains(point)
