"""Unit tests for the EnviroTrack language lexer."""

import pytest

from repro.lang import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


def test_keywords_vs_identifiers():
    tokens = tokenize("begin context tracker end")
    assert [(t.kind, t.text) for t in tokens[:-1]] == [
        ("keyword", "begin"), ("keyword", "context"),
        ("ident", "tracker"), ("keyword", "end")]


def test_numbers_with_time_units():
    tokens = tokenize("5s 250ms 2min 3 1.5s")
    values = [t.value for t in tokens if t.kind == "number"]
    assert values == pytest.approx([5.0, 0.25, 120.0, 3.0, 1.5])


def test_unit_not_confused_with_identifier():
    tokens = tokenize("5seconds")
    # '5' then identifier 'seconds' (no unit split), not '5s' + 'econds'.
    assert tokens[0].kind == "number" and tokens[0].value == 5.0
    assert tokens[1].kind == "ident" and tokens[1].text == "seconds"


def test_multi_char_operators_maximal_munch():
    assert texts("a <= b >= c == d != e") == \
        ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]


def test_strings():
    tokens = tokenize("'hello' \"world\"")
    assert [t.value for t in tokens if t.kind == "string"] == \
        ["hello", "world"]


def test_unterminated_string_rejected():
    with pytest.raises(LexError):
        tokenize("'oops")


def test_comments_ignored():
    source = """
    begin // a line comment
    # a hash comment
    end
    """
    assert texts(source) == ["begin", "end"]


def test_line_and_column_positions():
    tokens = tokenize("a\n  b")
    a, b = tokens[0], tokens[1]
    assert (a.line, a.column) == (1, 1)
    assert (b.line, b.column) == (2, 3)


def test_unknown_character_rejected():
    with pytest.raises(LexError) as excinfo:
        tokenize("a @ b")
    assert "line 1" in str(excinfo.value)


def test_eof_token_terminates():
    tokens = tokenize("")
    assert len(tokens) == 1 and tokens[0].kind == "eof"


def test_self_label_tokens():
    assert texts("self:label") == ["self", ":", "label"]
