"""Analysis of finished runs: Table 1, Figures 3–6 metrics."""

from .collectors import (CommunicationMetrics, communication_metrics,
                         mean_metrics)
from .handover import (HandoverStats, analyze_handovers,
                       handoff_latencies, tracking_coverage)
from .recovery import CrashRecovery, RecoveryReport, analyze_recovery
from .speed_search import (CoherenceProbe, SpeedSearchResult,
                           max_trackable_speed)
from .timeline import TimelineSample, TimelineSampler
from .tracking_error import TrajectoryComparison, compare_track

__all__ = [
    "TimelineSample",
    "TimelineSampler",
    "CoherenceProbe",
    "CommunicationMetrics",
    "CrashRecovery",
    "HandoverStats",
    "RecoveryReport",
    "SpeedSearchResult",
    "TrajectoryComparison",
    "analyze_handovers",
    "analyze_recovery",
    "handoff_latencies",
    "communication_metrics",
    "compare_track",
    "max_trackable_speed",
    "mean_metrics",
    "tracking_coverage",
]
