"""Time-series sampling of protocol state during a run.

A :class:`TimelineSampler` probes the deployment at a fixed period and
records, per sample: who leads each context type, group size (roles held
across the fleet), CPU backlog, and the target ground-truth positions.
Useful for debugging protocol dynamics ("when exactly did leadership move
ahead of the target?") and for rendering leadership timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..groups import Role
from ..sim import PeriodicTimer, Simulator


@dataclass
class TimelineSample:
    """One probe of the deployment's state."""

    time: float
    #: context type -> list of (node id, label) currently leading.
    leaders: Dict[str, List[Tuple[int, str]]]
    #: context type -> member count across the fleet.
    members: Dict[str, int]
    #: fleet-wide CPU backlog (queued tasks).
    cpu_backlog: int
    #: target name -> ground-truth position.
    targets: Dict[str, Tuple[float, float]]


class TimelineSampler:
    """Samples an :class:`EnviroTrackApp` deployment periodically.

    Create it *before* running::

        sampler = TimelineSampler(app, period=1.0)
        app.run(until=...)
        sampler.samples  # -> List[TimelineSample]
    """

    def __init__(self, app, period: float = 1.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive: {period}")
        self.app = app
        self.period = period
        self.samples: List[TimelineSample] = []
        self._timer = PeriodicTimer(app.sim, period, self._probe,
                                    label="timeline.sample",
                                    initial_delay=0.0)
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def _probe(self) -> None:
        app = self.app
        leaders: Dict[str, List[Tuple[int, str]]] = {}
        members: Dict[str, int] = {}
        for node_id, agent in app.agents.items():
            if not app.field.motes[node_id].alive:
                continue
            for type_name in agent.context_types():
                role = agent.groups.role(type_name)
                if role is Role.LEADER:
                    label = agent.groups.label(type_name) or ""
                    leaders.setdefault(type_name, []).append(
                        (node_id, label))
                elif role is Role.MEMBER:
                    members[type_name] = members.get(type_name, 0) + 1
        backlog = sum(mote.cpu.backlog
                      for mote in app.field.mote_list() if mote.alive)
        targets = {target.name: target.position(app.sim.now)
                   for target in app.field.targets
                   if target.active_at(app.sim.now)}
        self.samples.append(TimelineSample(
            time=app.sim.now, leaders=leaders, members=members,
            cpu_backlog=backlog, targets=targets))

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def leadership_spans(self, context_type: str
                         ) -> List[Tuple[int, float, float]]:
        """(leader node, from, to) spans, merged over samples."""
        spans: List[Tuple[int, float, float]] = []
        current: Optional[int] = None
        span_start = 0.0
        last_time = 0.0
        for sample in self.samples:
            entries = sample.leaders.get(context_type, [])
            node = entries[0][0] if entries else None
            if node != current:
                if current is not None:
                    spans.append((current, span_start, sample.time))
                current = node
                span_start = sample.time
            last_time = sample.time
        if current is not None:
            spans.append((current, span_start, last_time))
        return spans

    def peak_cpu_backlog(self) -> int:
        return max((s.cpu_backlog for s in self.samples), default=0)

    def group_size_series(self, context_type: str
                          ) -> List[Tuple[float, int]]:
        """(time, members+leaders) series for one context type."""
        series = []
        for sample in self.samples:
            size = (sample.members.get(context_type, 0)
                    + len(sample.leaders.get(context_type, [])))
            series.append((sample.time, size))
        return series

    def duplicate_leader_times(self, context_type: str) -> List[float]:
        """Sample times at which more than one leader existed."""
        return [sample.time for sample in self.samples
                if len(sample.leaders.get(context_type, [])) > 1]
