"""Labelled metric instruments and the registry that owns them.

Every :class:`~repro.sim.engine.Simulator` carries a
:class:`MetricsRegistry`; instrumented subsystems (radio medium, group
manager, transport, naming, aggregation, energy meters) publish counters,
gauges and histograms into it as they run.  The registry is *pure
side-state*: reading or writing a metric never draws randomness, never
schedules an event and never writes a trace record, so a run's
``trace_digest`` is byte-identical with telemetry enabled or disabled.

Instruments follow the Prometheus data model — a metric family has a
name, a help string and a fixed tuple of label names; each distinct label
value combination is a separate child series.  :meth:`MetricsRegistry.render_prometheus`
emits the standard text exposition format.

When telemetry is switched off (``Simulator(telemetry=False)``) the
simulator holds a :class:`NullRegistry` instead, whose instruments accept
every call and record nothing — instrumentation sites never need to
check a flag.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]

#: Default histogram buckets (seconds) — tuned for protocol latencies:
#: sub-heartbeat to multi-minute recovery tails.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
                   2.5, 5.0, 10.0, 30.0, 60.0)


def _check_labels(label_names: Sequence[str],
                  label_values: Sequence[str]) -> LabelValues:
    if len(label_values) != len(label_names):
        raise ValueError(
            f"expected {len(label_names)} label value(s) "
            f"{tuple(label_names)!r}, got {tuple(label_values)!r}")
    return tuple(str(value) for value in label_values)


def _format_labels(label_names: Sequence[str],
                   label_values: Sequence[str],
                   extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [f'{name}="{value}"'
             for name, value in zip(label_names, label_values)]
    pairs.extend(f'{name}="{value}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, *label_values: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        # Hot path: a previously seen key skips label validation — the
        # radio medium and trace log inc counters per frame/record.
        try:
            self._values[label_values] += amount
            return
        except KeyError:
            pass
        key = _check_labels(self.label_names, label_values)
        self._values[key] = self._values.get(key, 0.0) + amount

    def labels(self, *label_values: str) -> "_BoundCounter":
        """Bind label values once; returns an inc-only handle."""
        return _BoundCounter(self, _check_labels(self.label_names,
                                                 label_values))

    def value(self, *label_values: str) -> float:
        """Current count for the labelled series (0 when never touched)."""
        key = _check_labels(self.label_names, label_values)
        return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every labelled series."""
        return sum(self._values.values())

    def series(self) -> Dict[LabelValues, float]:
        """Snapshot of every labelled series."""
        return dict(self._values)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._values):
            labels = _format_labels(self.label_names, key)
            lines.append(
                f"{self.name}{labels} {_format_value(self._values[key])}")
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines


class _BoundCounter:
    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: LabelValues) -> None:
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._counter.inc(amount, *self._key)


class Gauge:
    """A value that can go up and down (queue depths, joules, weights)."""

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, *label_values: str) -> None:
        key = _check_labels(self.label_names, label_values)
        self._values[key] = float(value)

    def inc(self, amount: float = 1.0, *label_values: str) -> None:
        key = _check_labels(self.label_names, label_values)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, *label_values: str) -> None:
        self.inc(-amount, *label_values)

    def value(self, *label_values: str) -> float:
        key = _check_labels(self.label_names, label_values)
        return self._values.get(key, 0.0)

    def series(self) -> Dict[LabelValues, float]:
        return dict(self._values)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._values):
            labels = _format_labels(self.label_names, key)
            lines.append(
                f"{self.name}{labels} {_format_value(self._values[key])}")
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines


class Histogram:
    """Cumulative-bucket distribution (Prometheus semantics).

    Tracks per-series bucket counts, a running sum and the observation
    count; ``quantile()`` interpolates from the buckets for quick
    in-process summaries (exact enough for dashboards, not for proofs).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._bucket_counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._counts: Dict[LabelValues, int] = {}

    def observe(self, value: float, *label_values: str) -> None:
        key = _check_labels(self.label_names, label_values)
        counts = self._bucket_counts.get(key)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)  # +1: the +Inf bucket
            self._bucket_counts[key] = counts
        counts[bisect.bisect_left(self.buckets, value)] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, *label_values: str) -> int:
        key = _check_labels(self.label_names, label_values)
        return self._counts.get(key, 0)

    def sum(self, *label_values: str) -> float:
        key = _check_labels(self.label_names, label_values)
        return self._sums.get(key, 0.0)

    def mean(self, *label_values: str) -> float:
        count = self.count(*label_values)
        return self.sum(*label_values) / count if count else 0.0

    def quantile(self, q: float, *label_values: str) -> float:
        """Approximate q-quantile by linear interpolation in the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        key = _check_labels(self.label_names, label_values)
        counts = self._bucket_counts.get(key)
        total = self._counts.get(key, 0)
        if not counts or not total:
            return 0.0
        rank = q * total
        seen = 0
        lower = 0.0
        for bound, bucket_count in zip(self.buckets, counts):
            if seen + bucket_count >= rank and bucket_count:
                fraction = (rank - seen) / bucket_count
                return lower + (bound - lower) * min(max(fraction, 0.0), 1.0)
            seen += bucket_count
            lower = bound
        return self.buckets[-1]  # landed in the +Inf bucket

    def series(self) -> Dict[LabelValues, int]:
        return dict(self._counts)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._bucket_counts):
            counts = self._bucket_counts[key]
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = _format_labels(self.label_names, key,
                                        (("le", _format_value(bound)),))
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _format_labels(self.label_names, key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            plain = _format_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} "
                         f"{_format_value(self._sums[key])}")
            lines.append(f"{self.name}_count{plain} {self._counts[key]}")
        return lines


class MetricsRegistry:
    """Owns every instrument of one simulation run.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a name registers the instrument, later calls return the same
    object (and reject conflicting redefinitions), so independent
    subsystems can share a family safely.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str, help: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            self._check_existing(existing, Histogram, name, label_names)
            return existing  # type: ignore[return-value]
        metric = Histogram(name, help, label_names, buckets)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name: str, help: str,
                       label_names: Sequence[str]):
        existing = self._metrics.get(name)
        if existing is not None:
            self._check_existing(existing, cls, name, label_names)
            return existing
        metric = cls(name, help, label_names)
        self._metrics[name] = metric
        return metric

    @staticmethod
    def _check_existing(existing, cls, name: str,
                        label_names: Sequence[str]) -> None:
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}, not {cls.__name__}")
        if existing.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{existing.label_names!r}, not {tuple(label_names)!r}")

    def get(self, name: str):
        """Look up a registered instrument, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterable[str]:
        return iter(sorted(self._metrics))

    def render_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Dict[str, Mapping[LabelValues, float]]]:
        """Plain-dict dump of every series, for reports and tests."""
        out: Dict[str, Dict[str, Mapping[LabelValues, float]]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[name] = {"kind": metric.kind,  # type: ignore[dict-item]
                         "series": metric.series()}
        return out


class _NullInstrument:
    """Accepts the full Counter/Gauge/Histogram API and records nothing."""

    kind = "null"
    name = ""
    help = ""
    label_names: LabelValues = ()
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0, *label_values: str) -> None:
        pass

    def dec(self, amount: float = 1.0, *label_values: str) -> None:
        pass

    def set(self, value: float, *label_values: str) -> None:
        pass

    def observe(self, value: float, *label_values: str) -> None:
        pass

    def labels(self, *label_values: str) -> "_NullInstrument":
        return self

    def value(self, *label_values: str) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, *label_values: str) -> int:
        return 0

    def sum(self, *label_values: str) -> float:
        return 0.0

    def mean(self, *label_values: str) -> float:
        return 0.0

    def quantile(self, q: float, *label_values: str) -> float:
        return 0.0

    def series(self) -> dict:
        return {}

    def render(self) -> List[str]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Drop-in registry used when telemetry is disabled.

    Every factory returns the shared no-op instrument, so instrumented
    code pays one dict-free method call and nothing else.
    """

    enabled = False

    def counter(self, name: str, help: str = "",
                label_names: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              label_names: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def __contains__(self, name: str) -> bool:
        return False

    def __iter__(self) -> Iterable[str]:
        return iter(())

    def render_prometheus(self) -> str:
        return ""

    def snapshot(self) -> dict:
        return {}
