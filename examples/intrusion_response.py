#!/usr/bin/env python
"""Intrusion response: tracking objects talking to each other over MTP.

Two context types cooperate, discovering each other entirely at run time:

* ``intruder`` — attached to anything moving through the field; when its
  position is confirmed, it asks the directory service "where are all the
  gates?" (§5.3) and *invokes a method on each* over MTP (§5.4 remote
  method invocation): "intruder at (x, y), close up".
* ``gate`` — a stationary asset (its activation condition is a beacon
  sensor on the gate motes).  Its port-invoked method runs on the gate's
  group leader and records the warning.

This is the paper's object-to-object communication path end to end:
directory lookup on first contact, geographic routing, last-known-leader
tables, port dispatch on the destination leader — with zero label
plumbing in the application.

Run:
    python examples/intrusion_response.py
"""

from repro import (AggregateVarSpec, ContextTypeDef, EnviroTrackApp,
                   LineTrajectory, MethodDef, PortInvocation, StaticPoint,
                   Target, TimerInvocation, TrackingObjectDef)

WARN_PORT = 4


def make_intruder_context():
    def warn_gates(ctx):
        location = ctx.read("position_avg")
        if not location.valid:
            return

        def found_gates(entries, _at=location.value):
            for entry in entries:
                ctx.invoke(entry.label, WARN_PORT,
                           {"x": _at[0], "y": _at[1]})
            if entries:
                ctx.log("warned_gates", count=len(entries), at=_at)

        ctx.lookup("gate", found_gates)

    return ContextTypeDef(
        name="intruder",
        activation="intruder_seen",
        aggregates=[AggregateVarSpec("position_avg", "avg", "position",
                                     confidence=2, freshness=1.0)],
        objects=[TrackingObjectDef("warner", [
            MethodDef("warn", TimerInvocation(4.0), warn_gates)])],
        directory_update_period=5.0)


def make_gate_context(warnings):
    def on_warning(ctx, args, src_label, src_port):
        warnings.append((ctx.now, ctx.label, src_label,
                         (args.get("x"), args.get("y"))))
        ctx.log("gate_warned", intruder=src_label)

    return ContextTypeDef(
        name="gate",
        activation="gate_beacon",
        aggregates=[AggregateVarSpec("gate_pos", "avg", "position",
                                     confidence=1, freshness=5.0)],
        objects=[TrackingObjectDef("controller", [
            MethodDef("on_warning", PortInvocation(WARN_PORT),
                      on_warning)])],
        directory_update_period=5.0)


def main() -> None:
    app = EnviroTrackApp(seed=5, base_loss_rate=0.03)
    app.field.deploy_grid(12, 8)

    # The gate: a stationary beacon near the east edge.
    app.field.add_target(Target(
        "gate-1", "gate", StaticPoint((10.0, 4.0)),
        signature_radius=1.2))
    # The intruder: crossing the field toward the gate.
    app.field.add_target(Target(
        "walker", "intruder", LineTrajectory((0.0, 3.5), speed=0.12),
        signature_radius=1.0))
    app.field.install_detection_sensors("intruder_seen",
                                        kinds=["intruder"])
    app.field.install_detection_sensors("gate_beacon", kinds=["gate"])

    warnings = []
    app.add_context_type(make_intruder_context())
    app.add_context_type(make_gate_context(warnings))
    app.run(until=100.0)

    print(f"gate received {len(warnings)} intruder warnings:")
    for t, gate_label, intruder_label, (x, y) in warnings[:10]:
        print(f"  t={t:5.1f}s  {intruder_label} reported at "
              f"({x:5.2f}, {y:5.2f})")
    if warnings:
        mtp_delivered = sum(agent.delivered
                            for agent in app.mtp_agents.values())
        mtp_forwarded = sum(agent.forwarded
                            for agent in app.mtp_agents.values())
        print(f"\nMTP stats: {mtp_delivered} delivered, "
              f"{mtp_forwarded} forwarded along past-leader chains")


if __name__ == "__main__":
    main()
