"""Table 1 — communication performance data.

Paper rows (33 / 50 km/hr): HB loss 7.08 / 22.69 %, Msg loss 3.05 /
17.05 %, Link util 2.54 / 2.88 %.  The conclusions the table supports:

1. the system operates correctly in the presence of message loss;
2. loss comes from medium unreliability, not from link utilization;
3. communication needs are a tiny fraction of the 50 kbps capacity;
4. utilization grows only slightly with tank speed.

We assert those four properties (absolute numbers differ — our channel
model injects Bernoulli loss instead of real-radio fading; see
EXPERIMENTS.md for the deviation discussion).
"""

from conftest import QUICK, emit

from repro.experiments import table1


def test_table1_communication_performance(benchmark):
    result = benchmark.pedantic(
        lambda: table1(repetitions=1 if QUICK else 3, quick=QUICK),
        rounds=1, iterations=1)
    emit("Table 1 — communication performance", result.format_table())

    row_33 = result.row(33)
    row_50 = result.row(50)

    # (1) Correct operation despite loss: runs stay coherent while both
    # loss figures are nonzero.
    assert row_33.coherent_runs == row_33.runs
    assert row_50.coherent_runs == row_50.runs
    assert row_33.metrics.heartbeat_loss_pct > 0
    assert row_50.metrics.report_loss_pct > 0

    # (3) Tiny fraction of the 50 kbps capacity (paper ≈ 2.5–2.9%).
    assert row_33.metrics.link_utilization_pct < 10.0
    assert row_50.metrics.link_utilization_pct < 10.0

    # (2) Loss is not utilization-driven: utilization is far from
    # saturation while loss is visible.
    assert row_50.metrics.link_utilization_pct < 50.0

    # (4) Utilization roughly flat with speed (within 2 percentage points).
    delta = abs(row_50.metrics.link_utilization_pct
                - row_33.metrics.link_utilization_pct)
    assert delta < 2.0
