"""Unit tests for the ObjectContext runtime facade."""

import pytest

from repro.aggregation import (AggregateStore, AggregateVarSpec,
                               default_registry)
from repro.core.runtime import ObjectContext


def make_ctx(specs=None, now=5.0):
    specs = specs or [AggregateVarSpec("location", "avg", "position",
                                       confidence=2, freshness=1.0)]
    store = AggregateStore(specs, default_registry())
    sent = []
    invoked = []
    state = {"value": None}
    records = []
    ctx = ObjectContext(
        context_type="tracker", label="tracker#4.2", node_id=4,
        clock=lambda: now, store=store,
        send_fn=sent.append,
        invoke_fn=lambda label, port, args: invoked.append(
            (label, port, args)),
        set_state_fn=lambda s: state.update(value=s),
        get_state_fn=lambda: state["value"],
        record_fn=lambda category, **detail: records.append(
            (category, detail)),
        position=(1.0, 2.0))
    return ctx, store, sent, invoked, state, records


def test_label_and_identity():
    ctx, *_ = make_ctx()
    assert ctx.label == "tracker#4.2"
    assert ctx.context_type == "tracker"
    assert ctx.node_id == 4
    assert ctx.now == 5.0
    assert ctx.position == (1.0, 2.0)


def test_read_null_and_valid():
    ctx, store, *_ = make_ctx()
    assert not ctx.valid("location")
    assert ctx.value("location", default="none") == "none"
    store.add_report(1, {"location": (0.0, 0.0)}, 4.5)
    store.add_report(2, {"location": (2.0, 2.0)}, 4.6)
    assert ctx.valid("location")
    assert ctx.value("location") == pytest.approx((1.0, 1.0))
    result = ctx.read("location")
    assert result.contributors == 2


def test_my_send_attaches_label_and_type():
    ctx, _, sent, *_ = make_ctx()
    ctx.my_send({"location": (1.0, 1.0), "speed": 3})
    assert sent == [{"location": (1.0, 1.0), "speed": 3,
                     "label": "tracker#4.2", "context_type": "tracker"}]


def test_invoke_passthrough():
    ctx, _, _, invoked, _, _ = make_ctx()
    ctx.invoke("fire#1.1", 3, {"x": 1})
    ctx.invoke("fire#1.1", 4)
    assert invoked == [("fire#1.1", 3, {"x": 1}), ("fire#1.1", 4, {})]


def test_persistent_state_round_trip():
    ctx, _, _, _, state, _ = make_ctx()
    assert ctx.state is None
    ctx.set_state({"count": 7})
    assert state["value"] == {"count": 7}
    assert ctx.state == {"count": 7}


def test_locals_scratchpad():
    ctx, *_ = make_ctx()
    ctx.locals["x"] = 42
    assert ctx.locals["x"] == 42


def test_log_prefixes_app_and_label():
    ctx, *_, records = make_ctx()
    ctx.log("alarm", level=3)
    assert records == [("app.alarm", {"label": "tracker#4.2", "level": 3})]


def test_aggregate_names():
    ctx, *_ = make_ctx()
    assert ctx.aggregate_names() == ["location"]
