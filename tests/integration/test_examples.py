"""Every shipped example must run to completion — examples never rot."""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

EXAMPLES = [
    "quickstart.py",
    "figure2_dsl.py",
    "fire_monitoring.py",
    "multi_vehicle_pursuit.py",
    "intrusion_response.py",
    "border_surveillance.py",
]


def run_example(filename):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, filename))
    spec = importlib.util.spec_from_file_location(
        f"example_{filename[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    output = io.StringIO()
    with redirect_stdout(output):
        spec.loader.exec_module(module)
        module.main()
    return output.getvalue()


@pytest.mark.parametrize("filename", EXAMPLES)
def test_example_runs(filename):
    output = run_example(filename)
    assert output.strip(), f"{filename} produced no output"


def test_quickstart_reports_a_track():
    output = run_example("quickstart.py")
    assert "tracked=" in output
    assert "tracker#" in output


def test_border_surveillance_reproduces_case_study_numbers():
    output = run_example("border_surveillance.py")
    assert "140 m" in output
    assert "coherent" in output
