"""Tracking objects resolving other labels via ctx.lookup (§5.3 + §5.4)."""

from repro.aggregation import AggregateVarSpec
from repro.core import (ContextTypeDef, EnviroTrackApp, MethodDef,
                        PortInvocation, TimerInvocation, TrackingObjectDef)
from repro.sensing import LineTrajectory, StaticPoint, Target


def test_object_discovers_and_invokes_peer_via_directory():
    """A tracker looks up 'gate' labels through the directory at run time
    and invokes a method on the one it finds — no label plumbing in the
    application at all."""
    received = []

    def on_warning(ctx, args, src_label, src_port):
        received.append((ctx.label, src_label, args))

    gate = ContextTypeDef(
        name="gate", activation="gate_seen",
        aggregates=[AggregateVarSpec("pos", "avg", "position",
                                     confidence=1, freshness=5.0)],
        objects=[TrackingObjectDef("ctrl", [
            MethodDef("on_warning", PortInvocation(2), on_warning)])],
        directory_update_period=5.0)

    def warn(ctx):
        location = ctx.read("location")
        if not location.valid:
            return

        def got_entries(entries, _location=location.value):
            for entry in entries:
                ctx.invoke(entry.label, 2, {"x": _location[0]})

        ctx.lookup("gate", got_entries)

    tracker = ContextTypeDef(
        name="tracker", activation="vehicle_seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=2, freshness=1.0)],
        objects=[TrackingObjectDef("warner", [
            MethodDef("warn", TimerInvocation(4.0), warn)])],
        directory_update_period=5.0)

    app = EnviroTrackApp(seed=81, base_loss_rate=0.02)
    app.field.deploy_grid(10, 5)
    app.field.add_target(Target("gate-1", "gatekind",
                                StaticPoint((8.0, 2.0)),
                                signature_radius=1.2))
    app.field.add_target(Target("car", "vehicle",
                                LineTrajectory((0.0, 2.0), 0.1),
                                signature_radius=1.0))
    app.field.install_detection_sensors("gate_seen", kinds=["gatekind"])
    app.field.install_detection_sensors("vehicle_seen", kinds=["vehicle"])
    app.add_context_type(gate)
    app.add_context_type(tracker)
    app.run(until=60.0)

    assert received, "no warnings delivered"
    gate_labels = {gate_label for gate_label, _, _ in received}
    src_labels = {src for _, src, _ in received}
    assert all(label.startswith("gate#") for label in gate_labels)
    assert all(label.startswith("tracker#") for label in src_labels)
    xs = [args["x"] for _, _, args in received]
    assert xs == sorted(xs)  # warnings track the advancing vehicle


def test_lookup_without_directory_records_drop():
    def probe(ctx):
        ctx.lookup("anything", lambda entries: None)

    definition = ContextTypeDef(
        name="t", activation="seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=1, freshness=1.0)],
        objects=[TrackingObjectDef("o", [
            MethodDef("probe", TimerInvocation(2.0), probe)])])
    app = EnviroTrackApp(seed=82, enable_directory=False,
                         enable_mtp=False)
    app.field.deploy_grid(4, 2)
    app.field.add_target(Target("thing", "thing", StaticPoint((1.0, 0.5)),
                                signature_radius=1.0))
    app.field.install_detection_sensors("seen", kinds=["thing"])
    app.add_context_type(definition)
    app.run(until=10.0)
    drops = [r for r in app.sim.trace
             if r.category == "etrack.app.lookup_dropped"]
    assert drops
