"""Tracking-object runtime: what attached code sees while it runs.

Object code executes on the current group leader and interacts with the
system exclusively through an :class:`ObjectContext` — the reproduction of
the implicit environment EnviroTrack's preprocessor wires into NesC method
bodies: aggregate state variable reads (with valid/null semantics),
``MySend`` to the pursuer/base station, ``self:label``, remote method
invocation, and ``setState`` persistent state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..aggregation import AggregateStore, ReadResult


class ObjectContext:
    """Facade handed to every tracking-object method invocation.

    Lives exactly as long as this node leads the label; a successor leader
    gets a fresh context (continuing from any persistent state carried on
    heartbeats).
    """

    def __init__(self, context_type: str, label: str, node_id: int,
                 clock: Callable[[], float], store: AggregateStore,
                 send_fn: Callable[[Dict[str, Any]], None],
                 invoke_fn: Callable[[str, int, Dict[str, Any]], None],
                 set_state_fn: Callable[[Optional[dict]], None],
                 get_state_fn: Callable[[], Optional[dict]],
                 record_fn: Callable[..., None],
                 position: Any = None,
                 lookup_fn: Optional[Callable[
                     [str, Callable[[list], None]], None]] = None) -> None:
        self.context_type = context_type
        self._label = label
        self.node_id = node_id
        self._clock = clock
        self._store = store
        self._send_fn = send_fn
        self._invoke_fn = invoke_fn
        self._set_state_fn = set_state_fn
        self._get_state_fn = get_state_fn
        self._record_fn = record_fn
        self._lookup_fn = lookup_fn
        self.position = position
        #: Scratch space private to this leader incarnation (NOT persistent
        #: across handovers — use set_state for that).
        self.locals: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """``self:label`` — the handle of the enclosing context label."""
        return self._label

    @property
    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # Aggregate state
    # ------------------------------------------------------------------
    def read(self, name: str) -> ReadResult:
        """Read an aggregate state variable with full QoS semantics.

        The result's ``valid`` flag is False (the paper's *null flag*) when
        fewer than the critical mass of fresh readings are available —
        "when the 'siting' of the phenomenon is not positively confirmed".
        """
        return self._store.read(name, self.now)

    def value(self, name: str, default: Any = None) -> Any:
        """The variable's value, or ``default`` when the read is null."""
        result = self.read(name)
        return result.value if result.valid else default

    def valid(self, name: str) -> bool:
        return self.read(name).valid

    def aggregate_names(self):
        return self._store.names()

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def my_send(self, values: Dict[str, Any]) -> None:
        """``MySend(pursuer, self:label, …)`` — report to the base station.

        The label handle is attached automatically, as in Figure 2 where
        the pursuer identifies vehicles "by their respective context
        labels".
        """
        message = dict(values)
        message["label"] = self._label
        message["context_type"] = self.context_type
        self._send_fn(message)

    def invoke(self, dest_label: str, port: int,
               args: Optional[Dict[str, Any]] = None) -> None:
        """Remote method invocation on another context label via MTP."""
        self._invoke_fn(dest_label, port, args or {})

    def lookup(self, context_type: str,
               callback: Callable[[list], None]) -> None:
        """Ask the directory "where are all the <type>s?" (§5.3).

        The callback receives a list of
        :class:`repro.naming.DirectoryEntry` (possibly empty) when the
        response arrives — asynchronously, like everything on a mote.
        Without a directory service the callback never fires and a
        trace record notes the dropped query.
        """
        if self._lookup_fn is None:
            self._record_fn("app.lookup_dropped", label=self._label,
                            context_type=context_type)
            return
        self._lookup_fn(context_type, callback)

    # ------------------------------------------------------------------
    # Persistent state (the setState mechanism)
    # ------------------------------------------------------------------
    def set_state(self, state: Optional[dict]) -> None:
        """Commit state to be carried on heartbeats, so a successor leader
        "continues computations of failed leaders from the last committed
        state received"."""
        self._set_state_fn(state)

    @property
    def state(self) -> Optional[dict]:
        """The last committed persistent state (inherited or own)."""
        return self._get_state_fn()

    # ------------------------------------------------------------------
    def log(self, event: str, **detail: Any) -> None:
        """Structured application logging into the simulation trace."""
        self._record_fn(f"app.{event}", label=self._label, **detail)
