"""Approximate aggregate state: windows, functions, collection protocol."""

from .collection import (REPORT_KIND, build_report, parse_report,
                         report_period, sample_readings)
from .functions import (DEFAULT_REGISTRY, AggregationError,
                        AggregationRegistry, default_registry)
from .window import AggregateStore, AggregateVarSpec, ReadResult, SlidingWindow

__all__ = [
    "AggregateStore",
    "AggregateVarSpec",
    "AggregationError",
    "AggregationRegistry",
    "DEFAULT_REGISTRY",
    "REPORT_KIND",
    "ReadResult",
    "SlidingWindow",
    "build_report",
    "default_registry",
    "parse_report",
    "report_period",
    "sample_readings",
]
