"""Recursive-descent parser for the EnviroTrack language.

Implements the Appendix A grammar plus the concrete syntax visible in
Figure 2: ``begin context``/``end context`` blocks containing an
``activation:`` condition, aggregate variable declarations with
``confidence``/``freshness`` attributes, and ``begin object``/``end``
blocks whose functions carry ``invocation:`` clauses and brace-delimited
bodies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (AggregateDecl, Assignment, Attribute, Binary, Call,
                  CallStatement, ContextDecl, Expr, FunctionDecl,
                  IfStatement, Index, InvocationSpec, Literal, Name,
                  ObjectDecl, Program, SelfLabel, Statement, Unary)
from .lexer import Token, tokenize


class ParseError(ValueError):
    """Raised with line/column context on any syntax error."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(
            f"{message} (got {token.kind} {token.text!r} at line "
            f"{token.line}, column {token.column})")
        self.token = token


class Parser:
    """One-token-lookahead recursive descent parser."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_op(self, text: str) -> Token:
        if not self._cur.is_op(text):
            raise ParseError(f"expected {text!r}", self._cur)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise ParseError(f"expected keyword {word!r}", self._cur)
        return self._advance()

    def _expect_ident(self) -> str:
        if self._cur.kind != "ident":
            raise ParseError("expected identifier", self._cur)
        return self._advance().text

    def _accept_op(self, text: str) -> bool:
        if self._cur.is_op(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._cur.is_keyword(word):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        """Parse a whole program (one or more context declarations)."""
        program = Program()
        while not self._cur.kind == "eof":
            program.contexts.append(self.parse_context())
        if not program.contexts:
            raise ParseError("empty program", self._cur)
        return program

    def parse_context(self) -> ContextDecl:
        """Parse one ``begin context ... end context`` block."""
        self._expect_keyword("begin")
        self._expect_keyword("context")
        name = self._expect_ident()
        self._expect_keyword("activation")
        self._expect_op(":")
        activation = self.parse_expression()
        self._accept_op(";")
        deactivation: Optional[Expr] = None
        if self._accept_keyword("deactivation"):
            self._expect_op(":")
            deactivation = self.parse_expression()
            self._accept_op(";")
        decl = ContextDecl(name=name, activation=activation,
                           deactivation=deactivation)
        while not self._cur.is_keyword("end"):
            if self._cur.is_keyword("begin"):
                decl.objects.append(self.parse_object())
            elif self._cur.kind == "ident":
                decl.aggregates.append(self.parse_aggregate())
            else:
                raise ParseError(
                    "expected aggregate declaration, object, or 'end'",
                    self._cur)
        self._expect_keyword("end")
        self._expect_keyword("context")
        return decl

    # ------------------------------------------------------------------
    # Aggregate variable declaration
    # ------------------------------------------------------------------
    def parse_aggregate(self) -> AggregateDecl:
        """Parse an aggregate state variable declaration."""
        name = self._expect_ident()
        self._expect_op(":")
        function = self._expect_ident()
        self._expect_op("(")
        sensors = [self._expect_ident()]
        while self._accept_op(","):
            sensors.append(self._expect_ident())
        self._expect_op(")")
        attributes: List[Tuple[str, object]] = []
        if self._cur.kind == "ident":
            attributes.append(self.parse_attribute())
            while self._accept_op(","):
                attributes.append(self.parse_attribute())
        self._accept_op(";")
        return AggregateDecl(name=name, function=function,
                             sensors=tuple(sensors),
                             attributes=tuple(attributes))

    def parse_attribute(self) -> Tuple[str, object]:
        """Parse one ``key=value`` attribute."""
        key = self._expect_ident()
        self._expect_op("=")
        token = self._cur
        if token.kind == "number":
            self._advance()
            return (key, token.value)
        if token.kind in ("ident", "string"):
            self._advance()
            return (key, token.value)
        raise ParseError("expected attribute value", token)

    # ------------------------------------------------------------------
    # Objects and functions
    # ------------------------------------------------------------------
    def parse_object(self) -> ObjectDecl:
        """Parse a ``begin object ... end`` block (data + functions)."""
        self._expect_keyword("begin")
        self._expect_keyword("object")
        name = self._expect_ident()
        data: List[Tuple[str, object]] = []
        # Appendix A: optional data declarations before the functions,
        # e.g. ``count = 0;``.
        while (self._cur.kind == "ident"
               and self._tokens[self._pos + 1].is_op("=")):
            var_name = self._expect_ident()
            self._expect_op("=")
            token = self._cur
            if token.kind in ("number", "string"):
                self._advance()
                value: object = token.value
            elif token.is_keyword("true"):
                self._advance()
                value = True
            elif token.is_keyword("false"):
                self._advance()
                value = False
            else:
                raise ParseError("data declarations take literal values",
                                 token)
            self._expect_op(";")
            data.append((var_name, value))
        functions: List[FunctionDecl] = []
        while not self._cur.is_keyword("end"):
            functions.append(self.parse_function())
        self._expect_keyword("end")
        if not functions:
            raise ParseError(f"object {name!r} declares no functions",
                             self._cur)
        return ObjectDecl(name=name, functions=tuple(functions),
                          data=tuple(data))

    def parse_function(self) -> FunctionDecl:
        """Parse one invocation clause and its function body."""
        self._expect_keyword("invocation")
        self._expect_op(":")
        invocation = self.parse_invocation()
        name = self._expect_ident()
        self._expect_op("(")
        self._expect_op(")")
        self._expect_op("{")
        body: List[Statement] = []
        while not self._cur.is_op("}"):
            body.append(self.parse_statement())
        self._expect_op("}")
        return FunctionDecl(name=name, invocation=invocation,
                            body=tuple(body))

    def parse_invocation(self) -> InvocationSpec:
        """Parse ``TIMER(p)``, ``PORT(n)`` or a condition expression."""
        token = self._cur
        if token.kind == "ident" and token.text == "TIMER":
            self._advance()
            self._expect_op("(")
            period_token = self._cur
            if period_token.kind != "number":
                raise ParseError("TIMER() needs a period", period_token)
            self._advance()
            self._expect_op(")")
            return InvocationSpec(kind="timer",
                                  period=float(period_token.value))
        if token.kind == "ident" and token.text == "PORT":
            self._advance()
            self._expect_op("(")
            port_token = self._cur
            if port_token.kind != "number":
                raise ParseError("PORT() needs a port number", port_token)
            self._advance()
            self._expect_op(")")
            return InvocationSpec(kind="port",
                                  port=int(port_token.value))
        condition = self.parse_expression()
        return InvocationSpec(kind="when", condition=condition)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        """Parse one body statement (call / assignment / if)."""
        if self._cur.is_keyword("if"):
            return self.parse_if()
        if (self._cur.kind == "ident"
                and self._tokens[self._pos + 1].is_op("=")):
            name = self._expect_ident()
            self._expect_op("=")
            value = self.parse_expression()
            self._expect_op(";")
            return Assignment(name=name, value=value)
        expr = self.parse_expression()
        self._expect_op(";")
        if not isinstance(expr, Call):
            raise ParseError("expression statements must be calls",
                             self._cur)
        return CallStatement(call=expr)

    def parse_if(self) -> IfStatement:
        """Parse an ``if (...) { ... } else { ... }`` statement."""
        self._expect_keyword("if")
        self._expect_op("(")
        condition = self.parse_expression()
        self._expect_op(")")
        self._expect_op("{")
        then_body: List[Statement] = []
        while not self._cur.is_op("}"):
            then_body.append(self.parse_statement())
        self._expect_op("}")
        else_body: List[Statement] = []
        if self._accept_keyword("else"):
            self._expect_op("{")
            while not self._cur.is_op("}"):
                else_body.append(self.parse_statement())
            self._expect_op("}")
        return IfStatement(condition=condition,
                           then_body=tuple(then_body),
                           else_body=tuple(else_body))

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expr:
        """Parse a full expression (lowest precedence level)."""
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._cur.is_keyword("or"):
            self._advance()
            left = Binary("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._cur.is_keyword("and"):
            self._advance()
            left = Binary("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._cur.is_keyword("not"):
            self._advance()
            return Unary("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        for op in ("<=", ">=", "==", "!=", "<", ">"):
            if self._cur.is_op(op):
                self._advance()
                return Binary(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._cur.is_op("+") or self._cur.is_op("-"):
            op = self._advance().text
            left = Binary(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._cur.is_op("*") or self._cur.is_op("/"):
            op = self._advance().text
            left = Binary(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._cur.is_op("-"):
            self._advance()
            return Unary("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self._cur.is_op("."):
                self._advance()
                expr = Attribute(base=expr, attr=self._expect_ident())
            elif self._cur.is_op("["):
                self._advance()
                index = self.parse_expression()
                self._expect_op("]")
                expr = Index(base=expr, index=index)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._cur
        if token.kind == "number" or token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_op("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        if token.kind == "ident":
            name = self._advance().text
            if name == "self" and self._cur.is_op(":"):
                self._advance()
                attr = self._expect_ident()
                if attr != "label":
                    raise ParseError(
                        f"unknown self attribute {attr!r}", token)
                return SelfLabel()
            if self._cur.is_op("("):
                self._advance()
                args: List[Expr] = []
                if not self._cur.is_op(")"):
                    args.append(self.parse_expression())
                    while self._accept_op(","):
                        args.append(self.parse_expression())
                self._expect_op(")")
                return Call(name=name, args=tuple(args))
            return Name(ident=name)
        raise ParseError("expected expression", token)


def parse_source(source: str) -> Program:
    """Convenience: tokenize and parse a full program."""
    return Parser(tokenize(source)).parse_program()
