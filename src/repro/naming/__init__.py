"""Object naming and directory services."""

from .directory import (DEFAULT_ENTRY_TTL, DEFAULT_LOOKUP_RETRIES,
                        DEFAULT_LOOKUP_TIMEOUT, DirectoryEntry,
                        DirectoryService, QUERY_KIND, REGISTER_KIND,
                        REPLICATE_KIND, RESPONSE_KIND)
from .geohash import FieldBounds, hash_to_coordinate

__all__ = [
    "DEFAULT_ENTRY_TTL",
    "DEFAULT_LOOKUP_RETRIES",
    "DEFAULT_LOOKUP_TIMEOUT",
    "DirectoryEntry",
    "DirectoryService",
    "FieldBounds",
    "QUERY_KIND",
    "REGISTER_KIND",
    "REPLICATE_KIND",
    "RESPONSE_KIND",
    "hash_to_coordinate",
]
