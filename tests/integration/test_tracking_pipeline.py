"""End-to-end integration tests: the paper's qualitative claims."""

import pytest

from repro.experiments import (SPEED_33_KMH, SPEED_50_KMH, TankScenario,
                               run_tank_scenario)
from repro.lang import compile_source
from repro.core import EnviroTrackApp
from repro.sensing import LineTrajectory, Target


class TestCaseStudy:
    """§6.1: realistic targets are tracked without overloading the net."""

    def test_tank_tracked_coherently_at_case_study_speeds(self):
        for speed in (SPEED_33_KMH, SPEED_50_KMH):
            result = run_tank_scenario(TankScenario(speed=speed, seed=3))
            assert result.coherent, f"incoherent at speed {speed}"
            assert result.coverage > 0.9

    def test_tracking_error_bounded(self):
        result = run_tank_scenario(TankScenario(seed=4))
        assert result.comparison is not None
        assert result.comparison.mean_error < 0.5

    def test_link_utilization_tiny(self):
        result = run_tank_scenario(TankScenario(seed=5))
        assert result.communication.link_utilization_pct < 10.0

    def test_operates_correctly_under_loss(self):
        result = run_tank_scenario(TankScenario(seed=6,
                                                base_loss_rate=0.15))
        assert result.coherent
        assert result.communication.heartbeat_loss_pct > 5.0


class TestStressClaims:
    """§6.2 directional claims at a smoke-test scale."""

    def test_faster_heartbeats_track_faster_targets(self):
        def coherent(speed, heartbeat_period):
            votes = 0
            for seed in range(3):
                scenario = TankScenario(
                    columns=16, rows=3, speed=speed,
                    heartbeat_period=heartbeat_period, relinquish=False,
                    with_base_station=False, seed=30 + seed)
                votes += run_tank_scenario(scenario).coherent
            return votes >= 2

        # 1 hop/s works with a 0.25s heartbeat but not with a 2s one.
        assert coherent(1.0, 0.25)
        assert not coherent(1.0, 2.0)

    def test_crsr_below_one_breaks_coherence(self):
        scenario = TankScenario(
            columns=16, rows=5, speed=0.5, sensing_radius=2.0,
            communication_radius=1.4,  # CR:SR = 0.7
            member_rebroadcast=False, with_base_station=False, seed=9)
        assert not run_tank_scenario(scenario).coherent

    def test_leader_kill_recovers_same_label(self):
        scenario = TankScenario(seed=12, leader_kill_times=(30.0,))
        result = run_tank_scenario(scenario)
        assert result.handovers.takeovers >= 1
        assert result.coherent


class TestDslPipeline:
    def test_figure2_program_tracks_end_to_end(self):
        source = """
        begin context tracker
            activation: magnetic_sensor_reading()
            location : avg(position) confidence=2, freshness=1s
            begin object reporter
                invocation: TIMER(5s)
                report_function() {
                    MySend(pursuer, self:label, location);
                }
            end
        end context
        """
        app = EnviroTrackApp(seed=8, base_loss_rate=0.05)
        app.field.deploy_grid(10, 2)
        app.field.add_target(Target(
            "tank", "vehicle", LineTrajectory((0.0, 0.5), 0.1),
            signature_radius=0.7,
            attributes={"ferrous_mass": 40000.0}))
        app.field.install_magnetometers(threshold=0.8)
        for definition in compile_source(source):
            app.add_context_type(definition)
        base = app.place_base_station((0.0, -3.0))
        app.run(until=100.0)
        assert len(base.labels_seen()) == 1
        track = base.track(base.labels_seen()[0])
        assert len(track) >= 4
        # Reported x positions advance with the vehicle.
        xs = [pos[0] for _, pos in track]
        assert xs == sorted(xs)
        for t, (x, y) in track:
            assert abs(x - 0.1 * t) < 1.0
            assert abs(y - 0.5) < 0.6


class TestMultiTarget:
    def test_two_vehicles_two_labels(self):
        from repro.aggregation import AggregateVarSpec
        from repro.core import (ContextTypeDef, MethodDef, TimerInvocation,
                                TrackingObjectDef)
        from repro.groups import GroupConfig

        app = EnviroTrackApp(seed=14, enable_directory=False,
                             enable_mtp=False)
        app.field.deploy_grid(12, 6)
        app.field.add_target(Target(
            "a", "vehicle", LineTrajectory((0.0, 1.0), 0.1),
            signature_radius=1.0))
        app.field.add_target(Target(
            "b", "vehicle", LineTrajectory((11.0, 4.5), 0.0),
            signature_radius=1.0))
        app.field.install_detection_sensors("seen", kinds=["vehicle"])

        def report(ctx):
            location = ctx.read("location")
            if location.valid:
                ctx.my_send({"location": location.value})

        app.add_context_type(ContextTypeDef(
            name="tracker", activation="seen",
            aggregates=[AggregateVarSpec("location", "avg", "position",
                                         confidence=2, freshness=1.0)],
            objects=[TrackingObjectDef("r", [
                MethodDef("report", TimerInvocation(3.0), report)])],
            group=GroupConfig(suppression_range=2.5, join_range=2.5)))
        base = app.place_base_station((-1.0, -2.0))
        app.run(until=60.0)

        labels = base.labels_seen()
        assert len(labels) == 2
        # One track is static near (11, 4.5); the other moves along y=1.
        finals = {label: base.track(label)[-1][1] for label in labels}
        moving = [l for l, (x, y) in finals.items() if y < 2.5]
        static = [l for l, (x, y) in finals.items() if y > 2.5]
        assert len(moving) == 1 and len(static) == 1
        assert finals[static[0]][0] == pytest.approx(11.0, abs=1.0)
