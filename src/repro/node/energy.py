"""Per-mote energy accounting.

The paper's motivation is battery-powered disposable motes, and its design
choices (heartbeat rate, relinquish vs takeover, flooding) trade tracking
responsiveness against communication — i.e., against energy.  This
extension meters each mote's radio and CPU energy so those trade-offs can
be quantified (see ``benchmarks/bench_ablation_energy.py``).

The cost model follows the MICA mote's published current draws (ATmega103
+ TR1000 at 3 V, rounded):

=============  ==========  =============================
activity       power       note
=============  ==========  =============================
radio transmit ~36 mW      12 mA at 3 V
radio receive  ~14.4 mW    4.8 mA at 3 V (also idle listen)
CPU active     ~16.5 mW    5.5 mA at 3 V
sleep          ~30 µW      leakage
=============  ==========  =============================

Energy is attributed per event (a transmission's airtime × tx power, a
reception's airtime × rx power, a CPU task's service time × CPU power)
plus a baseline idle-listening drain, which is what actually dominates on
un-duty-cycled motes — reproducing the classic observation that the radio
*listening*, not talking, empties the battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..sim import Simulator


@dataclass(frozen=True)
class EnergyModel:
    """Power levels in watts."""

    tx_power: float = 0.036
    rx_power: float = 0.0144
    cpu_power: float = 0.0165
    idle_listen_power: float = 0.0144
    sleep_power: float = 0.00003


@dataclass
class EnergyLedger:
    """Accumulated energy of one mote, by activity, in joules."""

    model: EnergyModel
    tx_joules: float = 0.0
    rx_joules: float = 0.0
    cpu_joules: float = 0.0
    #: Externally injected drain (fault injection: battery leakage,
    #: short-circuit, parasitic load).
    drain_joules: float = 0.0
    started_at: float = 0.0

    def on_transmit(self, airtime: float) -> None:
        """Charge transmit energy for one frame's airtime."""
        self.tx_joules += airtime * self.model.tx_power

    def on_receive(self, airtime: float) -> None:
        """Charge receive energy for one frame's airtime."""
        self.rx_joules += airtime * self.model.rx_power

    def on_cpu(self, busy_time: float) -> None:
        """Charge CPU energy for ``busy_time`` seconds of service."""
        self.cpu_joules += busy_time * self.model.cpu_power

    def on_drain(self, joules: float) -> None:
        """Charge an externally injected energy drain."""
        if joules < 0:
            raise ValueError(f"drain must be >= 0: {joules}")
        self.drain_joules += joules

    def idle_joules(self, now: float) -> float:
        """Baseline idle-listening drain over the whole elapsed time.

        Conservative: active radio time is not subtracted from the idle
        baseline (it is negligible at the evaluation's <5% utilization).
        """
        elapsed = max(0.0, now - self.started_at)
        return elapsed * self.model.idle_listen_power

    def total_joules(self, now: float, include_idle: bool = True) -> float:
        active = (self.tx_joules + self.rx_joules + self.cpu_joules
                  + self.drain_joules)
        if include_idle:
            active += self.idle_joules(now)
        return active


class EnergyMeter:
    """Meters every mote in a field.

    Attach after deployment::

        meter = EnergyMeter(sim)
        for mote in field.mote_list():
            meter.attach(mote)
        ...
        meter.total_joules(sim.now)

    Metering wraps the mote's MAC send and physical-receive paths and
    samples CPU busy time on read, so it adds no events to the simulation.
    """

    def __init__(self, sim: Simulator,
                 model: EnergyModel = EnergyModel()) -> None:
        self.sim = sim
        self.model = model
        self.ledgers: Dict[int, EnergyLedger] = {}
        self._cpu_seen: Dict[int, float] = {}
        self._motes: Dict[int, object] = {}
        # Telemetry (no-ops when the simulator's telemetry is disabled):
        # tx/rx counters accrue as frames move; the by-activity gauge is
        # refreshed whenever a readout computes the breakdown.
        metrics = sim.metrics
        self._tx_metric = metrics.counter(
            "repro_energy_tx_joules_total",
            "Radio transmit energy spent, fleet-wide.")
        self._rx_metric = metrics.counter(
            "repro_energy_rx_joules_total",
            "Radio receive energy spent, fleet-wide.")
        self._energy_gauge = metrics.gauge(
            "repro_energy_joules",
            "Accumulated fleet energy by activity "
            "(refreshed on breakdown()).", ("activity",))

    def attach(self, mote) -> None:
        """Start metering ``mote``."""
        if mote.node_id in self.ledgers:
            raise ValueError(f"mote {mote.node_id} already metered")
        ledger = EnergyLedger(model=self.model, started_at=self.sim.now)
        self.ledgers[mote.node_id] = ledger
        self._cpu_seen[mote.node_id] = mote.cpu.busy_time
        self._motes[mote.node_id] = mote
        medium = mote.medium

        original_send = mote.mac.send

        def metered_send(frame, _original=original_send,
                         _ledger=ledger, _medium=medium,
                         _metric=self._tx_metric):
            airtime = _medium.airtime(frame)
            _ledger.on_transmit(airtime)
            _metric.inc(airtime * _ledger.model.tx_power)
            _original(frame)

        mote.mac.send = metered_send

        original_deliver = mote.port._deliver_fn

        def metered_deliver(frame, _original=original_deliver,
                            _ledger=ledger, _medium=medium,
                            _metric=self._rx_metric):
            airtime = _medium.airtime(frame)
            _ledger.on_receive(airtime)
            _metric.inc(airtime * _ledger.model.rx_power)
            _original(frame)

        mote.port._deliver_fn = metered_deliver

    def _sync_cpu(self) -> None:
        for node_id, ledger in self.ledgers.items():
            mote = self._motes[node_id]
            seen = self._cpu_seen[node_id]
            busy = mote.cpu.busy_time
            if busy > seen:
                ledger.on_cpu(busy - seen)
                self._cpu_seen[node_id] = busy

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def ledger(self, node_id: int) -> EnergyLedger:
        self._sync_cpu()
        return self.ledgers[node_id]

    def total_joules(self, now: float, include_idle: bool = True) -> float:
        self._sync_cpu()
        return sum(ledger.total_joules(now, include_idle=include_idle)
                   for ledger in self.ledgers.values())

    def active_joules(self, now: float) -> float:
        """Radio+CPU energy only — the part protocol design controls."""
        return self.total_joules(now, include_idle=False)

    def max_node_joules(self, now: float,
                        include_idle: bool = True) -> float:
        """Hottest mote — the network's lifetime bound."""
        self._sync_cpu()
        return max(ledger.total_joules(now, include_idle=include_idle)
                   for ledger in self.ledgers.values())

    def breakdown(self, now: float) -> Dict[str, float]:
        """Fleet-wide energy by activity (joules)."""
        self._sync_cpu()
        out = {
            "tx": sum(l.tx_joules for l in self.ledgers.values()),
            "rx": sum(l.rx_joules for l in self.ledgers.values()),
            "cpu": sum(l.cpu_joules for l in self.ledgers.values()),
            "drain": sum(l.drain_joules for l in self.ledgers.values()),
            "idle": sum(l.idle_joules(now)
                        for l in self.ledgers.values()),
        }
        for activity, joules in out.items():
            self._energy_gauge.set(joules, activity)
        return out

    def drain(self, node_id: int, joules: float) -> None:
        """Inject an external drain on one mote's battery."""
        self.ledgers[node_id].on_drain(joules)
