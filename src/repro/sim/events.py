"""Event primitives for the discrete-event simulation engine.

The engine (:mod:`repro.sim.engine`) dispatches :class:`Event` instances in
nondecreasing time order.  Ties are broken deterministically by a
monotonically increasing sequence number assigned at scheduling time, so two
runs with the same seed and the same scheduling order produce identical
traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` which makes them directly usable in a
    binary heap.  The payload fields are excluded from comparison.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Causal span current when the event was scheduled; the engine
    #: restores it around dispatch (telemetry only, never traced).
    span: Optional[int] = field(compare=False, default=None)
    #: Owning simulator while the event sits in the heap; cancellation
    #: reports back to it so live/cancelled counts stay O(1)-exact.  The
    #: engine disowns the event once it leaves the heap.
    owner: Optional[Any] = field(compare=False, default=None, repr=False)
    #: Re-armable timer handle backing this entry, or None for plain
    #: events (see :class:`repro.sim.engine.TimerHandle`).
    handle: Optional[Any] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Cancellation is O(1); the heap entry is lazily discarded (and the
        owning simulator's cancelled-pending count updated, which may
        trigger a heap compaction).
        """
        if self.cancelled:
            return
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            self.owner = None
            owner._note_cancelled()

    @property
    def active(self) -> bool:
        return not self.cancelled

    def fire(self) -> Any:
        """Invoke the callback.  The engine calls this; tests may too."""
        return self.callback(*self.args, **self.kwargs)


class EventSequencer:
    """Produces the deterministic tie-breaking sequence numbers."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def next(self) -> int:
        return next(self._counter)


@dataclass
class TraceRecord:
    """One structured record in the simulation trace log."""

    time: float
    category: str
    node: Optional[int]
    detail: dict

    def matches(self, category: Optional[str] = None,
                node: Optional[int] = None) -> bool:
        """Return True when the record matches the given filters."""
        if category is not None and self.category != category:
            return False
        if node is not None and self.node != node:
            return False
        return True
