"""Group-management wire messages and context-label identity.

A *context label* is the persistent identity of a tracked entity (§3.2):
"even though the vehicles move and the sensor nodes comprising their
corresponding objects will change, the context labels will not".  Labels
are minted by the node that first detects an unclaimed stimulus; the id
embeds the context type, the creator and a creation sequence number, so
labels are globally unique without coordination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Frame kinds.
HEARTBEAT_KIND = "gm.heartbeat"
RELINQUISH_KIND = "gm.relinquish"
QUERY_KIND = "gm.query"
VOUCH_KIND = "gm.vouch"


def mint_label(context_type: str, creator: int, sequence: int) -> str:
    """Create a globally unique context label id.

    Uniqueness comes from (creator, per-creator sequence), with no global
    state: any two nodes mint distinct labels, and the same node's labels
    are ordered.  Keeping the sequence per-creator (not process-global)
    makes label names deterministic per seed even across multiple
    simulations in one process.
    """
    return f"{context_type}#{creator}.{sequence}"


def label_type(label: str) -> str:
    """Extract the context type from a label id."""
    return label.split("#", 1)[0]


@dataclass
class Heartbeat:
    """Leader keep-alive (§5.2).

    Carries everything the protocol piggybacks on heartbeats: the leader's
    identity, the label's weight (for spurious-label suppression), optional
    persistent application state (the ``setState`` mechanism), and a
    remaining flood hop count for propagation past the group perimeter.
    """

    context_type: str
    label: str
    leader: int
    weight: int
    seq: int
    state: Optional[Dict[str, Any]] = None
    hops: int = 0
    #: Leader's field position at send time.  Cross-label decisions
    #: (spurious-label suppression, member switching) use it to check that
    #: two labels plausibly track the *same* physical stimulus — distant
    #: same-type groups must "remain distinct ... as long as the tracked
    #: entities are physically separated".
    leader_pos: Optional[tuple] = None
    #: Original sender when forwarded by a member (for tracing).
    forwarded_by: Optional[int] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "context_type": self.context_type,
            "label": self.label,
            "leader": self.leader,
            "weight": self.weight,
            "seq": self.seq,
            "state": self.state,
            "hops": self.hops,
            "leader_pos": (None if self.leader_pos is None
                           else [self.leader_pos[0], self.leader_pos[1]]),
            "forwarded_by": self.forwarded_by,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> Optional["Heartbeat"]:
        """Parse; None when malformed (never crash on corrupt frames)."""
        try:
            raw_pos = payload.get("leader_pos")
            leader_pos = (None if raw_pos is None
                          else (float(raw_pos[0]), float(raw_pos[1])))
            return cls(
                context_type=payload["context_type"],
                label=payload["label"],
                leader=int(payload["leader"]),
                weight=int(payload["weight"]),
                seq=int(payload["seq"]),
                state=payload.get("state"),
                hops=int(payload.get("hops", 0)),
                leader_pos=leader_pos,
                forwarded_by=payload.get("forwarded_by"),
            )
        except (KeyError, TypeError, ValueError, IndexError):
            return None


@dataclass
class Relinquish:
    """Explicit leadership handoff request, sent when the leader no longer
    senses the tracked entity (§5.2's relinquish mechanism)."""

    context_type: str
    label: str
    leader: int
    weight: int
    state: Optional[Dict[str, Any]] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "context_type": self.context_type,
            "label": self.label,
            "leader": self.leader,
            "weight": self.weight,
            "state": self.state,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]
                     ) -> Optional["Relinquish"]:
        try:
            return cls(
                context_type=payload["context_type"],
                label=payload["label"],
                leader=int(payload["leader"]),
                weight=int(payload["weight"]),
                state=payload.get("state"),
            )
        except (KeyError, TypeError, ValueError):
            return None


@dataclass
class LeaderQuery:
    """Liveness probe a member broadcasts when its receive timer expires.

    Before usurping leadership, the member asks "is the leader of this
    label still alive?".  The leader answers with an immediate (defence)
    heartbeat; fellow members answer with a :class:`LeaderVouch` carrying
    the age of their freshest direct heartbeat.  Either response cancels
    the takeover, so a member that merely lost two heartbeats to channel
    noise no longer creates a duplicate leader.
    """

    context_type: str
    label: str
    sender: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "context_type": self.context_type,
            "label": self.label,
            "sender": self.sender,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]
                     ) -> Optional["LeaderQuery"]:
        try:
            return cls(
                context_type=payload["context_type"],
                label=payload["label"],
                sender=int(payload["sender"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


@dataclass
class LeaderVouch:
    """Second-hand heartbeat freshness, sent in answer to a LeaderQuery.

    ``age`` is the time since the voucher *directly* heard the leader, so
    the prober can restart its receive timer with the remaining budget
    (``receive_timeout − age``) instead of a full timeout.  Ages only
    grow after a real leader death, which keeps the takeover latency
    bound at one receive timeout measured from the last heartbeat anyone
    heard.
    """

    context_type: str
    label: str
    leader: int
    weight: int
    age: float
    sender: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "context_type": self.context_type,
            "label": self.label,
            "leader": self.leader,
            "weight": self.weight,
            "age": self.age,
            "sender": self.sender,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]
                     ) -> Optional["LeaderVouch"]:
        try:
            age = float(payload["age"])
            if age < 0:
                return None
            return cls(
                context_type=payload["context_type"],
                label=payload["label"],
                leader=int(payload["leader"]),
                weight=int(payload["weight"]),
                age=age,
                sender=int(payload["sender"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
