"""Unit tests for named seeded random streams."""

from repro.sim import RandomStreams, Simulator, derive_seed


def test_streams_are_deterministic_per_seed_and_name():
    a = RandomStreams(42).stream("radio").random()
    b = RandomStreams(42).stream("radio").random()
    assert a == b


def test_different_names_give_independent_streams():
    streams = RandomStreams(42)
    assert streams.stream("radio").random() != \
        streams.stream("deploy").random()


def test_different_seeds_differ():
    assert RandomStreams(1).stream("x").random() != \
        RandomStreams(2).stream("x").random()


def test_stream_identity_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("a") is streams.stream("a")
    assert streams["a"] is streams.stream("a")


def test_derive_seed_is_stable():
    # Regression pin: derive_seed must not depend on PYTHONHASHSEED.
    assert derive_seed(0, "x") == derive_seed(0, "x")
    assert derive_seed(0, "x") != derive_seed(0, "y")
    assert 0 <= derive_seed(123, "radio") < 2 ** 64


def test_names_lists_created_streams_sorted():
    streams = RandomStreams(0)
    streams.stream("b")
    streams.stream("a")
    assert streams.names() == ["a", "b"]


def test_simulator_whole_run_determinism():
    def run(seed):
        sim = Simulator(seed=seed)
        values = []
        rng = sim.rng.stream("test")
        for i in range(5):
            sim.schedule(float(i), lambda: values.append(rng.random()))
        sim.run()
        return values

    assert run(7) == run(7)
    assert run(7) != run(8)
