"""Restartable one-shot and periodic timers on top of the event engine.

These mirror the timers EnviroTrack's group management uses: the *receive
timer* and *wait timer* of Section 5.2 are :class:`WatchdogTimer`s (restart
on every heartbeat, fire on silence), and leader heartbeats / member report
schedules are :class:`PeriodicTimer`s.

All three ride on the engine's :class:`~repro.sim.engine.TimerService`, so
under the default lazy scheduler a restart (``kick``) mutates the timer's
single heap entry instead of cancelling it and pushing a new one — the
dominant cost at scale, since group management kicks a watchdog per
heartbeat per node.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Simulator


class OneShotTimer:
    """A single-firing timer that can be cancelled or restarted.

    ``start`` replaces any pending firing, so the timer fires at most once
    per start.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any],
                 label: str = "oneshot") -> None:
        self._sim = sim
        self._callback = callback
        self._handle = sim.timers.create(self._fire, label)
        self.fire_count = 0

    @property
    def armed(self) -> bool:
        return self._handle.armed

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self._sim.timers.arm(self._handle, delay)

    def cancel(self) -> None:
        self._sim.timers.cancel(self._handle)

    def _fire(self) -> None:
        self.fire_count += 1
        self._callback()


class WatchdogTimer(OneShotTimer):
    """A one-shot timer intended to be *kicked* on each keep-alive.

    Kicking restarts the countdown with the configured timeout; the callback
    fires only after ``timeout`` seconds of silence.
    """

    def __init__(self, sim: Simulator, timeout: float,
                 callback: Callable[[], Any], label: str = "watchdog") -> None:
        super().__init__(sim, callback, label=label)
        if timeout <= 0:
            raise ValueError(f"watchdog timeout must be positive: {timeout}")
        self.timeout = timeout

    def kick(self) -> None:
        """Restart the silence countdown."""
        self.start(self.timeout)


class PeriodicTimer:
    """Fires ``callback`` every ``period`` seconds until stopped.

    The first firing happens after ``initial_delay`` (defaults to one full
    period).  Changing :attr:`period` takes effect after the next firing.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], Any], label: str = "periodic",
                 initial_delay: Optional[float] = None) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive: {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._initial_delay = period if initial_delay is None else initial_delay
        self._handle = sim.timers.create(self._fire, label)
        self.fire_count = 0

    @property
    def running(self) -> bool:
        return self._handle.armed

    def start(self) -> None:
        """Start (or restart) the periodic schedule."""
        self._sim.timers.arm(self._handle, self._initial_delay)

    def stop(self) -> None:
        self._sim.timers.cancel(self._handle)

    def _fire(self) -> None:
        self.fire_count += 1
        # Re-arm before the callback so the callback may call stop().
        self._sim.timers.arm(self._handle, self.period)
        self._callback()
