"""Unit tests for the bounded-rate CPU model."""

import pytest

from repro.node import Cpu
from repro.sim import Simulator


def test_task_runs_after_service_time():
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.01)
    done = []
    cpu.post(lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.01)]


def test_fifo_order_and_serialized_service():
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.01)
    done = []
    for i in range(3):
        cpu.post(lambda i=i: done.append((i, sim.now)))
    sim.run()
    assert [i for i, _ in done] == [0, 1, 2]
    assert done[2][1] == pytest.approx(0.03)


def test_backlog_counts_waiting_tasks():
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.01)
    for _ in range(4):
        cpu.post(lambda: None)
    assert cpu.backlog == 3  # one in service
    assert cpu.busy
    sim.run()
    assert cpu.backlog == 0
    assert not cpu.busy


def test_queue_overflow_drops_new_tasks():
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.01, queue_limit=2)
    results = [cpu.post(lambda: None) for _ in range(5)]
    assert results == [True, True, True, False, False]
    assert cpu.dropped == 2
    sim.run()
    assert cpu.executed == 3


def test_per_task_cost_override():
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.01)
    done = []
    cpu.post(lambda: done.append(sim.now), cost=0.5)
    sim.run()
    assert done == [pytest.approx(0.5)]


def test_overload_delays_later_tasks():
    """The Figure 5 mechanism: a flood of cheap tasks delays the one that
    matters (a protocol timer handler) by the whole backlog."""
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.01)
    for _ in range(50):
        cpu.post(lambda: None)
    done = []
    cpu.post(lambda: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(0.51)


def test_utilization_and_latency_accounting():
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.1)
    for _ in range(5):
        cpu.post(lambda: None)
    sim.run(until=1.0)
    assert cpu.utilization() == pytest.approx(0.5)
    assert cpu.mean_latency() > 0
    assert cpu.max_backlog == 4


def test_shutdown_stops_execution():
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.01)
    done = []
    cpu.post(done.append, 1)
    cpu.post(done.append, 2)
    cpu.shutdown()
    sim.run()
    assert done == []
    assert not cpu.post(done.append, 3)


def test_task_exception_does_not_wedge_cpu():
    sim = Simulator()
    cpu = Cpu(sim, 0, task_cost=0.01)
    done = []

    def boom():
        raise RuntimeError("app bug")

    cpu.post(boom)
    cpu.post(lambda: done.append(sim.now))
    with pytest.raises(RuntimeError):
        sim.run()
    sim.run()  # resumable; next task still runs
    assert done


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Cpu(sim, 0, task_cost=-1.0)
    with pytest.raises(ValueError):
        Cpu(sim, 0, queue_limit=0)
