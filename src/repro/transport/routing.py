"""Location-aware routing substrate.

The paper assumes "network nodes and routing are location-aware" and cites
LAR/DREAM/RAP-style geographic routing as the complementary network layer.
We implement greedy geographic forwarding: each hop hands the packet to the
neighbor strictly closest to the destination point; the node with no closer
neighbor *is* the destination area and delivers locally.

Greedy forwarding is loop-free and, on the evaluation's grid deployments
(connectivity radius ≥ grid spacing), always reaches the node nearest the
target coordinate.  Voids in sparse random deployments surface as recorded
``geo.dead_end`` drops rather than silent loss.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..node import Component, Mote
from ..radio import distance

Position = Tuple[float, float]
DeliveryHandler = Callable[[Dict[str, Any], int], None]

GEO_KIND = "geo.data"

#: Safety valve against forwarding loops from stale position data.
DEFAULT_TTL = 64


class GeoRouter(Component):
    """Greedy geographic forwarding on one mote.

    Upper layers register delivery handlers per inner message kind and
    route payloads to field coordinates; the router handles hop-by-hop
    forwarding and local delivery.
    """

    name = "geo"

    def __init__(self, mote: Mote) -> None:
        super().__init__(mote)
        self._handlers: Dict[str, DeliveryHandler] = {}
        self.forwarded = 0
        self.delivered = 0
        self.dead_ends = 0

    def on_start(self) -> None:
        self.handle(GEO_KIND, self._on_frame)

    # ------------------------------------------------------------------
    def register_delivery(self, inner_kind: str,
                          handler: DeliveryHandler) -> None:
        """Register the upper-layer handler for ``inner_kind`` payloads.

        The handler receives ``(inner_payload, origin_node_id)``.
        """
        if inner_kind in self._handlers:
            raise ValueError(f"delivery handler for {inner_kind!r} exists")
        self._handlers[inner_kind] = handler

    def route_to_point(self, dest: Position, inner_kind: str,
                       inner_payload: Dict[str, Any],
                       ttl: int = DEFAULT_TTL) -> None:
        """Send a payload toward a field coordinate.

        Delivery happens at the node closest to ``dest`` (the "directory
        object" semantics of §5.3: nodes near the hashed coordinate).
        """
        packet = {
            "dest": [dest[0], dest[1]],
            "origin": self.node_id,
            "inner_kind": inner_kind,
            "inner": inner_payload,
            "ttl": ttl,
        }
        self._step(packet)

    def route_to_node(self, dest_node: int, inner_kind: str,
                      inner_payload: Dict[str, Any],
                      ttl: int = DEFAULT_TTL) -> None:
        """Send a payload to a specific node, routing by its position.

        Location-awareness assumption: the sender can resolve the node's
        coordinates (the paper's location services, e.g. GLS [24]).
        """
        try:
            dest = self.mote.medium.port(dest_node).position
        except KeyError:
            self.dead_ends += 1
            self.record("dead_end", reason="unknown_node", dest=dest_node)
            return
        packet = {
            "dest": [dest[0], dest[1]],
            "dest_node": dest_node,
            "origin": self.node_id,
            "inner_kind": inner_kind,
            "inner": inner_payload,
            "ttl": ttl,
        }
        self._step(packet)

    # ------------------------------------------------------------------
    def _on_frame(self, frame) -> None:
        packet = frame.payload
        if not isinstance(packet, dict) or "dest" not in packet:
            return
        self._step(packet)

    def _step(self, packet: Dict[str, Any]) -> None:
        dest = (float(packet["dest"][0]), float(packet["dest"][1]))
        dest_node = packet.get("dest_node")
        if dest_node == self.node_id:
            self._deliver(packet)
            return
        ttl = int(packet.get("ttl", 0))
        if ttl <= 0:
            self.dead_ends += 1
            self.record("dead_end", reason="ttl")
            return
        my_distance = distance(self.mote.position, dest)
        next_hop = self._closest_neighbor(dest, my_distance)
        if next_hop is None:
            if dest_node is not None and dest_node != self.node_id:
                # The addressed node is unreachable/gone; point delivery
                # semantics do not apply to explicit unicast.
                self.dead_ends += 1
                self.record("dead_end", reason="unreachable_node",
                            dest=dest_node)
                return
            self._deliver(packet)
            return
        packet = dict(packet)
        packet["ttl"] = ttl - 1
        self.forwarded += 1
        self.unicast(next_hop, GEO_KIND, packet)

    def _closest_neighbor(self, dest: Position,
                          my_distance: float) -> Optional[int]:
        best_id, best_distance = None, my_distance
        medium = self.mote.medium
        for neighbor_id in medium.neighbors_of(self.node_id):
            d = distance(medium.port(neighbor_id).position, dest)
            if d < best_distance:
                best_id, best_distance = neighbor_id, d
        return best_id

    def _deliver(self, packet: Dict[str, Any]) -> None:
        handler = self._handlers.get(packet.get("inner_kind", ""))
        if handler is None:
            self.record("undeliverable", kind=packet.get("inner_kind"))
            return
        self.delivered += 1
        handler(packet.get("inner", {}), int(packet.get("origin", -1)))
