"""Property-based tests for the EnviroTrack language pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse_source, tokenize
from repro.naming import FieldBounds, hash_to_coordinate

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True) \
    .filter(lambda s: s not in {
        "begin", "end", "context", "object", "activation", "deactivation",
        "invocation", "and", "or", "not", "true", "false", "if", "else",
        "self", "min", "ms", "s"})


@given(identifiers, identifiers, identifiers,
       st.integers(min_value=1, max_value=9),
       st.floats(min_value=0.1, max_value=60.0),
       st.floats(min_value=0.1, max_value=60.0))
@settings(max_examples=60)
def test_generated_programs_round_trip(ctx_name, var_name, obj_name,
                                       confidence, freshness, period):
    """Any well-formed generated program parses into the declared
    structure with the declared attribute values."""
    if len({ctx_name, var_name, obj_name}) < 3:
        return
    source = f"""
    begin context {ctx_name}
        activation: magnetic_sensor_reading()
        {var_name} : avg(position) confidence={confidence}, \
freshness={freshness:.3f}s
        begin object {obj_name}
            invocation: TIMER({period:.3f}s)
            run() {{
                MySend(pursuer, self:label, {var_name});
            }}
        end
    end context
    """
    program = parse_source(source)
    context = program.context(ctx_name)
    aggregate = context.aggregates[0]
    assert aggregate.name == var_name
    assert aggregate.attribute("confidence") == confidence
    assert abs(aggregate.attribute("freshness") - freshness) < 1e-2
    function = context.objects[0].functions[0]
    assert abs(function.invocation.period - period) < 1e-2


@given(st.text(alphabet="abcdefgh(){}:;=<>,.0123456789 \n", max_size=80))
@settings(max_examples=120)
def test_lexer_terminates_or_raises_cleanly(source):
    """The lexer either tokenizes or raises LexError — never hangs or
    raises anything else."""
    from repro.lang import LexError
    try:
        tokens = tokenize(source)
    except LexError:
        return
    assert tokens[-1].kind == "eof"


@given(st.text(min_size=0, max_size=40),
       st.floats(min_value=-100, max_value=100),
       st.floats(min_value=-100, max_value=100),
       st.floats(min_value=1.0, max_value=1000.0),
       st.floats(min_value=1.0, max_value=1000.0))
@settings(max_examples=100)
def test_geohash_total_and_in_bounds(name, x_lo, y_lo, width, height):
    bounds = FieldBounds(x_lo, y_lo, x_lo + width, y_lo + height)
    point = hash_to_coordinate(name, bounds)
    assert bounds.contains(point)
    assert hash_to_coordinate(name, bounds) == point
