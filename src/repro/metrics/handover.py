"""Context-label coherence and handover analysis (Figures 4, 5, 6).

The paper's definitions (§6.1–6.2):

* a **successful handover** — "the context label successfully follows tank
  location by virtue of leadership changeover from one member node to
  another along the target's path";
* an **unsuccessful handover** — "a new context label is spawned at the new
  tank's location, not realizing that it refers to the same tank", which
  violates context label coherence;
* the **maximum trackable speed** — "the highest target speed at which the
  single group abstraction is maintained", i.e. the highest speed at which
  coherence holds.

For a single-target run, every ``gm.takeover``/``gm.claim`` leader start is
a successful handover, and every ``gm.label_created`` beyond the first is a
spawned duplicate — an unsuccessful one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import Simulator


@dataclass(frozen=True)
class HandoverStats:
    """Handover and coherence summary of one single-target run.

    The protocol *expects* short-lived spurious labels — "we allow spurious
    (i.e., minority) leaders to emerge.  These leaders, however, are
    unlikely to gather critical mass and hence will not affect system
    behavior."  Coherence therefore counts **effective** labels only:
    created labels that actually represented the target for longer than a
    suppression grace period.  A duplicate killed by the weight rule within
    a heartbeat or two is a non-event; a duplicate that persists (the tank
    "appearing replicated to the application") is a failed handover.
    """

    labels_created: int
    takeovers: int
    claims: int
    yields: int
    suppressions: int
    leader_starts: List[Tuple[float, str, str]]  # (time, label, via)
    #: Cumulative time each label spent with some leader serving it.
    label_led_time: Dict[str, float]
    #: Led time below which a created label counts as suppressed noise.
    grace: float

    def effective_labels(self) -> List[str]:
        return sorted(label for label, led in self.label_led_time.items()
                      if led >= self.grace)

    @property
    def successful_handovers(self) -> int:
        return self.takeovers + self.claims

    @property
    def failed_handovers(self) -> int:
        """Effective duplicate labels spawned for the same target."""
        return max(0, len(self.effective_labels()) - 1)

    @property
    def handover_success_pct(self) -> Optional[float]:
        """Percent of handovers that preserved the label; None when the
        run had no handovers at all."""
        total = self.successful_handovers + self.failed_handovers
        if total == 0:
            return None
        return 100.0 * self.successful_handovers / total

    @property
    def coherent(self) -> bool:
        """Single-group abstraction maintained for the whole run."""
        return len(self.effective_labels()) <= 1

    def distinct_leading_labels(self) -> List[str]:
        return sorted({label for _, label, _ in self.leader_starts})


def analyze_handovers(sim: Simulator, context_type: str,
                      grace: float = 2.0) -> HandoverStats:
    """Extract handover statistics from a finished run's trace.

    ``grace``: minimum cumulative led time for a created label to count as
    effective; set it to a few heartbeat periods (suppression of an entry
    race completes within roughly one period).
    """
    labels_created = 0
    takeovers = 0
    claims = 0
    yields = 0
    suppressions = 0
    leader_starts: List[Tuple[float, str, str]] = []
    open_tenures: Dict[Tuple[Optional[int], str], float] = {}
    led_time: Dict[str, float] = {}
    for rec in sim.trace:
        detail_type = rec.detail.get("type")
        if detail_type != context_type:
            continue
        label = rec.detail.get("label", "")
        if rec.category == "gm.label_created":
            labels_created += 1
            led_time.setdefault(label, 0.0)
        elif rec.category == "gm.takeover":
            takeovers += 1
        elif rec.category == "gm.claim":
            claims += 1
        elif rec.category == "gm.yield":
            yields += 1
        elif rec.category == "gm.label_deleted":
            suppressions += 1
        elif rec.category == "gm.leader_start":
            leader_starts.append((rec.time, label,
                                  rec.detail.get("via", "")))
            open_tenures[(rec.node, label)] = rec.time
        elif rec.category == "gm.leader_stop":
            begin = open_tenures.pop((rec.node, label), None)
            if begin is not None:
                led_time[label] = led_time.get(label, 0.0) \
                    + (rec.time - begin)
    for (_, label), begin in open_tenures.items():
        led_time[label] = led_time.get(label, 0.0) + (sim.now - begin)
    return HandoverStats(labels_created=labels_created,
                         takeovers=takeovers, claims=claims, yields=yields,
                         suppressions=suppressions,
                         leader_starts=leader_starts,
                         label_led_time=led_time, grace=grace)


def handoff_latencies(sim: Simulator, context_type: str
                      ) -> List[float]:
    """Per-handover gap between one leader stopping and the next leader
    starting on the *same label* (seconds; 0 when the successor started
    first, as during yields).

    Relinquish handoffs complete in a claim window; takeover handoffs in
    roughly the receive timeout — this is the latency that bounds the max
    trackable speed in §6.2.
    """
    active: Dict[str, int] = {}
    vacant_since: Dict[str, float] = {}
    latencies: List[float] = []
    for rec in sim.trace:
        if rec.detail.get("type") != context_type:
            continue
        label = rec.detail.get("label", "")
        if rec.category == "gm.leader_start":
            if label in vacant_since:
                latencies.append(rec.time - vacant_since.pop(label))
            active[label] = active.get(label, 0) + 1
        elif rec.category == "gm.leader_stop":
            count = active.get(label, 0) - 1
            active[label] = max(0, count)
            if count <= 0:
                # The label is now leaderless: the handoff gap starts.
                vacant_since[label] = rec.time
    return latencies


def tracking_coverage(sim: Simulator, context_type: str,
                      start: float, end: float,
                      max_gap: float) -> float:
    """Fraction of [start, end] during which *some* leader served the
    target, judged by gaps between leader tenures.

    A leader tenure runs from its ``gm.leader_start`` to the matching
    ``gm.leader_stop`` (or the end of the run).  Coverage below 1.0 means
    the entity went unrepresented — e.g. it escaped during a takeover.
    """
    if end <= start:
        raise ValueError(f"empty interval [{start}, {end}]")
    intervals: List[Tuple[float, float]] = []
    open_starts: dict = {}
    for rec in sim.trace:
        if rec.detail.get("type") != context_type:
            continue
        key = (rec.node, rec.detail.get("label"))
        if rec.category == "gm.leader_start":
            open_starts[key] = rec.time
        elif rec.category == "gm.leader_stop" and key in open_starts:
            intervals.append((open_starts.pop(key), rec.time))
    for begin in open_starts.values():
        intervals.append((begin, end))
    clipped = [(max(lo, start), min(hi, end)) for lo, hi in intervals
               if min(hi, end) > max(lo, start)]
    if not clipped:
        return 0.0
    clipped.sort()
    # Merge tenures, bridging micro-gaps up to max_gap (handover churn).
    merged = [list(clipped[0])]
    for lo, hi in clipped[1:]:
        if lo <= merged[-1][1] + max_gap:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    covered = sum(hi - lo for lo, hi in merged)
    return min(1.0, covered / (end - start))
