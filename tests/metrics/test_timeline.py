"""Tests for the timeline sampler."""

import pytest

from repro.experiments import TankScenario, build_app
from repro.metrics import TimelineSampler


def make_run(**scenario_kwargs):
    scenario = TankScenario(columns=10, rows=2, seed=7,
                            with_base_station=False, **scenario_kwargs)
    app = build_app(scenario)
    app.install()
    sampler = TimelineSampler(app, period=2.0)
    app.run(until=scenario.duration)
    return app, sampler, scenario


def test_samples_collected_at_period():
    app, sampler, scenario = make_run()
    assert len(sampler.samples) == pytest.approx(
        scenario.duration / 2.0, abs=2)
    times = [s.time for s in sampler.samples]
    assert times == sorted(times)


def test_leadership_spans_follow_target():
    app, sampler, _ = make_run()
    spans = sampler.leadership_spans("tracker")
    assert spans, "no leadership observed"
    # Leadership moves to higher-x nodes as the target advances.
    first_leader = spans[0][0]
    last_leader = spans[-1][0]
    x_first = app.field.motes[first_leader].position[0]
    x_last = app.field.motes[last_leader].position[0]
    assert x_last > x_first


def test_group_size_rises_then_falls():
    app, sampler, _ = make_run()
    series = sampler.group_size_series("tracker")
    sizes = [size for _, size in series]
    assert max(sizes) >= 2
    assert sizes[-1] == 0  # target has left the field


def test_targets_ground_truth_recorded():
    app, sampler, scenario = make_run()
    sample = sampler.samples[len(sampler.samples) // 2]
    assert "tank" in sample.targets
    x, y = sample.targets["tank"]
    assert x == pytest.approx(
        -scenario.start_margin + scenario.speed * sample.time, abs=1e-6)


def test_stop_halts_sampling():
    scenario = TankScenario(columns=8, rows=2, seed=7,
                            with_base_station=False)
    app = build_app(scenario)
    app.install()
    sampler = TimelineSampler(app, period=1.0)
    app.run(until=5.0)
    count = len(sampler.samples)
    sampler.stop()
    app.sim.run(until=20.0)
    assert len(sampler.samples) == count


def test_rejects_bad_period():
    scenario = TankScenario(columns=8, rows=2, with_base_station=False)
    app = build_app(scenario)
    app.install()
    with pytest.raises(ValueError):
        TimelineSampler(app, period=0.0)
