"""Tests for the SVG renderer and the CLI."""

import xml.dom.minidom

import pytest

from repro.analysis import BarChart, LineChart
from repro.analysis.render import (figure3_chart, figure4_chart,
                                   figure5_chart, figure6_chart)
from repro.cli import build_parser, main
from repro.experiments.figures import (Figure4Cell, Figure4Result,
                                       Figure5Point, Figure5Result,
                                       Figure6Point, Figure6Result)
from repro.metrics import SpeedSearchResult


def assert_valid_svg(text):
    document = xml.dom.minidom.parseString(text)
    assert document.documentElement.tagName == "svg"
    return document


class TestLineChart:
    def test_renders_series_and_legend(self):
        chart = LineChart(title="t", x_label="x", y_label="y")
        chart.add_series("a", [(0, 0), (1, 1), (2, 4)])
        chart.add_series("b", [(0, 2), (1, 3)], dashed=True)
        svg = chart.to_svg()
        assert_valid_svg(svg)
        assert svg.count("<polyline") == 2
        assert ">a<" in svg and ">b<" in svg
        assert "stroke-dasharray" in svg

    def test_log_x_axis(self):
        chart = LineChart(title="t", log_x=True)
        chart.add_series("a", [(0.125, 1), (0.5, 2), (2.0, 3)])
        assert_valid_svg(chart.to_svg())

    def test_log_x_rejects_nonpositive(self):
        chart = LineChart(title="t", log_x=True)
        chart.add_series("a", [(0.0, 1)])
        with pytest.raises(ValueError):
            chart.to_svg()

    def test_empty_chart_renders(self):
        assert_valid_svg(LineChart(title="empty").to_svg())

    def test_save(self, tmp_path):
        chart = LineChart(title="t")
        chart.add_series("a", [(0, 0), (1, 1)])
        path = tmp_path / "chart.svg"
        chart.save(str(path))
        assert_valid_svg(path.read_text())

    def test_title_escaped(self):
        chart = LineChart(title="a < b & c")
        svg = chart.to_svg()
        assert "a &lt; b &amp; c" in svg


class TestBarChart:
    def make(self):
        return BarChart(title="t", groups=["g1", "g2"],
                        series_names=["s1", "s2"],
                        values=[[100.0, 50.0], [90.0, 40.0]],
                        y_label="%")

    def test_renders_all_bars(self):
        svg = self.make().to_svg()
        assert_valid_svg(svg)
        # 4 bars + 2 legend swatches.
        assert svg.count("<rect") >= 6

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BarChart(title="t", groups=["g"], series_names=["a", "b"],
                     values=[[1.0]]).to_svg()
        with pytest.raises(ValueError):
            BarChart(title="t", groups=["g", "h"], series_names=["a"],
                     values=[[1.0]]).to_svg()


def search(speed):
    return SpeedSearchResult(max_trackable_speed=speed,
                             evaluated=[(speed, 1.0)])


class TestFigureCharts:
    def test_figure4_chart(self):
        result = Figure4Result(cells=[
            Figure4Cell(33, True, 100.0, 3),
            Figure4Cell(33, False, 87.0, 3),
            Figure4Cell(50, True, 100.0, 3),
            Figure4Cell(50, False, 78.0, 3),
        ])
        assert_valid_svg(figure4_chart(result).to_svg())

    def test_figure5_chart(self):
        result = Figure5Result(points=[
            Figure5Point(0.25, 1.0, "takeover", search(3.0)),
            Figure5Point(0.5, 1.0, "takeover", search(1.0)),
            Figure5Point(0.25, 1.0, "relinquish", search(5.0)),
        ])
        svg = figure5_chart(result).to_svg()
        assert_valid_svg(svg)
        assert "takeover" in svg and "relinquish" in svg

    def test_figure6_chart(self):
        result = Figure6Result(points=[
            Figure6Point(1.0, 2.0, search(0.0)),
            Figure6Point(2.0, 2.0, search(4.0)),
        ])
        assert_valid_svg(figure6_chart(result).to_svg())


class TestCli:
    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_figure3_run_and_svg(self, tmp_path):
        lines = []
        svg_path = tmp_path / "figure3.svg"
        exit_code = main(["figure3", "--svg", str(svg_path)],
                         out=lines.append)
        assert exit_code == 0
        output = "\n".join(lines)
        assert "Figure 3" in output
        assert_valid_svg(svg_path.read_text())
        # figure3_chart integration (real run, not synthetic).
        result3 = None

    def test_table1_quick(self):
        lines = []
        assert main(["table1", "--quick"], out=lines.append) == 0
        assert any("Table 1" in line for line in lines)
