"""Unit tests for radio statistics accounting."""

import pytest

from repro.radio import RadioStats


def test_send_receive_counters():
    stats = RadioStats()
    stats.on_send("hb", 288, node=1, now=1.0)
    stats.on_send("hb", 288, node=2, now=2.0)
    stats.on_receive("hb", now=2.1)
    assert stats.frames_sent == 2
    assert stats.bits_sent == 576
    assert stats.sent_by_kind["hb"] == 2
    assert stats.received_by_kind["hb"] == 1
    assert stats.bits_sent_by_node[1] == 288


def test_loss_fraction_by_kind():
    stats = RadioStats()
    for _ in range(4):
        stats.on_send("hb", 288, node=1, now=0.0)
    stats.on_frame_lost("hb")
    stats.on_send("report", 288, node=2, now=0.0)
    assert stats.loss_fraction("hb") == pytest.approx(0.25)
    assert stats.loss_fraction("report") == 0.0
    assert stats.loss_fraction() == pytest.approx(0.2)


def test_loss_fraction_empty_is_zero():
    assert RadioStats().loss_fraction() == 0.0
    assert RadioStats().loss_fraction("hb") == 0.0


def test_reception_loss_fraction():
    stats = RadioStats()
    for dropped in (False, False, True, False):
        stats.on_reception_attempt("hb", dropped)
    assert stats.reception_loss_fraction("hb") == pytest.approx(0.25)
    assert stats.reception_loss_fraction("other") == 0.0


def test_addressed_loss_fraction():
    stats = RadioStats()
    stats.on_addressed_outcome("report", delivered=True)
    stats.on_addressed_outcome("report", delivered=False)
    stats.on_addressed_outcome("report", delivered=True)
    assert stats.addressed_loss_fraction("report") == pytest.approx(1 / 3)
    assert stats.addressed_loss_fraction("none") == 0.0


def test_link_utilization():
    stats = RadioStats(started_at=0.0)
    stats.on_send("x", 5000, node=0, now=1.0)
    # 5000 bits over 10 s on a 50 kbps link = 1%.
    assert stats.link_utilization(50_000.0, now=10.0) == pytest.approx(
        0.01)


def test_link_utilization_zero_elapsed():
    stats = RadioStats(started_at=5.0)
    assert stats.link_utilization(50_000.0, now=5.0) == 0.0


def test_reset_zeroes_everything():
    stats = RadioStats()
    stats.on_send("x", 100, node=0, now=1.0)
    stats.on_reception_attempt("x", True)
    stats.on_addressed_outcome("x", False)
    stats.on_frame_lost("x")
    stats.reset(now=9.0)
    assert stats.frames_sent == 0
    assert stats.bits_sent == 0
    assert stats.frames_lost == 0
    assert stats.reception_loss_fraction("x") == 0.0
    assert stats.addressed_loss_fraction("x") == 0.0
    assert stats.started_at == 9.0
