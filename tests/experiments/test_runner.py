"""Determinism and parity tests for the parallel sweep runner.

The contract under test: a sweep's results are a pure function of its
scenario descriptions — repeating a run, moving it to a worker process,
or switching the medium's spatial index must never change a single trace
record.
"""

import pickle
from dataclasses import replace

from repro.experiments import (TankScenario, chaos, derive_run_seed,
                               parallel_map, run_scenario_outcome,
                               run_scenarios, table1)
from repro.experiments.figures import (_SpeedSearchTask,
                                       _speed_search_worker)

#: Small canned scenario: short corridor, fast run, full stack.
CANNED = TankScenario(columns=6, rows=2, seed=123)


def test_outcome_digest_stable_across_repeats():
    # Golden-trace determinism: the same scenario twice in one process
    # yields identical outcomes, down to the whole-trace digest.
    first = run_scenario_outcome(CANNED)
    second = run_scenario_outcome(CANNED)
    assert first.trace_digest == second.trace_digest
    assert first == second


def test_run_scenarios_parallel_equals_serial():
    scenarios = [CANNED.with_seed(seed) for seed in (1, 2, 3, 4)]
    serial = run_scenarios(scenarios, jobs=1)
    parallel = run_scenarios(scenarios, jobs=2)
    assert [outcome.trace_digest for outcome in serial] == \
        [outcome.trace_digest for outcome in parallel]
    assert serial == parallel


def test_grid_and_bruteforce_full_stack_agree():
    # The spatial index must be invisible to the whole application stack:
    # same seed, same trace, same analysis results.
    grid = run_scenario_outcome(CANNED)
    brute = run_scenario_outcome(replace(CANNED,
                                         medium_index="bruteforce"))
    assert grid.trace_digest == brute.trace_digest
    assert grid.successful_handovers == brute.successful_handovers
    assert grid.failed_handovers == brute.failed_handovers
    assert grid.labels_created == brute.labels_created
    assert grid.coherent == brute.coherent
    assert grid.coverage == brute.coverage
    assert grid.communication == brute.communication


def test_parallel_map_inline_and_pooled():
    tasks = [-3, 1, -4, 1, -5]
    assert parallel_map(abs, tasks, jobs=1) == [3, 1, 4, 1, 5]
    assert parallel_map(abs, tasks, jobs=2) == [3, 1, 4, 1, 5]
    assert parallel_map(abs, [], jobs=4) == []


def test_derive_run_seed_properties():
    assert derive_run_seed(7, "a", 1) == derive_run_seed(7, "a", 1)
    assert derive_run_seed(7, "a", 1) != derive_run_seed(7, "a", 2)
    assert derive_run_seed(7, "a") != derive_run_seed(8, "a")
    assert 0 <= derive_run_seed(7, "x", 3.5) < 2 ** 63


def test_speed_search_task_picklable():
    # Figure 5/6 fan their cells out to worker processes; the task and
    # the worker function must survive pickling.
    task = _SpeedSearchTask(mode="takeover", sensing_radius=1.0,
                            speeds=(0.5, 1.0), repetitions=1, seed_base=1)
    assert pickle.loads(pickle.dumps(task)) == task
    pickle.dumps(_speed_search_worker)


def test_chaos_jobs_parity():
    serial = chaos(quick=True, jobs=1)
    parallel = chaos(quick=True, jobs=2)
    assert serial.format_table() == parallel.format_table()


def test_table1_jobs_parity():
    serial = table1(quick=True, jobs=1)
    parallel = table1(quick=True, jobs=2)
    assert serial.format_table() == parallel.format_table()
