"""Tests for the evaluation scenario builders."""

import pytest

from repro.experiments import (SPEED_33_KMH, SPEED_50_KMH, TankScenario,
                               build_app, build_tracker_definition,
                               run_tank_scenario)


class TestScenarioGeometry:
    def test_paper_speed_constants(self):
        # 10 s/hop and 15 s/hop at the 1000:1 / 140 m scale.
        assert SPEED_50_KMH == pytest.approx(0.1)
        assert SPEED_33_KMH == pytest.approx(1.0 / 15.0)

    def test_entry_exit_times(self):
        scenario = TankScenario(columns=12, speed=0.1, start_margin=1.5,
                                sensing_radius=1.0)
        assert scenario.entry_time == pytest.approx(5.0)
        assert scenario.exit_time == pytest.approx((1.5 + 11 + 1.0) / 0.1)
        assert scenario.duration > scenario.exit_time

    def test_track_y_between_rows(self):
        assert TankScenario(rows=2).track_y == pytest.approx(0.5)
        assert TankScenario(rows=5).track_y == pytest.approx(2.0)

    def test_with_helpers(self):
        scenario = TankScenario()
        assert scenario.with_speed(2.0).speed == 2.0
        assert scenario.with_seed(9).seed == 9


class TestBuildApp:
    def test_deploys_grid_and_target(self):
        scenario = TankScenario(columns=6, rows=2)
        app = build_app(scenario)
        # 12 motes + base station.
        assert len(app.field.motes) == 13
        target = app.field.target("tank")
        assert target.kind == "vehicle"
        x0, y0 = target.position(0.0)
        assert x0 == pytest.approx(-scenario.start_margin)
        assert y0 == pytest.approx(scenario.track_y)

    def test_jittered_deployment(self):
        scenario = TankScenario(columns=6, rows=2, deployment_jitter=0.3,
                                with_base_station=False)
        app = build_app(scenario)
        offsets = [abs(mote.position[0] - round(mote.position[0]))
                   for mote in app.field.mote_list()]
        assert any(offset > 0.01 for offset in offsets)

    def test_tracker_definition_matches_scenario(self):
        scenario = TankScenario(heartbeat_period=0.25, confidence=3,
                                freshness=2.0, relinquish=False)
        definition = build_tracker_definition(scenario)
        assert definition.group.heartbeat_period == 0.25
        assert not definition.group.relinquish
        spec = definition.aggregate("location")
        assert spec.confidence == 3
        assert spec.freshness == 2.0


class TestRunResult:
    def test_result_structure(self):
        result = run_tank_scenario(TankScenario(columns=8, seed=2))
        assert result.handovers.labels_created >= 1
        assert 0.0 <= result.coverage <= 1.0
        assert result.communication.frames_sent > 0
        assert result.comparison is not None

    def test_determinism(self):
        a = run_tank_scenario(TankScenario(columns=8, seed=5))
        b = run_tank_scenario(TankScenario(columns=8, seed=5))
        assert a.communication == b.communication
        assert a.handovers.labels_created == b.handovers.labels_created
        assert a.coverage == b.coverage

    def test_leader_kill_injection(self):
        scenario = TankScenario(columns=8, seed=2,
                                leader_kill_times=(20.0,))
        result = run_tank_scenario(scenario)
        fails = list(result.app.sim.trace_records("node.fail"))
        assert len(fails) == 1
