"""Tests for reliable MTP delivery: acks, retries, escalation, dedup."""

import random

import pytest

from repro.groups import GroupConfig, GroupManager
from repro.naming import DirectoryService, FieldBounds
from repro.sensing import SensorField
from repro.sim import Simulator
from repro.transport import (DeadLetter, DeadLetterQueue, DedupTable,
                             GeoRouter, Invocation, MtpAgent,
                             ReliabilityConfig, SequenceCounters)


# ----------------------------------------------------------------------
# Pure-state primitives
# ----------------------------------------------------------------------
def test_reliability_config_rejects_bad_knobs():
    for kwargs in ({"ack_timeout": 0.0}, {"backoff_factor": 0.5},
                   {"jitter": 1.0}, {"jitter": -0.1},
                   {"max_retries": -1}, {"max_escalations": -1},
                   {"dedup_connections": 0}, {"dedup_window": 0},
                   {"dead_letter_capacity": 0}):
        with pytest.raises(ValueError):
            ReliabilityConfig(**kwargs)


def test_retry_delay_backoff_and_determinism():
    config = ReliabilityConfig(ack_timeout=0.5, backoff_factor=2.0,
                               jitter=0.1)
    no_jitter = ReliabilityConfig(ack_timeout=0.5, backoff_factor=2.0,
                                  jitter=0.0)
    rng = random.Random(7)
    assert no_jitter.retry_delay(0, rng) == 0.5
    assert no_jitter.retry_delay(2, rng) == 2.0
    # Jittered delays stay within the band and replay exactly from an
    # identically seeded stream.
    first = [config.retry_delay(i, random.Random(7)) for i in range(4)]
    second = [config.retry_delay(i, random.Random(7)) for i in range(4)]
    assert first == second
    for attempt, delay in enumerate(first):
        base = 0.5 * 2.0 ** attempt
        assert 0.9 * base <= delay <= 1.1 * base


def test_sequence_counters_are_per_connection():
    counters = SequenceCounters()
    a = ("x#1.1", 0, "y#1.1", 5)
    b = ("x#1.1", 0, "z#1.1", 5)
    assert [counters.next(a), counters.next(a), counters.next(b)] \
        == [1, 2, 1]
    counters.clear()
    assert counters.next(a) == 1


def test_dedup_table_at_most_once_and_bounds():
    table = DedupTable(connections=2, window=3)
    conn = ("a#1.1", 0, "b#1.1", 1)
    assert table.check_and_mark(conn, 1)
    assert not table.check_and_mark(conn, 1)
    assert table.duplicates == 1
    # The window forgets the oldest seq once it overflows.
    for seq in (2, 3, 4):
        assert table.check_and_mark(conn, seq)
    assert table.check_and_mark(conn, 1)  # aged out of the window
    # Connection LRU: a third connection evicts the least recent.
    other = ("c#1.1", 0, "b#1.1", 1)
    third = ("d#1.1", 0, "b#1.1", 1)
    table.check_and_mark(other, 1)
    table.check_and_mark(third, 1)
    assert len(table) == 2


def test_dedup_mark_prewarms_without_counting():
    table = DedupTable()
    conn = ("a#1.1", 0, "b#1.1", 1)
    table.mark(conn, 5)
    table.mark(conn, 5)  # idempotent, not a duplicate
    assert table.duplicates == 0
    # The pre-warmed pair suppresses the later direct delivery.
    assert not table.check_and_mark(conn, 5)
    assert table.duplicates == 1


def test_dead_letter_queue_bounded_with_reason_counts():
    queue = DeadLetterQueue(capacity=2)
    for i in range(3):
        queue.push(DeadLetter(payload={"n": i}, reason="retry_exhausted",
                              time=float(i)))
    queue.push(DeadLetter(payload={}, reason="unknown_label", time=9.0))
    assert queue.total == 4
    assert len(queue) == 2  # oldest evicted
    assert queue.by_reason == {"retry_exhausted": 3, "unknown_label": 1}
    queue.clear()
    assert len(queue) == 0 and queue.total == 4


# ----------------------------------------------------------------------
# Integration on a small grid
# ----------------------------------------------------------------------
class Net:
    """Grid fixture where every mote gets the full transport stack."""

    def __init__(self, columns=8, rows=4, communication_radius=2.5,
                 seed=4, base_loss_rate=0.0, reliability=None,
                 lookup_timeout=None, **agent_kwargs):
        self.sim = Simulator(seed=seed)
        self.field = SensorField(
            self.sim, communication_radius=communication_radius,
            base_loss_rate=base_loss_rate)
        self.field.deploy_grid(columns, rows)
        self.sensing = {}  # type name -> set of node ids
        bounds = FieldBounds(0.0, 0.0, float(columns - 1),
                             float(rows - 1))
        self.groups = {}
        self.mtp = {}
        for mote in self.field.mote_list():
            router = GeoRouter(mote)
            router.start()
            directory = DirectoryService(mote, router, bounds,
                                         hash_margin=1.0,
                                         lookup_timeout=lookup_timeout)
            directory.start()
            manager = GroupManager(mote)
            for type_name in ("alpha", "beta"):
                manager.track(
                    type_name,
                    lambda m, t=type_name: m.node_id in
                    self.sensing.get(t, set()),
                    GroupConfig(heartbeat_period=0.5))
            manager.start()
            agent = MtpAgent(mote, router, manager, directory=directory,
                             reliability=reliability, **agent_kwargs)
            agent.start()
            self.groups[mote.node_id] = manager
            self.mtp[mote.node_id] = agent

    def run(self, seconds):
        self.sim.run(until=self.sim.now + seconds)

    def leader_of(self, type_name):
        for node, manager in self.groups.items():
            if manager.is_leading(type_name):
                return node
        return None

    def register_label(self, type_name):
        leader = self.leader_of(type_name)
        manager = self.groups[leader]
        label = manager.label(type_name)
        mote = self.field.motes[leader]
        self.mtp[leader].directory.register(
            type_name, label, mote.position, leader)
        return leader, label


RELIABLE = ReliabilityConfig(ack_timeout=0.5, jitter=0.0, max_retries=3,
                             max_escalations=2)


def build_pair(**net_kwargs):
    """Elect alpha at node 0 and beta at the far corner; wire a handler."""
    net = Net(**net_kwargs)
    net.sensing = {"alpha": {0}, "beta": {31}}
    net.run(3.0)
    alpha_leader, alpha_label = net.register_label("alpha")
    beta_leader, beta_label = net.register_label("beta")
    net.run(2.0)
    received = []
    net.mtp[beta_leader].register_port(
        "beta", 5, lambda args, *meta: received.append(args))
    return net, alpha_leader, alpha_label, beta_leader, beta_label, \
        received


def test_reliable_invocation_acked_once():
    net, alpha_leader, alpha_label, beta_leader, beta_label, received = \
        build_pair(reliability=RELIABLE)
    sender = net.mtp[alpha_leader]
    sender.invoke(alpha_label, beta_label, 5, {"ping": 1})
    net.run(5.0)
    assert received == [{"ping": 1}]
    assert sender.acked == 1
    assert sender.retransmitted == 0
    assert not sender._outbox  # acked sends leave no state behind
    metrics = net.sim.metrics.get("repro_mtp_acks_total")
    assert metrics.value("sent") >= 1.0
    assert metrics.value("received") >= 1.0


def test_lost_frames_are_retransmitted_to_delivery():
    # A lossy channel, pointer pre-seeded so the test isolates the data
    # path: the reliable sender retransmits every lost frame until the
    # invocation lands and its ack returns.
    config = ReliabilityConfig(ack_timeout=0.5, jitter=0.0,
                               max_retries=6, max_escalations=2)
    net, alpha_leader, alpha_label, beta_leader, beta_label, received = \
        build_pair(reliability=config, base_loss_rate=0.1, seed=7,
                   lookup_timeout=1.0)
    sender = net.mtp[alpha_leader]
    sender.table.update(beta_label, beta_leader, net.sim.now)
    for n in range(5):
        sender.invoke(alpha_label, beta_label, 5, {"n": n})
    net.run(30.0)
    assert sorted(args["n"] for args in received) == [0, 1, 2, 3, 4]
    assert sender.acked == 5
    assert sender.retransmitted > 0
    assert net.sim.metrics.get(
        "repro_mtp_retransmits_total").value() == sender.retransmitted


def test_duplicate_deliveries_suppressed_and_reacked():
    # Force a retransmission of an already delivered invocation by
    # transmitting the same sequenced invocation twice by hand.
    net, alpha_leader, alpha_label, beta_leader, beta_label, received = \
        build_pair(reliability=RELIABLE)
    sender = net.mtp[alpha_leader]
    invocation = Invocation(
        src_label=alpha_label, src_port=0, src_leader=alpha_leader,
        dest_label=beta_label, dest_port=5, args={"ping": 1})
    sender._transmit(beta_leader, invocation)
    net.run(3.0)
    replay = Invocation(
        src_label=alpha_label, src_port=0, src_leader=alpha_leader,
        dest_label=beta_label, dest_port=5, args={"ping": 1},
        seq=invocation.seq)
    sender._transmit(beta_leader, replay)
    net.run(3.0)
    assert received == [{"ping": 1}]  # handler ran exactly once
    assert net.mtp[beta_leader].duplicates == 1


def test_delivery_prewarms_neighbor_dedup_tables():
    # After a fresh sequenced delivery the leader broadcasts a one-hop
    # dedup share; radio neighbors (takeover candidates) must then
    # suppress a redelivery of the same (connection, seq).
    net, alpha_leader, alpha_label, beta_leader, beta_label, received = \
        build_pair(reliability=RELIABLE)
    sender = net.mtp[alpha_leader]
    sender.invoke(alpha_label, beta_label, 5, {"ping": 1})
    net.run(5.0)
    assert received == [{"ping": 1}]
    conn = (alpha_label, 0, beta_label, 5)
    neighbor = net.mtp[beta_leader - 1]  # grid neighbor, in radio range
    assert not neighbor._dedup.check_and_mark(conn, 1)


def test_retry_exhaustion_escalates_then_dead_letters():
    # Point the sender at a label whose "leader" never answers (dead
    # mote), with no directory fallback able to rescue it.
    net = Net(reliability=RELIABLE)
    net.sensing = {"alpha": {0}}
    net.run(3.0)
    alpha_leader, alpha_label = net.register_label("alpha")
    net.run(2.0)
    sender = net.mtp[alpha_leader]
    sender.table.update("beta#9.9", 31, net.sim.now)
    net.field.fail_node(31)
    sender.invoke(alpha_label, "beta#9.9", 5, {"ping": 1})
    net.run(60.0)
    assert sender.dead_lettered == 1
    assert not sender._outbox
    letters = sender.dead_letters.letters()
    assert [letter.reason for letter in letters] == ["retry_exhausted"]
    assert letters[0].payload["dest_label"] == "beta#9.9"
    # Escalation ran: the stale pointer was evicted along the way.
    assert sender.table.peek("beta#9.9") is None


def test_escalation_recovers_via_fresh_lookup():
    # The sender holds a stale pointer at a dead node, but the directory
    # knows the real leader: escalation must re-resolve and deliver.
    net, alpha_leader, alpha_label, beta_leader, beta_label, received = \
        build_pair(reliability=RELIABLE)
    sender = net.mtp[alpha_leader]
    stale = next(node for node in (14, 15, 21)
                 if node not in (alpha_leader, beta_leader))
    sender.table.update(beta_label, stale, net.sim.now)
    net.field.fail_node(stale)
    sender.invoke(alpha_label, beta_label, 5, {"ping": 1})
    net.run(30.0)
    assert received == [{"ping": 1}]
    assert sender.dead_lettered == 0
    assert sender.acked == 1


def test_raw_mode_keeps_fire_and_forget_semantics():
    net, alpha_leader, alpha_label, beta_leader, beta_label, received = \
        build_pair()
    sender = net.mtp[alpha_leader]
    sender.invoke(alpha_label, beta_label, 5, {"ping": 1})
    net.run(5.0)
    assert received == [{"ping": 1}]
    assert sender.acked == 0  # unsequenced sends are never acked
    assert not sender._outbox


def test_negative_cache_only_on_authoritative_miss():
    from repro.naming import DirectoryEntry
    net = Net()
    agent = net.mtp[0]

    def queue(dest):
        invocation = Invocation(src_label="a#0.1", src_port=0,
                                src_leader=0, dest_label=dest,
                                dest_port=1, args={})
        agent._pending[dest] = [invocation]

    # An empty answer is ambiguous (timeout? nothing registered yet?):
    # it must NOT blackhole the label for the negative TTL.
    queue("ghost#1.1")
    agent._lookup_done("ghost#1.1", [])
    assert not agent._negative.fresh("ghost#1.1", agent.now)
    # A non-empty answer without our label is authoritative: cache it.
    other = DirectoryEntry(label="ghost#2.2", context_type="ghost",
                           location=(0.0, 0.0), leader=3, updated=0.0)
    queue("ghost#1.1")
    agent._lookup_done("ghost#1.1", [other])
    assert agent._negative.fresh("ghost#1.1", agent.now)
    # While fresh, repeat sends fail locally instead of re-querying.
    before = agent.dropped
    agent.invoke("a#0.1", "ghost#1.1", 1, {})
    assert agent.dropped == before + 1
    assert agent._pending.get("ghost#1.1") is None


# ----------------------------------------------------------------------
# Regressions: pending-lookup hygiene, pointers, chain clamp
# ----------------------------------------------------------------------
def test_pending_lookup_queue_does_not_leak_without_directory_answer():
    # Directory-side timeouts disabled: only the agent's own expiry
    # timer stands between a lost response and a leaked queue.
    net = Net(lookup_timeout=None, lookup_expiry=2.0)
    net.sensing = {"alpha": {0}}
    net.run(3.0)
    alpha_leader, alpha_label = net.register_label("alpha")
    net.run(2.0)
    sender = net.mtp[alpha_leader]
    sender.directory.lookup = lambda *args, **kwargs: None  # black hole
    sender.invoke(alpha_label, "ghost#1.1", 5, {})
    assert "ghost#1.1" in sender._pending
    net.run(10.0)
    assert sender._pending == {}
    assert sender._pending_expiry == {}
    assert sender.dropped == 1


def test_pending_overflow_drops_newest():
    net = Net(lookup_timeout=None, pending_limit=2)
    net.sensing = {"alpha": {0}}
    net.run(3.0)
    alpha_leader, alpha_label = net.register_label("alpha")
    sender = net.mtp[alpha_leader]
    sender.directory.lookup = lambda *args, **kwargs: None
    for n in range(4):
        sender.invoke(alpha_label, "ghost#1.1", 5, {"n": n})
    assert len(sender._pending["ghost#1.1"]) == 2
    assert sender.dropped == 2


def test_forward_evicts_useless_self_pointer():
    net = Net()
    agent = net.mtp[5]
    agent.table.update("ghost#1.1", 5, net.sim.now)  # points at itself
    invocation = Invocation(src_label="x#1.1", src_port=0, src_leader=0,
                            dest_label="ghost#1.1", dest_port=1, args={})
    agent._forward(invocation)
    assert agent.dropped == 1
    assert agent.table.peek("ghost#1.1") is None  # evicted, not kept


def test_negative_chain_budget_clamped_on_parse():
    invocation = Invocation.from_payload({
        "src_label": "x#1.1", "src_port": 0, "src_leader": 0,
        "dest_label": "y#1.1", "dest_port": 1, "args": {}, "chain": -7})
    assert invocation is not None
    assert invocation.chain == 0  # exhausted, not unlimited


def test_reboot_wipes_reliable_transport_state():
    net, alpha_leader, alpha_label, beta_leader, beta_label, received = \
        build_pair(reliability=RELIABLE)
    sender = net.mtp[alpha_leader]
    net.field.fail_node(beta_leader)
    sender.invoke(alpha_label, beta_label, 5, {"ping": 1})
    net.run(1.0)
    assert sender._outbox
    net.field.fail_node(alpha_leader)
    net.field.motes[alpha_leader].reboot()
    assert not sender._outbox
    assert not sender._pending
    assert len(sender.table) == 0
    before = sender.retransmitted
    net.run(10.0)  # any armed retransmit timer must have gone quiet
    assert sender.retransmitted == before
