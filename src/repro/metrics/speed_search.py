"""Maximum-trackable-speed search (Figures 5 and 6).

"The maximum trackable speed is the highest target speed at which the
single group abstraction is maintained" — i.e. the highest speed at which
context label coherence holds.  The stress benches evaluate a coherence
predicate at increasing speeds and report the last speed that passed.

Because individual runs are stochastic (loss, jitter), a speed "passes"
when a majority of its repetitions are coherent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

#: Returns True when a run at (speed, seed) maintained coherence.
CoherenceProbe = Callable[[float, int], bool]


@dataclass(frozen=True)
class SpeedSearchResult:
    """Outcome of one max-trackable-speed sweep."""

    max_trackable_speed: float
    evaluated: List[Tuple[float, float]]  # (speed, pass fraction)

    def passed(self, speed: float) -> bool:
        for s, frac in self.evaluated:
            if s == speed:
                return frac >= 0.5
        raise KeyError(f"speed {speed} was not evaluated")


def max_trackable_speed(probe: CoherenceProbe,
                        speeds: Sequence[float],
                        repetitions: int = 3,
                        seed_base: int = 0,
                        stop_after_failures: int = 2
                        ) -> SpeedSearchResult:
    """Sweep ``speeds`` ascending; return the highest coherent speed.

    Parameters
    ----------
    probe:
        Runs one experiment; True iff coherence was maintained.
    speeds:
        Candidate speeds in hops/second, ascending.
    repetitions:
        Independent runs per speed; majority vote decides.
    stop_after_failures:
        Early exit after this many consecutive failing speeds (the curve
        is monotone in the region of interest; this bounds runtime).
    """
    ordered = sorted(speeds)
    if not ordered:
        raise ValueError("no speeds to evaluate")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1: {repetitions}")
    best = 0.0
    evaluated: List[Tuple[float, float]] = []
    consecutive_failures = 0
    for speed_index, speed in enumerate(ordered):
        passes = 0
        for rep in range(repetitions):
            seed = seed_base + 1000 * speed_index + rep
            if probe(speed, seed):
                passes += 1
        fraction = passes / repetitions
        evaluated.append((speed, fraction))
        if fraction >= 0.5:
            best = speed
            consecutive_failures = 0
        else:
            consecutive_failures += 1
            if consecutive_failures >= stop_after_failures:
                break
    return SpeedSearchResult(max_trackable_speed=best, evaluated=evaluated)
