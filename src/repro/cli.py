"""Command-line interface: reproduce any of the paper's experiments.

Examples::

    python -m repro figure3 --svg figure3.svg
    python -m repro table1 --repetitions 3
    python -m repro figure5 --quick
    python -m repro chaos --quick --svg chaos.svg --trace-out chaos.jsonl
    python -m repro chaos --profile transport --quick
    python -m repro all --quick --out-dir figures/ --jobs 4
    python -m repro bench --quick --profiler-overhead
    python -m repro report --quick --svg dashboard.svg
    python -m repro report saved-trace.jsonl --prom metrics.prom
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Optional

from .analysis import (chaos_chart, figure3_chart, figure4_chart,
                       figure5_chart, figure6_chart,
                       transport_chaos_chart)
from .experiments import (BenchResult, bench_medium, chaos,
                          check_regression, figure3, figure4, figure5,
                          figure6, table1, transport_chaos)
from .experiments.bench import (BASELINE_FILENAME,
                                ENGINE_BASELINE_FILENAME,
                                MTP_BASELINE_FILENAME, EngineBenchResult,
                                MtpBenchResult, OVERHEAD_FACTOR,
                                bench_engine, bench_mtp,
                                bench_telemetry_overhead,
                                check_engine_regression,
                                check_mtp_regression)

EXPERIMENTS = ("figure3", "figure4", "table1", "figure5", "figure6",
               "chaos")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the EnviroTrack (ICDCS 2004) evaluation: "
                    "Figures 3-6 and Table 1; check/format EnviroTrack "
                    "programs with 'compile <file>'; run the medium "
                    "microbenchmark with 'bench'; or render a run "
                    "report with 'report'.")
    parser.add_argument("experiment",
                        choices=EXPERIMENTS + ("all", "compile", "bench",
                                               "report"),
                        help="which experiment to run, 'compile', "
                             "'bench', or 'report'")
    parser.add_argument("source", nargs="?", default=None,
                        help="EnviroTrack program file (compile) or a "
                             "saved JSONL trace (report; omit to report "
                             "on a fresh live run)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink sweeps for a fast smoke run")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed, applied to every experiment "
                             "(figure3 seeds its single run; sweeps use "
                             "it as their seed-ladder base).  Defaults "
                             "match each experiment's published ladder.")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="independent runs per parameter point")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel worker processes for the sweep "
                             "experiments (0 = one per core; results are "
                             "identical to --jobs 1)")
    parser.add_argument("--svg", metavar="PATH", default=None,
                        help="also write the figure (or the report "
                             "dashboard) as an SVG chart")
    parser.add_argument("--out-dir", metavar="DIR", default=None,
                        help="with 'all': write every SVG into DIR")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a representative run's trace as "
                             "JSONL (sweeps rerun their first scenario "
                             "serially; with 'all' + --out-dir, one "
                             "<experiment>.trace.jsonl per experiment)")
    parser.add_argument("--profile", choices=("leader", "transport"),
                        default="leader",
                        help="chaos: 'leader' sweeps leader-crash "
                             "recovery latency (default); 'transport' "
                             "pits reliable MTP against fire-and-forget "
                             "under crashes + loss spikes")
    parser.add_argument("--prom", metavar="PATH", default=None,
                        help="report: also write the metrics registry "
                             "in Prometheus text format")
    parser.add_argument("--baseline", metavar="PATH",
                        default=BASELINE_FILENAME,
                        help="bench: baseline JSON to compare against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="bench: rewrite the baseline file from this "
                             "run instead of checking against it")
    parser.add_argument("--profiler-overhead", action="store_true",
                        help="bench: also measure telemetry overhead "
                             "with the profiler disabled and fail if it "
                             f"exceeds {OVERHEAD_FACTOR:.2f}x")
    parser.add_argument("--mtp", action="store_true",
                        help="bench: also run the reliable-vs-raw MTP "
                             "frame-overhead bench and gate it against "
                             "its baseline (deterministic counts)")
    parser.add_argument("--mtp-baseline", metavar="PATH",
                        default=MTP_BASELINE_FILENAME,
                        help="bench --mtp: baseline JSON to compare "
                             "against")
    parser.add_argument("--engine", action="store_true",
                        help="bench: also run the event-engine "
                             "timer-churn bench (lazy vs heap scheduler, "
                             "digests verified equal) and gate it "
                             "against its baseline")
    parser.add_argument("--engine-baseline", metavar="PATH",
                        default=ENGINE_BASELINE_FILENAME,
                        help="bench --engine: baseline JSON to compare "
                             "against")
    return parser


def _sweep_kwargs(args, trace_out: Optional[str]) -> dict:
    """Common knobs for the sweep experiments (everything but figure3)."""
    kwargs = {"quick": args.quick, "jobs": args.jobs,
              "trace_out": trace_out}
    if args.repetitions is not None:
        kwargs["repetitions"] = args.repetitions
    if args.seed is not None:
        kwargs["seed_base"] = args.seed
    return kwargs


def _run_figure3(args, trace_out: Optional[str]) -> tuple:
    result = figure3(seed=1 if args.seed is None else args.seed,
                     trace_out=trace_out)
    return result, figure3_chart(result)


def _run_figure4(args, trace_out: Optional[str]) -> tuple:
    result = figure4(**_sweep_kwargs(args, trace_out))
    return result, figure4_chart(result)


def _run_table1(args, trace_out: Optional[str]) -> tuple:
    return table1(**_sweep_kwargs(args, trace_out)), None


def _run_figure5(args, trace_out: Optional[str]) -> tuple:
    result = figure5(**_sweep_kwargs(args, trace_out))
    return result, figure5_chart(result)


def _run_figure6(args, trace_out: Optional[str]) -> tuple:
    result = figure6(**_sweep_kwargs(args, trace_out))
    return result, figure6_chart(result)


def _run_chaos(args, trace_out: Optional[str]) -> tuple:
    if args.profile == "transport":
        result = transport_chaos(**_sweep_kwargs(args, trace_out))
        return result, transport_chaos_chart(result)
    result = chaos(**_sweep_kwargs(args, trace_out))
    return result, chaos_chart(result)


RUNNERS: dict = {
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "table1": _run_table1,
    "figure5": _run_figure5,
    "figure6": _run_figure6,
    "chaos": _run_chaos,
}


def run_one(name: str, args, svg_path: Optional[str],
            out: Callable[[str], None],
            trace_path: Optional[str] = None) -> None:
    started = time.time()
    result, chart = RUNNERS[name](args, trace_path)
    elapsed = time.time() - started
    out(result.format_table())
    out(f"[{name} completed in {elapsed:.1f}s]")
    if svg_path and chart is not None:
        chart.save(svg_path)
        out(f"[wrote {svg_path}]")
    elif svg_path:
        out(f"[{name} has no chart rendering; SVG skipped]")
    if trace_path:
        out(f"[wrote trace {trace_path}]")


def _run_compile(args, out: Callable[[str], None]) -> int:
    """Validate an EnviroTrack program and print its canonical form."""
    from .lang import (CompileError, LexError, ParseError, compile_source,
                       format_program, parse_source)
    if not args.source:
        out("compile: missing program file argument")
        return 2
    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        out(f"compile: cannot read {args.source}: {exc}")
        return 2
    try:
        program = parse_source(text)
        definitions = compile_source(text)
    except (LexError, ParseError, CompileError) as exc:
        out(f"{args.source}: {exc}")
        return 1
    out(format_program(program).rstrip())
    names = ", ".join(definition.name for definition in definitions)
    out(f"\n[ok: {len(definitions)} context type(s): {names}]")
    return 0


def _run_bench(args, out: Callable[[str], None]) -> int:
    """Run the medium microbench; gate on the committed baseline."""
    result = bench_medium(quick=args.quick, trace_out=args.trace_out)
    out(result.format_table())
    if args.trace_out:
        out(f"[wrote trace {args.trace_out}]")
    status = 0
    if args.update_baseline:
        result.save(args.baseline)
        out(f"[wrote baseline {args.baseline}]")
    elif not os.path.exists(args.baseline):
        out(f"[no baseline at {args.baseline}; run with "
            f"--update-baseline to create one]")
    else:
        ok, message = check_regression(result,
                                       BenchResult.load(args.baseline))
        out(f"[baseline {args.baseline}: {message}]")
        status = 0 if ok else 1
    if args.mtp:
        mtp_result = bench_mtp()
        out(mtp_result.format_table())
        if args.update_baseline:
            mtp_result.save(args.mtp_baseline)
            out(f"[wrote baseline {args.mtp_baseline}]")
        elif not os.path.exists(args.mtp_baseline):
            out(f"[no baseline at {args.mtp_baseline}; run with "
                f"--update-baseline to create one]")
        else:
            ok, message = check_mtp_regression(
                mtp_result, MtpBenchResult.load(args.mtp_baseline))
            out(f"[baseline {args.mtp_baseline}: {message}]")
            if not ok:
                status = 1
    if args.engine:
        engine_result = bench_engine(quick=args.quick)
        out(engine_result.format_table())
        if args.update_baseline:
            engine_result.save(args.engine_baseline)
            out(f"[wrote baseline {args.engine_baseline}]")
        elif not os.path.exists(args.engine_baseline):
            out(f"[no baseline at {args.engine_baseline}; run with "
                f"--update-baseline to create one]")
        else:
            ok, message = check_engine_regression(
                engine_result,
                EngineBenchResult.load(args.engine_baseline))
            out(f"[baseline {args.engine_baseline}: {message}]")
            if not ok:
                status = 1
    if args.profiler_overhead:
        # Wall-clock gate on a shared machine: retry before failing so a
        # noisy-neighbour burst does not flag a phantom regression.
        for attempt in range(3):
            overhead = bench_telemetry_overhead()
            out(overhead.format_table())
            if overhead.within():
                out(f"[telemetry overhead ok: {overhead.ratio:.3f}x <= "
                    f"{OVERHEAD_FACTOR:.2f}x]")
                break
            if attempt < 2:
                out(f"[telemetry overhead {overhead.ratio:.3f}x > "
                    f"{OVERHEAD_FACTOR:.2f}x; retrying]")
            else:
                out(f"[TELEMETRY OVERHEAD REGRESSION: "
                    f"{overhead.ratio:.3f}x > {OVERHEAD_FACTOR:.2f}x]")
                status = 1
    return status


def _run_report(args, out: Callable[[str], None]) -> int:
    """Render a run report from a saved trace or a fresh live run."""
    from .telemetry.report import RunReport
    if args.source:
        try:
            report = RunReport.from_trace_file(args.source)
        except (OSError, ValueError) as exc:
            out(f"report: cannot load {args.source}: {exc}")
            return 2
    else:
        from .experiments.scenarios import TankScenario, build_app
        from .radio import reset_frame_ids
        from .sim import dump_trace
        scenario = TankScenario(columns=8 if args.quick else 12, rows=2,
                                seed=1 if args.seed is None
                                else args.seed)
        reset_frame_ids()
        app = build_app(scenario)
        app.sim.enable_profiler()
        app.install()
        app.run(until=scenario.duration)
        report = RunReport.from_sim(
            app.sim, title=f"tracker run (seed {scenario.seed})")
        if args.trace_out:
            dump_trace(app.sim, args.trace_out)
            out(f"[wrote trace {args.trace_out}]")
    # Artifacts first: a truncated stdout (e.g. piping into `head`)
    # must not lose the requested files to a BrokenPipeError.
    if args.svg:
        report.save_dashboard(args.svg)
    if args.prom:
        report.save_prometheus(args.prom)
    out(report.format_text())
    if args.svg:
        out(f"[wrote dashboard {args.svg}]")
    if args.prom:
        out(f"[wrote metrics {args.prom}]")
    return 0


def main(argv=None, out: Callable[[str], None] = print) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "compile":
        return _run_compile(args, out)
    if args.experiment == "bench":
        return _run_bench(args, out)
    if args.experiment == "report":
        return _run_report(args, out)
    if args.experiment == "all":
        out_dir = args.out_dir
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        for name in EXPERIMENTS:
            svg_path = (os.path.join(out_dir, f"{name}.svg")
                        if out_dir and name != "table1" else None)
            trace_path = None
            if args.trace_out:
                if out_dir:
                    trace_path = os.path.join(out_dir,
                                              f"{name}.trace.jsonl")
                else:
                    out(f"[--trace-out with 'all' needs --out-dir; "
                        f"skipping trace for {name}]")
            run_one(name, args, svg_path, out, trace_path)
            out("")
        return 0
    run_one(args.experiment, args, args.svg, out, args.trace_out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
