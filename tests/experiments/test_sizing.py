"""Tests for the §6.1 deployment-sizing arithmetic."""

import pytest

from repro.experiments.sizing import (T72_MASS_KG, grid_spacing_for_coverage,
                                      hops_per_second,
                                      magnetic_detection_range,
                                      motes_for_area, paper_case_study,
                                      plan_deployment, seconds_per_hop)


class TestCubeLaw:
    def test_t72_detected_around_100m(self):
        """Paper: '30 × 40^(1/3) which amounts to about 100 meters'."""
        detection = magnetic_detection_range(T72_MASS_KG)
        assert detection == pytest.approx(100.0, rel=0.05)

    def test_reference_target_at_reference_range(self):
        assert magnetic_detection_range(1100.0) == pytest.approx(30.0)

    def test_eight_times_mass_doubles_range(self):
        base = magnetic_detection_range(1000.0)
        assert magnetic_detection_range(8000.0) == pytest.approx(2 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            magnetic_detection_range(0.0)
        with pytest.raises(ValueError):
            magnetic_detection_range(10.0, reference_mass_kg=0.0)


class TestGridGeometry:
    def test_spacing_for_coverage(self):
        """Paper: detection at 100 m ⇒ grid about 140 m apart."""
        spacing = grid_spacing_for_coverage(100.0)
        assert spacing == pytest.approx(141.4, rel=0.01)

    def test_worst_case_cell_center_covered(self):
        detection = 100.0
        spacing = grid_spacing_for_coverage(detection)
        worst_case = spacing / (2 ** 0.5)
        assert worst_case <= detection + 1e-9

    def test_motes_for_border_strip(self):
        """Paper: 70 km × 5 km at 140 m 'roughly 18,000 sensor devices'."""
        count = motes_for_area(70_000.0, 5_000.0, 140.0)
        assert 17_000 <= count <= 19_000


class TestSpeeds:
    def test_t72_crosses_a_hop_in_11_seconds(self):
        """Paper: 'a T-72 tank will cover one hop every 11.2 seconds'."""
        assert seconds_per_hop(45.0, 140.0) == pytest.approx(11.2,
                                                             rel=0.01)

    def test_hops_per_second_inverse(self):
        assert hops_per_second(45.0, 140.0) == pytest.approx(1 / 11.2,
                                                             rel=0.01)


class TestPlan:
    def test_paper_case_study_reproduces_figures(self):
        plan = paper_case_study()
        assert plan.detection_range_m == pytest.approx(100.0, rel=0.05)
        assert plan.grid_spacing_m == pytest.approx(140.0)
        assert 17_000 <= plan.mote_count <= 19_000
        assert plan.seconds_per_hop == pytest.approx(11.2, rel=0.01)
        summary = plan.summary()
        assert "44t" in summary and "140 m" in summary

    def test_plan_smaller_target_needs_denser_grid(self):
        car = plan_deployment(1100.0, 60.0, 10_000.0, 1_000.0)
        tank = plan_deployment(T72_MASS_KG, 60.0, 10_000.0, 1_000.0)
        assert car.grid_spacing_m < tank.grid_spacing_m
        assert car.mote_count > tank.mote_count
