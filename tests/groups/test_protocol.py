"""Unit tests for the group management protocol (§5.2).

The harness drives sensing directly through a mutable set of node ids, so
each test controls exactly which motes "sense the entity" when — no
targets or sensor models involved.
"""

import pytest

from repro.groups import GroupConfig, GroupListener, GroupManager, Role
from repro.sensing import SensorField
from repro.sim import Simulator


class Harness:
    """A line of motes whose sensing is controlled by a set of ids."""

    def __init__(self, count=6, seed=1, config=None, spacing=1.0,
                 communication_radius=10.0, base_loss_rate=0.0):
        self.sim = Simulator(seed=seed)
        self.field = SensorField(
            self.sim, communication_radius=communication_radius,
            base_loss_rate=base_loss_rate)
        self.sensing = set()
        self.config = config or GroupConfig(heartbeat_period=0.5)
        self.managers = {}
        for i in range(count):
            mote = self.field.add_mote((i * spacing, 0.0))
            manager = GroupManager(mote)
            manager.track(
                "tracker",
                lambda m: m.node_id in self.sensing,
                self.config)
            manager.start()
            self.managers[i] = manager

    def run(self, seconds):
        self.sim.run(until=self.sim.now + seconds)

    def leaders(self):
        # Dead motes are inert; their manager state is stale by design.
        return sorted(node for node, manager in self.managers.items()
                      if manager.role("tracker") is Role.LEADER
                      and self.field.motes[node].alive)

    def members(self):
        return sorted(node for node, manager in self.managers.items()
                      if manager.role("tracker") is Role.MEMBER
                      and self.field.motes[node].alive)

    def labels(self):
        return {manager.label("tracker")
                for node, manager in self.managers.items()
                if manager.label("tracker") is not None
                and self.field.motes[node].alive}


def test_single_sensor_creates_label_and_leads():
    h = Harness()
    h.sensing = {2}
    h.run(2.0)
    assert h.leaders() == [2]
    assert h.members() == []
    label = h.managers[2].label("tracker")
    assert label is not None and label.startswith("tracker#")


def test_concurrent_sensors_form_one_group():
    h = Harness()
    h.sensing = {1, 2, 3}
    h.run(3.0)
    assert len(h.leaders()) == 1
    assert len(h.members()) == 2
    assert len(h.labels()) == 1


def test_joiner_adopts_existing_label():
    h = Harness()
    h.sensing = {2}
    h.run(2.0)
    label = h.managers[2].label("tracker")
    h.sensing = {2, 3}
    h.run(2.0)
    assert h.managers[3].role("tracker") is Role.MEMBER
    assert h.managers[3].label("tracker") == label


def test_member_leaves_when_it_stops_sensing():
    h = Harness()
    h.sensing = {2, 3}
    h.run(3.0)
    h.sensing = {2}
    h.run(2.0)
    roles = {n: h.managers[n].role("tracker") for n in (2, 3)}
    assert Role.LEADER in roles.values()
    assert h.managers[3].role("tracker") is not Role.MEMBER or \
        h.managers[2].role("tracker") is not Role.MEMBER


def test_relinquish_hands_label_to_member():
    h = Harness()
    h.sensing = {2, 3}
    h.run(3.0)
    label = next(iter(h.labels()))
    leader = h.leaders()[0]
    other = 3 if leader == 2 else 2
    h.sensing = {other}  # the leader stops sensing
    h.run(3.0)
    assert h.leaders() == [other]
    assert h.managers[other].label("tracker") == label


def test_takeover_after_leader_failure_keeps_label():
    h = Harness()
    h.sensing = {2, 3}
    h.run(3.0)
    label = next(iter(h.labels()))
    leader = h.leaders()[0]
    follower = 3 if leader == 2 else 2
    h.field.fail_node(leader)
    # Receive timer is 2.1 × heartbeat period = 1.05s; allow margin.
    h.run(3.0)
    assert h.leaders() == [follower]
    assert h.managers[follower].label("tracker") == label
    takeovers = list(h.sim.trace_records("gm.takeover"))
    assert len(takeovers) >= 1


def test_wait_memory_prevents_spurious_label():
    """A node that recently heard a heartbeat joins the existing label
    when it starts sensing, instead of minting a new one."""
    h = Harness()
    h.sensing = {2}
    h.run(3.0)
    label = h.managers[2].label("tracker")
    h.sensing = {2, 4}
    h.run(1.0)
    assert h.managers[4].label("tracker") == label
    created = list(h.sim.trace_records("gm.label_created"))
    assert len(created) == 1


def test_separate_stimuli_without_heartbeat_reach_get_two_labels():
    """Nodes out of radio range of any leader mint their own label."""
    h = Harness(count=8, communication_radius=2.0)
    h.sensing = {0, 7}  # 7 grid units apart, radio reach 2
    h.run(3.0)
    assert len(h.labels()) == 2
    assert h.leaders() == [0, 7]


def test_duplicate_leaders_same_label_resolve_by_yield():
    h = Harness()
    h.sensing = {2, 3}
    h.run(3.0)
    label = next(iter(h.labels()))
    # Force a second leader on the same label.
    manager = h.managers[3] if h.leaders() == [2] else h.managers[2]
    state = manager._types["tracker"]
    manager._become_leader(state, label, weight=0, inherited_state=None,
                           via="takeover")
    assert len(h.leaders()) == 2
    h.run(3.0)
    assert len(h.leaders()) == 1


def test_weight_grows_with_member_reports():
    h = Harness()
    h.sensing = {2, 3}
    h.run(3.0)
    leader = h.leaders()[0]
    manager = h.managers[leader]
    label = manager.label("tracker")
    before = manager.weight("tracker")
    for _ in range(5):
        manager.note_member_report("tracker", label)
    assert manager.weight("tracker") == before + 5
    # Reports for other labels do not count.
    manager.note_member_report("tracker", "tracker#99.99")
    assert manager.weight("tracker") == before + 5


def test_heavier_label_suppresses_lighter_duplicate():
    h = Harness()
    h.sensing = {1, 2}
    h.run(3.0)
    label = next(iter(h.labels()))
    leader = h.leaders()[0]
    # Give the established label weight.
    for _ in range(10):
        h.managers[leader].note_member_report("tracker", label)
    # A node nearby spawns a spurious duplicate label.
    deletions_before = len(list(h.sim.trace_records("gm.label_deleted")))
    spurious = h.managers[3]
    h.sensing = {1, 2, 3}
    state = spurious._types["tracker"]
    state.sensing = True
    state.wait_memory = None
    spurious._create_label(state)
    h.run(3.0)
    assert len(h.labels()) == 1
    assert next(iter(h.labels())) == label
    deleted = list(h.sim.trace_records("gm.label_deleted"))
    assert len(deleted) == deletions_before + 1


def test_persistent_state_carried_across_takeover():
    h = Harness()
    h.sensing = {2, 3}
    h.run(3.0)
    leader = h.leaders()[0]
    follower = 3 if leader == 2 else 2
    h.managers[leader].set_persistent_state("tracker", {"count": 42})
    h.run(2.0)  # heartbeats distribute the state
    h.field.fail_node(leader)
    h.run(3.0)
    assert h.leaders() == [follower]
    assert h.managers[follower].persistent_state("tracker") == \
        {"count": 42}


def test_multiple_context_types_independent():
    h = Harness()
    fire_sensing = set()
    for manager in h.managers.values():
        manager.track("fire", lambda m: m.node_id in fire_sensing,
                      GroupConfig(heartbeat_period=0.5))
    h.sensing = {1}
    fire_sensing.add(4)
    h.run(3.0)
    assert h.managers[1].is_leading("tracker")
    assert h.managers[4].is_leading("fire")
    assert not h.managers[4].is_leading("tracker")
    assert h.managers[4].labels_led() == [h.managers[4].label("fire")]


def test_duplicate_type_tracking_rejected():
    h = Harness(count=1)
    with pytest.raises(ValueError):
        h.managers[0].track("tracker", lambda m: False)


def test_listener_callbacks_fire():
    events = []

    class Recorder(GroupListener):
        def on_leader_start(self, context_type, label, inherited_state,
                            inherited_weight, via):
            events.append(("leader_start", via))

        def on_member_join(self, context_type, label, leader):
            events.append(("member_join", leader))

        def on_member_leave(self, context_type, label):
            events.append(("member_leave", None))

        def on_leader_stop(self, context_type, label, reason):
            events.append(("leader_stop", reason))

    h = Harness()
    h.managers[2].add_listener(Recorder())
    h.sensing = {2, 3}
    h.run(3.0)
    h.sensing = set()
    h.run(3.0)
    kinds = [kind for kind, _ in events]
    assert kinds[0] in ("leader_start", "member_join")
    assert "leader_stop" in kinds or "member_leave" in kinds


def test_config_validation():
    with pytest.raises(ValueError):
        GroupConfig(heartbeat_period=0.0)
    with pytest.raises(ValueError):
        GroupConfig(receive_ratio=0.9)
    with pytest.raises(ValueError):
        GroupConfig(wait_ratio=2.0, receive_ratio=2.1)
    with pytest.raises(ValueError):
        GroupConfig(flood_hops=-1)
    config = GroupConfig(heartbeat_period=0.25)
    assert config.receive_timeout == pytest.approx(0.525)
    assert config.wait_timeout == pytest.approx(1.05)
    assert config.with_heartbeat_period(1.0).receive_timeout == \
        pytest.approx(2.1)
