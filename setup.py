"""Legacy setup shim.

Normal installs go through the in-tree PEP 517 backend (see
``_build/repro_build.py``); this file only remains for tooling that still
invokes ``setup.py`` directly."""

from setuptools import setup

setup()
