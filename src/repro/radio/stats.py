"""Radio statistics: the raw counters behind Table 1.

The paper computes *useful link utilization* by dividing the total number of
bits sent per second by the 50 kbps link capacity, under a worst-case
broadcast model in which no two messages can be sent concurrently.  We keep
the same accounting so the Table 1 bench reports the same quantity.

Loss is attributed to a cause (``channel`` for Bernoulli medium loss,
``collision`` for overlapping airtime, ``out_of_range`` is not counted as a
loss — the paper counts a message lost when it was "sent but never received
on any other mote").
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class RadioStats:
    """Aggregate transmit/receive/loss counters for a medium."""

    bits_sent: int = 0
    frames_sent: int = 0
    frames_received: int = 0
    #: frames that reached *no* receiver at all (the paper's loss unit)
    frames_lost: int = 0
    sent_by_kind: Counter = field(default_factory=Counter)
    received_by_kind: Counter = field(default_factory=Counter)
    lost_by_kind: Counter = field(default_factory=Counter)
    receptions_dropped: Counter = field(default_factory=Counter)
    #: Per-kind physical reception opportunities and losses (a broadcast to
    #: N in-range motes counts N attempts).
    reception_attempts_by_kind: Counter = field(default_factory=Counter)
    reception_drops_by_kind: Counter = field(default_factory=Counter)
    #: Unicast delivery accounting: did the *addressed* mote receive it?
    addressed_sent_by_kind: Counter = field(default_factory=Counter)
    addressed_delivered_by_kind: Counter = field(default_factory=Counter)
    bits_sent_by_node: Dict[int, int] = field(
        default_factory=lambda: defaultdict(int))
    started_at: float = 0.0
    last_activity: float = 0.0

    def on_send(self, kind: str, size_bits: int, node: int,
                now: float) -> None:
        self.bits_sent += size_bits
        self.frames_sent += 1
        self.sent_by_kind[kind] += 1
        self.bits_sent_by_node[node] += size_bits
        self.last_activity = now

    def on_receive(self, kind: str, now: float) -> None:
        self.frames_received += 1
        self.received_by_kind[kind] += 1
        self.last_activity = now

    def on_reception_dropped(self, cause: str) -> None:
        self.receptions_dropped[cause] += 1

    def on_reception_attempt(self, kind: str, dropped: bool) -> None:
        self.reception_attempts_by_kind[kind] += 1
        if dropped:
            self.reception_drops_by_kind[kind] += 1

    def on_addressed_outcome(self, kind: str, delivered: bool) -> None:
        self.addressed_sent_by_kind[kind] += 1
        if delivered:
            self.addressed_delivered_by_kind[kind] += 1

    def on_frame_lost(self, kind: str) -> None:
        """Record a frame that no mote received (paper's loss definition)."""
        self.frames_lost += 1
        self.lost_by_kind[kind] += 1

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def loss_fraction(self, kind: Optional[str] = None) -> float:
        """Fraction of sent frames never received anywhere."""
        if kind is None:
            sent, lost = self.frames_sent, self.frames_lost
        else:
            sent, lost = self.sent_by_kind[kind], self.lost_by_kind[kind]
        if sent == 0:
            return 0.0
        return lost / sent

    def reception_loss_fraction(self, kind: str) -> float:
        """Fraction of physical reception opportunities lost (channel +
        collisions).  The Table 1 HB-loss metric: each mote in range that
        misses a heartbeat is a lost heartbeat."""
        attempts = self.reception_attempts_by_kind[kind]
        if attempts == 0:
            return 0.0
        return self.reception_drops_by_kind[kind] / attempts

    def addressed_loss_fraction(self, kind: str) -> float:
        """Fraction of unicast frames the addressed mote never received.
        The Table 1 Msg-loss metric for member→leader reports."""
        sent = self.addressed_sent_by_kind[kind]
        if sent == 0:
            return 0.0
        return 1.0 - self.addressed_delivered_by_kind[kind] / sent

    def link_utilization(self, bitrate: float, now: float) -> float:
        """Paper-style worst-case utilization: bits/s over total capacity."""
        elapsed = now - self.started_at
        if elapsed <= 0:
            return 0.0
        return (self.bits_sent / elapsed) / bitrate

    def reset(self, now: float) -> None:
        """Zero all counters; subsequent utilization measures from ``now``."""
        self.bits_sent = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_lost = 0
        self.sent_by_kind.clear()
        self.received_by_kind.clear()
        self.lost_by_kind.clear()
        self.receptions_dropped.clear()
        self.reception_attempts_by_kind.clear()
        self.reception_drops_by_kind.clear()
        self.addressed_sent_by_kind.clear()
        self.addressed_delivered_by_kind.clear()
        self.bits_sent_by_node.clear()
        self.started_at = now
        self.last_activity = now
