"""Render experiment results as SVG figures matching the paper's plots."""

from __future__ import annotations

from ..experiments import (ChaosResult, Figure3Result, Figure4Result,
                           Figure5Result, Figure6Result,
                           TransportChaosResult)
from ..experiments.chaos import TAKEOVER_SLACK
from .svg import BarChart, LineChart


def figure3_chart(result: Figure3Result) -> LineChart:
    """Figure 3: real vs tracked tank trajectory in field coordinates."""
    chart = LineChart(title="Figure 3 — Tracked Tank Trajectory",
                      x_label="X (grid units)", y_label="Y (grid units)")
    comparison = result.comparison
    chart.add_series("real trajectory",
                     [real for _, _, real in comparison.points],
                     draw_markers=False, dashed=True)
    chart.add_series("tracked trajectory",
                     [tracked for _, tracked, _ in comparison.points])
    return chart


def figure4_chart(result: Figure4Result) -> BarChart:
    """Figure 4: % successful handovers, grouped by tank speed."""
    series_names = ["Propagate heartbeat past sensing radius",
                    "Heartbeats only within radius"]
    groups = ["33 km/hr", "50 km/hr"]
    values = [
        [result.cell(33, True).success_pct,
         result.cell(50, True).success_pct],
        [result.cell(33, False).success_pct,
         result.cell(50, False).success_pct],
    ]
    return BarChart(title="Figure 4 — Successful Handovers",
                    groups=groups, series_names=series_names,
                    values=values, y_label="% successful handovers")


def figure5_chart(result: Figure5Result) -> LineChart:
    """Figure 5: max trackable speed vs heartbeat period (log x)."""
    chart = LineChart(
        title="Figure 5 — Effect of Timers on Max Trackable Speed",
        x_label="Heartbeat period (s)",
        y_label="Max trackable speed (hops/s)", log_x=True)
    radii = sorted({p.sensing_radius for p in result.points})
    for radius in radii:
        takeover = result.series(radius, "takeover")
        if takeover:
            chart.add_series(f"takeover, event radius {radius:g}",
                             takeover)
    for radius in radii:
        relinquish = result.series(radius, "relinquish")
        if relinquish:
            chart.add_series(f"relinquish, event radius {radius:g}",
                             relinquish, dashed=True)
    return chart


def chaos_chart(result: ChaosResult) -> LineChart:
    """Chaos: mean takeover latency vs heartbeat period, one series per
    crash rate, with the §5.2 design bound as a dashed reference."""
    chart = LineChart(
        title="Chaos — Leader-Crash Recovery Latency",
        x_label="Heartbeat period (s)",
        y_label="Mean takeover latency (s)")
    for crash_period in result.crash_periods():
        series = result.series(crash_period)
        if series:
            chart.add_series(f"crash every {crash_period:g}s", series)
    periods = result.heartbeat_periods()
    if periods:
        chart.add_series(
            "bound: 2.1 x HB + slack",
            [(period, 2.1 * period + TAKEOVER_SLACK)
             for period in periods],
            dashed=True, draw_markers=False)
    return chart


def transport_chaos_chart(result: TransportChaosResult) -> BarChart:
    """Transport chaos: per-seed delivery ratio, raw vs reliable MTP."""
    seeds = result.seeds()
    groups = [f"seed {seed}" for seed in seeds]
    series_names = ["Fire-and-forget (paper's MTP)",
                    "Reliable (acks + retransmit)"]
    values = []
    for mode in ("raw", "reliable"):
        by_seed = {o.seed: o for o in result.outcomes_for(mode)}
        values.append([
            100.0 * ratio
            if (outcome := by_seed.get(seed)) is not None
            and (ratio := outcome.delivery_ratio) is not None else 0.0
            for seed in seeds])
    return BarChart(title="Transport Chaos — Delivery Under Crashes "
                          "and Loss Spikes",
                    groups=groups, series_names=series_names,
                    values=values, y_label="% invocations delivered")


def figure6_chart(result: Figure6Result) -> LineChart:
    """Figure 6: max trackable speed vs CR:SR ratio."""
    chart = LineChart(
        title="Figure 6 — Effect of Sensory Radius on Max Trackable "
              "Speed",
        x_label="Communication radius : sensing radius",
        y_label="Max trackable speed (hops/s)")
    for radius in sorted({p.sensing_radius for p in result.points}):
        chart.add_series(f"event radius {radius:g}",
                         result.series(radius))
    return chart
