"""EnviroTrackApp — the top-level public API.

Assembles a full deployment: a simulator, a sensor field, the per-mote
protocol stack (geographic router, directory, MTP, group management,
middleware agent) and an optional base station, from declarative context
type definitions.

Example
-------
>>> from repro import (EnviroTrackApp, ContextTypeDef, AggregateVarSpec,
...                    TrackingObjectDef, MethodDef, TimerInvocation,
...                    Target, LineTrajectory)
>>> app = EnviroTrackApp(seed=1, communication_radius=6.0)
>>> app.field.deploy_grid(10, 2)
[...]
>>> _ = app.field.add_target(Target("car", "vehicle",
...     LineTrajectory((0.0, 0.5), 0.1), signature_radius=1.0))
>>> app.field.install_detection_sensors("vehicle_seen", kinds=["vehicle"])
>>> def report(ctx):
...     result = ctx.read("location")
...     if result.valid:
...         ctx.my_send({"location": result.value})
>>> app.add_context_type(ContextTypeDef(
...     name="tracker", activation="vehicle_seen",
...     aggregates=[AggregateVarSpec("location", "avg", "position",
...                                  confidence=2, freshness=1.0)],
...     objects=[TrackingObjectDef("reporter", [
...         MethodDef("report", TimerInvocation(5.0), report)])]))
>>> base = app.place_base_station((0.0, -3.0))
>>> app.run(until=30.0)
>>> len(base.reports) > 0
True
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..aggregation import AggregationRegistry, default_registry
from ..naming import DirectoryService, FieldBounds
from ..node import Mote
from ..sensing import SensorField
from ..sim import Simulator
from ..transport import GeoRouter, MtpAgent
from .base_station import BaseStation
from .context import ContextTypeDef
from .middleware import EnviroTrackAgent

Position = Tuple[float, float]


class EnviroTrackApp:
    """A complete EnviroTrack deployment.

    Parameters
    ----------
    seed:
        Master determinism seed.
    communication_radius / base_loss_rate / bitrate / mac / task_cost /
    cpu_queue_limit:
        Field and radio configuration (see :class:`SensorField`).
    enable_directory / enable_mtp:
        Install the naming/transport services (on by default; the tracking
        core works without them).
    registry:
        Custom aggregation registry; defaults to a fresh stock registry.
    telemetry:
        Passed to the :class:`Simulator`; False turns the metrics
        registry and span tracker into null objects.  Either way the
        run's trace (and so its digest) is identical.
    scheduler:
        Passed to the :class:`Simulator`; ``"lazy"`` (default) or
        ``"heap"`` — traces are byte-identical across both (see the
        scheduler equivalence suite).
    """

    def __init__(self, seed: int = 0, communication_radius: float = 6.0,
                 base_loss_rate: float = 0.0, bitrate: float = 50_000.0,
                 mac: str = "csma", task_cost: float = 0.001,
                 cpu_queue_limit: int = 64,
                 soft_edge_start: float = 1.0, soft_edge_loss: float = 0.0,
                 enable_directory: bool = True, enable_mtp: bool = True,
                 registry: Optional[AggregationRegistry] = None,
                 medium_index: str = "grid",
                 telemetry: bool = True,
                 scheduler: str = "lazy") -> None:
        self.sim = Simulator(seed=seed, telemetry=telemetry,
                             scheduler=scheduler)
        self.field = SensorField(
            self.sim, communication_radius=communication_radius,
            base_loss_rate=base_loss_rate, bitrate=bitrate, mac=mac,
            task_cost=task_cost, cpu_queue_limit=cpu_queue_limit,
            soft_edge_start=soft_edge_start, soft_edge_loss=soft_edge_loss,
            index=medium_index)
        self.registry = registry or default_registry()
        self.enable_directory = enable_directory
        self.enable_mtp = enable_mtp
        self.context_types: List[ContextTypeDef] = []
        self.base_station: Optional[BaseStation] = None
        self.routers: Dict[int, GeoRouter] = {}
        self.agents: Dict[int, EnviroTrackAgent] = {}
        self.directories: Dict[int, DirectoryService] = {}
        self.mtp_agents: Dict[int, MtpAgent] = {}
        self._installed = False
        self._base_position: Optional[Position] = None

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def add_context_type(self, definition: ContextTypeDef) -> None:
        if self._installed:
            raise RuntimeError("cannot add context types after install()")
        if any(d.name == definition.name for d in self.context_types):
            raise ValueError(
                f"duplicate context type {definition.name!r}")
        self.context_types.append(definition)

    def place_base_station(self, position: Position) -> BaseStation:
        """Add the pursuer-facing mote.  Its id becomes the MySend target."""
        if self._installed:
            raise RuntimeError("cannot place base station after install()")
        mote = self.field.add_mote(position)
        self._base_position = position
        self.base_station = BaseStation(mote)  # router added at install
        return self.base_station

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def field_bounds(self, margin: float = 0.0) -> FieldBounds:
        """Bounding box of the deployment (hash domain for directories)."""
        if not self.field.motes:
            raise RuntimeError("no motes deployed")
        xs = [mote.position[0] for mote in self.field.motes.values()]
        ys = [mote.position[1] for mote in self.field.motes.values()]
        return FieldBounds(min(xs) - margin, min(ys) - margin,
                           max(xs) + margin + 1e-9, max(ys) + margin + 1e-9)

    def install(self) -> None:
        """Wire the protocol stack onto every mote.  Idempotent."""
        if self._installed:
            return
        self._installed = True
        bounds = self.field_bounds()
        base_id = (self.base_station.node_id
                   if self.base_station is not None else None)
        for mote in self.field.mote_list():
            router = GeoRouter(mote)
            self.routers[mote.node_id] = router
            directory = None
            if self.enable_directory:
                directory = DirectoryService(mote, router, bounds)
                self.directories[mote.node_id] = directory
            agent = EnviroTrackAgent(
                mote, list(self.context_types), registry=self.registry,
                router=router, directory=directory, base_station=base_id)
            if self.enable_mtp:
                mtp = MtpAgent(mote, router, agent.groups,
                               directory=directory)
                agent.mtp = mtp
                self.mtp_agents[mote.node_id] = mtp
            self.agents[mote.node_id] = agent
            router.start()
            if directory is not None:
                directory.start()
            if self.enable_mtp:
                self.mtp_agents[mote.node_id].start()
            agent.start()
        if self.base_station is not None:
            # Re-bind the base station to its router for multi-hop reports.
            router = self.routers[self.base_station.node_id]
            router.register_delivery("app.report",
                                     self.base_station._on_routed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Install (if needed) and advance the simulation to ``until``."""
        self.install()
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def agent(self, node_id: int) -> EnviroTrackAgent:
        return self.agents[node_id]

    def leaders(self, context_type: str) -> Dict[int, str]:
        """node id → led label, across the deployment."""
        result = {}
        for node_id, agent in self.agents.items():
            if context_type in agent.context_types():
                label = agent.groups.label(context_type)
                if label is not None and agent.groups.is_leading(
                        context_type):
                    result[node_id] = label
        return result

    def mote(self, node_id: int) -> Mote:
        return self.field.motes[node_id]
