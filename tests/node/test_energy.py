"""Unit tests for the energy accounting extension."""

import pytest

from repro.node import EnergyMeter, EnergyModel, Mote
from repro.radio import BROADCAST, Frame, Medium
from repro.sim import Simulator


def build(n=2):
    sim = Simulator(seed=44)
    medium = Medium(sim, communication_radius=5.0)
    motes = [Mote(sim, i, (float(i), 0.0), medium) for i in range(n)]
    meter = EnergyMeter(sim)
    for mote in motes:
        meter.attach(mote)
    return sim, medium, motes, meter


def test_transmit_energy_charged():
    sim, medium, (a, b), meter = build()
    frame = Frame(src=0, dst=BROADCAST, kind="x")
    a.send(frame)
    sim.run(until=1.0)
    airtime = medium.airtime(frame)
    ledger = meter.ledger(0)
    assert ledger.tx_joules == pytest.approx(
        airtime * meter.model.tx_power)
    # The receiver was charged rx energy.
    assert meter.ledger(1).rx_joules == pytest.approx(
        airtime * meter.model.rx_power)


def test_cpu_energy_tracks_busy_time():
    sim, _, (a, _), meter = build()
    a.cpu.post(lambda: None, cost=0.5)
    sim.run(until=1.0)
    # 0.5s CPU busy plus the tx/rx costs of nothing.
    assert meter.ledger(0).cpu_joules == pytest.approx(
        0.5 * meter.model.cpu_power, rel=0.05)


def test_idle_listening_dominates_quiet_networks():
    sim, _, motes, meter = build()
    sim.schedule(100.0, lambda: None)
    sim.run()
    breakdown = meter.breakdown(sim.now)
    assert breakdown["idle"] > 100 * (breakdown["tx"] + breakdown["rx"]
                                      + breakdown["cpu"] + 1e-12)


def test_total_and_max_node():
    sim, _, (a, b), meter = build()
    a.send(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run(until=10.0)
    total = meter.total_joules(sim.now)
    assert total > 0
    assert meter.max_node_joules(sim.now) <= total
    assert meter.active_joules(sim.now) < total


def test_duplicate_attach_rejected():
    sim, _, (a, _), meter = build()
    with pytest.raises(ValueError):
        meter.attach(a)


def test_custom_model():
    sim = Simulator()
    medium = Medium(sim, communication_radius=5.0)
    mote = Mote(sim, 0, (0.0, 0.0), medium)
    other = Mote(sim, 1, (1.0, 0.0), medium)
    model = EnergyModel(tx_power=1.0, rx_power=0.0, cpu_power=0.0,
                        idle_listen_power=0.0)
    meter = EnergyMeter(sim, model=model)
    meter.attach(mote)
    frame = Frame(src=0, dst=BROADCAST, kind="x")
    mote.send(frame)
    sim.run(until=1.0)
    assert meter.total_joules(sim.now) == pytest.approx(
        medium.airtime(frame))


def test_energy_scales_with_heartbeat_rate():
    """Protocol-level sanity: a faster heartbeat burns more radio energy
    (the trade-off Figure 5 implies)."""
    from repro.experiments.scenarios import TankScenario, build_app

    def radio_energy(heartbeat_period):
        scenario = TankScenario(columns=8, rows=2, seed=3,
                                heartbeat_period=heartbeat_period,
                                with_base_station=False)
        app = build_app(scenario)
        app.install()
        meter = EnergyMeter(app.sim)
        for mote in app.field.mote_list():
            meter.attach(mote)
        app.run(until=60.0)
        return meter.active_joules(app.sim.now)

    assert radio_energy(0.125) > radio_energy(1.0)
