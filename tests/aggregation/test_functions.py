"""Unit tests for the aggregation function library."""

import pytest

from repro.aggregation import AggregationError, default_registry
from repro.aggregation.functions import (aggregate_all, aggregate_any,
                                         aggregate_avg, aggregate_centroid,
                                         aggregate_count, aggregate_max,
                                         aggregate_median, aggregate_min,
                                         aggregate_stddev, aggregate_sum)


class TestScalars:
    def test_avg(self):
        assert aggregate_avg([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_sum(self):
        assert aggregate_sum([1, 2, 3]) == 6

    def test_min_max(self):
        assert aggregate_min([3, 1, 2]) == 1
        assert aggregate_max([3, 1, 2]) == 3

    def test_count(self):
        assert aggregate_count([True, 7, "x"]) == 3
        assert aggregate_count([]) == 0

    def test_median_odd_even(self):
        assert aggregate_median([5, 1, 3]) == 3
        assert aggregate_median([4, 1, 3, 2]) == pytest.approx(2.5)

    def test_stddev(self):
        assert aggregate_stddev([2.0, 2.0, 2.0]) == pytest.approx(0.0)
        assert aggregate_stddev([1.0, 3.0]) == pytest.approx(1.0)

    def test_any_all(self):
        assert aggregate_any([False, True]) is True
        assert aggregate_any([]) is False
        assert aggregate_all([True, True]) is True
        assert aggregate_all([True, False]) is False
        assert aggregate_all([]) is False


class TestVectors:
    def test_avg_positions_component_wise(self):
        result = aggregate_avg([(0.0, 0.0), (2.0, 4.0)])
        assert result == pytest.approx((1.0, 2.0))

    def test_centroid_is_center_of_gravity(self):
        result = aggregate_centroid([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        assert result == pytest.approx((1.0, 1.0))

    def test_centroid_rejects_scalars(self):
        with pytest.raises(AggregationError):
            aggregate_centroid([1.0, 2.0])

    def test_mixed_shapes_rejected(self):
        with pytest.raises(AggregationError):
            aggregate_avg([(1.0, 2.0), 3.0])
        with pytest.raises(AggregationError):
            aggregate_avg([(1.0, 2.0), (1.0, 2.0, 3.0)])


class TestEmptyInput:
    @pytest.mark.parametrize("fn", [aggregate_avg, aggregate_sum,
                                    aggregate_min, aggregate_max,
                                    aggregate_median, aggregate_stddev,
                                    aggregate_centroid])
    def test_rejects_empty(self, fn):
        with pytest.raises(AggregationError):
            fn([])


class TestRegistry:
    def test_stock_functions_present(self):
        registry = default_registry()
        for name in ("avg", "sum", "min", "max", "count", "median",
                     "stddev", "centroid", "any", "all"):
            assert name in registry

    def test_custom_registration(self):
        registry = default_registry()
        registry.register("spread",
                          lambda values: max(values) - min(values))
        assert registry.get("spread")([1, 5, 3]) == 4

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError):
            registry.register("avg", aggregate_avg)
        registry.register("avg", aggregate_avg, replace=True)

    def test_unknown_lookup_lists_known(self):
        registry = default_registry()
        with pytest.raises(KeyError, match="avg"):
            registry.get("nope")
