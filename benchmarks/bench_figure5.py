"""Figure 5 — effect of group-management timers on max trackable speed.

Paper: with leadership takeover as the handover mechanism (worst case —
the leader fails/goes silent), the maximum trackable speed grows as the
heartbeat period shrinks, reaches 1–3 hops/s, then *declines* when
heartbeat processing overloads the motes; larger sensory signatures are
trackable at higher speeds for a fixed communication radius, and the
relinquish optimization's curve is flat with respect to the heartbeat
period.
"""

from conftest import QUICK, emit

from repro.experiments import figure5


def test_figure5_timers_vs_trackable_speed(benchmark):
    result = benchmark.pedantic(
        lambda: figure5(quick=QUICK), rounds=1, iterations=1)
    emit("Figure 5 — max trackable speed vs heartbeat period",
         result.format_table())
    if QUICK:
        return

    takeover_sr1 = dict(result.series(1.0, "takeover"))
    takeover_sr2 = dict(result.series(2.0, "takeover"))

    # Rising branch: faster heartbeats track faster targets.
    assert takeover_sr1[0.25] > takeover_sr1[1.0] >= takeover_sr1[2.0]
    # Plateau/peak in the paper's 1–3 hops/s range at small periods.
    assert max(takeover_sr1.values()) >= 1.0
    # Larger events trackable at least as fast for a fixed CR at the
    # moderate periods (compare at 0.5 s).
    assert takeover_sr2[0.5] >= takeover_sr1[0.5]
    # Saturation at small periods: shrinking the period below the
    # heartbeat-flood saturation point buys no further speed (the paper
    # additionally measured a *decline* there, caused by its 4 MHz motes
    # wedging under heartbeat processing; our simulated stack sheds
    # overload by dropping excess frames instead, so the curve flattens
    # rather than falls — see EXPERIMENTS.md).
    peak_sr2 = max(v for p, v in takeover_sr2.items() if p >= 0.0625)
    assert takeover_sr2[0.03125] <= peak_sr2

    # Relinquish reference: flat w.r.t. heartbeat period — no trend, only
    # ladder-quantization noise (a couple of rungs), in contrast to the
    # order-of-magnitude swing of the takeover curve.
    relinquish_sr1 = dict(result.series(1.0, "relinquish"))
    values = list(relinquish_sr1.values())
    assert min(values) >= 2.0
    assert max(values) - min(values) <= 2.0
