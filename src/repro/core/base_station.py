"""Base station / pursuer endpoint.

The evaluation wires a "preselected mote interfaced to a mobile pursuer
(a laptop)" that "monitors all vehicles at all times and records their
tracks", identifying vehicles by context label.  This class is that
endpoint: a mote that collects ``MySend`` application reports and exposes
the per-label tracks the Figure 3 analysis plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..node import Mote
from ..transport import GeoRouter

Position = Tuple[float, float]

APP_REPORT_KIND = "app.report"


@dataclass
class ReportRecord:
    """One application report received by the base station."""

    received_at: float
    reported_at: float
    label: str
    context_type: str
    reporter: int
    values: Dict[str, Any]


class BaseStation:
    """Report sink on a dedicated mote.

    Attach it to the mote nearest the operator; it registers for
    application reports both on the geographic router (multi-hop) and the
    raw radio (single-hop fallback when no router is installed).
    """

    def __init__(self, mote: Mote, router: Optional[GeoRouter] = None) -> None:
        self.mote = mote
        self.reports: List[ReportRecord] = []
        if router is not None:
            router.register_delivery(APP_REPORT_KIND, self._on_routed)
        mote.register_handler(APP_REPORT_KIND, self._on_frame)

    @property
    def node_id(self) -> int:
        return self.mote.node_id

    # ------------------------------------------------------------------
    def _on_routed(self, payload: Dict[str, Any], origin: int) -> None:
        self._store(payload)

    def _on_frame(self, frame) -> None:
        self._store(frame.payload)

    def _store(self, payload: Dict[str, Any]) -> None:
        if not isinstance(payload, dict) or "label" not in payload:
            return
        values = {key: value for key, value in payload.items()
                  if key not in ("label", "context_type", "reported_at",
                                 "reporter")}
        self.reports.append(ReportRecord(
            received_at=self.mote.sim.now,
            reported_at=float(payload.get("reported_at",
                                          self.mote.sim.now)),
            label=str(payload["label"]),
            context_type=str(payload.get("context_type", "")),
            reporter=int(payload.get("reporter", -1)),
            values=values))

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def labels_seen(self) -> List[str]:
        return sorted({record.label for record in self.reports})

    def reports_for(self, label: str) -> List[ReportRecord]:
        return [record for record in self.reports if record.label == label]

    def track(self, label: str,
              value_key: str = "location") -> List[Tuple[float, Position]]:
        """(report time, position) series for one label — the tracked
        trajectory Figure 3 plots against ground truth."""
        points = []
        for record in self.reports_for(label):
            value = record.values.get(value_key)
            if isinstance(value, (tuple, list)) and len(value) == 2:
                points.append((record.reported_at,
                               (float(value[0]), float(value[1]))))
        return points

    def tracks(self, value_key: str = "location"
               ) -> Dict[str, List[Tuple[float, Position]]]:
        return {label: self.track(label, value_key)
                for label in self.labels_seen()}

    def estimate_velocity(self, label: str,
                          window: int = 4,
                          value_key: str = "location"
                          ) -> Optional[Tuple[float, float]]:
        """Least-squares velocity estimate from the label's last fixes.

        The pursuer's natural next step after recording tracks: fit
        ``position ≈ p0 + v·t`` over the last ``window`` fixes.  Returns
        ``(vx, vy)`` in grid units per second, or None with fewer than two
        fixes.
        """
        points = self.track(label, value_key)[-window:]
        if len(points) < 2:
            return None
        n = len(points)
        mean_t = sum(t for t, _ in points) / n
        mean_x = sum(p[0] for _, p in points) / n
        mean_y = sum(p[1] for _, p in points) / n
        denom = sum((t - mean_t) ** 2 for t, _ in points)
        if denom == 0:
            return None
        vx = sum((t - mean_t) * (p[0] - mean_x) for t, p in points) / denom
        vy = sum((t - mean_t) * (p[1] - mean_y) for t, p in points) / denom
        return (vx, vy)
