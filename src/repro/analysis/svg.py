"""Minimal dependency-free SVG chart writer.

Renders the reproduction's figures (trajectories, parameter-sweep series,
bar groups) as standalone SVG documents — no matplotlib required, so the
library stays dependency-free while still producing the paper's plots.

Only the chart shapes the figures need are implemented: scatter + line
series on linear or log-x axes, bar groups, axis ticks and a legend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

Point = Tuple[float, float]

#: Distinguishable default series colors (colorblind-safe-ish).
PALETTE = ["#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00",
           "#56b4e9", "#000000"]


@dataclass
class Series:
    """One plotted series."""

    name: str
    points: List[Point]
    color: str = ""
    draw_line: bool = True
    draw_markers: bool = True
    dashed: bool = False


@dataclass
class LineChart:
    """A scatter/line chart with axes, ticks, grid and legend."""

    title: str
    x_label: str = ""
    y_label: str = ""
    width: int = 640
    height: int = 420
    log_x: bool = False
    series: List[Series] = field(default_factory=list)
    margin_left: int = 64
    margin_right: int = 150
    margin_top: int = 40
    margin_bottom: int = 52

    def add_series(self, name: str, points: Sequence[Point],
                   color: Optional[str] = None, draw_line: bool = True,
                   draw_markers: bool = True,
                   dashed: bool = False) -> None:
        if color is None:
            color = PALETTE[len(self.series) % len(PALETTE)]
        self.series.append(Series(name=name, points=list(points),
                                  color=color, draw_line=draw_line,
                                  draw_markers=draw_markers,
                                  dashed=dashed))

    # ------------------------------------------------------------------
    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [p[0] for s in self.series for p in s.points]
        ys = [p[1] for s in self.series for p in s.points]
        if not xs:
            return 0.0, 1.0, 0.0, 1.0
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if self.log_x:
            if x_lo <= 0:
                raise ValueError("log-x chart needs positive x values")
        else:
            if x_hi == x_lo:
                x_hi = x_lo + 1.0
            pad = 0.05 * (x_hi - x_lo)
            x_lo, x_hi = x_lo - pad, x_hi + pad
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        pad = 0.08 * (y_hi - y_lo)
        y_lo, y_hi = y_lo - pad, y_hi + pad
        return x_lo, x_hi, y_lo, y_hi

    def _x_to_px(self, x: float, x_lo: float, x_hi: float) -> float:
        plot_width = self.width - self.margin_left - self.margin_right
        if self.log_x:
            frac = ((math.log(x) - math.log(x_lo))
                    / (math.log(x_hi) - math.log(x_lo)))
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return self.margin_left + frac * plot_width

    def _y_to_px(self, y: float, y_lo: float, y_hi: float) -> float:
        plot_height = self.height - self.margin_top - self.margin_bottom
        frac = (y - y_lo) / (y_hi - y_lo)
        return self.height - self.margin_bottom - frac * plot_height

    @staticmethod
    def _ticks(lo: float, hi: float, count: int = 6) -> List[float]:
        if hi <= lo:
            return [lo]
        raw_step = (hi - lo) / max(count - 1, 1)
        magnitude = 10 ** math.floor(math.log10(raw_step))
        for factor in (1, 2, 2.5, 5, 10):
            step = factor * magnitude
            if step >= raw_step:
                break
        first = math.ceil(lo / step) * step
        ticks = []
        value = first
        while value <= hi + 1e-12:
            ticks.append(round(value, 10))
            value += step
        return ticks

    def _log_ticks(self, lo: float, hi: float) -> List[float]:
        ticks = []
        exponent = math.floor(math.log10(lo))
        while 10 ** exponent <= hi * 1.001:
            for mantissa in (1, 2, 5):
                value = mantissa * 10 ** exponent
                if lo * 0.999 <= value <= hi * 1.001:
                    ticks.append(value)
            exponent += 1
        return ticks or [lo, hi]

    @staticmethod
    def _fmt(value: float) -> str:
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.2g}"
        text = f"{value:.3g}"
        return text

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">'
            f'{escape(self.title)}</text>',
        ]
        plot_left = self.margin_left
        plot_right = self.width - self.margin_right
        plot_top = self.margin_top
        plot_bottom = self.height - self.margin_bottom
        # Axes frame.
        parts.append(
            f'<rect x="{plot_left}" y="{plot_top}" '
            f'width="{plot_right - plot_left}" '
            f'height="{plot_bottom - plot_top}" fill="none" '
            f'stroke="#444"/>')
        # Ticks + grid.
        x_ticks = (self._log_ticks(x_lo, x_hi) if self.log_x
                   else self._ticks(x_lo, x_hi))
        for tick in x_ticks:
            px = self._x_to_px(tick, x_lo, x_hi)
            parts.append(f'<line x1="{px:.1f}" y1="{plot_top}" '
                         f'x2="{px:.1f}" y2="{plot_bottom}" '
                         f'stroke="#ddd"/>')
            parts.append(f'<text x="{px:.1f}" y="{plot_bottom + 16}" '
                         f'text-anchor="middle">'
                         f'{escape(self._fmt(tick))}</text>')
        for tick in self._ticks(y_lo, y_hi):
            py = self._y_to_px(tick, y_lo, y_hi)
            parts.append(f'<line x1="{plot_left}" y1="{py:.1f}" '
                         f'x2="{plot_right}" y2="{py:.1f}" '
                         f'stroke="#ddd"/>')
            parts.append(f'<text x="{plot_left - 6}" y="{py + 4:.1f}" '
                         f'text-anchor="end">'
                         f'{escape(self._fmt(tick))}</text>')
        # Axis labels.
        if self.x_label:
            parts.append(
                f'<text x="{(plot_left + plot_right) / 2}" '
                f'y="{self.height - 10}" text-anchor="middle">'
                f'{escape(self.x_label)}</text>')
        if self.y_label:
            cx, cy = 16, (plot_top + plot_bottom) / 2
            parts.append(
                f'<text x="{cx}" y="{cy}" text-anchor="middle" '
                f'transform="rotate(-90 {cx} {cy})">'
                f'{escape(self.y_label)}</text>')
        # Series.
        for series in self.series:
            pixels = [(self._x_to_px(x, x_lo, x_hi),
                       self._y_to_px(y, y_lo, y_hi))
                      for x, y in series.points]
            if series.draw_line and len(pixels) > 1:
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pixels)
                dash = ' stroke-dasharray="6 4"' if series.dashed else ""
                parts.append(f'<polyline points="{path}" fill="none" '
                             f'stroke="{series.color}" '
                             f'stroke-width="2"{dash}/>')
            if series.draw_markers:
                for x, y in pixels:
                    parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" '
                                 f'r="3.2" fill="{series.color}"/>')
        # Legend.
        legend_x = plot_right + 10
        legend_y = plot_top + 8
        for index, series in enumerate(self.series):
            y = legend_y + index * 18
            parts.append(f'<line x1="{legend_x}" y1="{y}" '
                         f'x2="{legend_x + 18}" y2="{y}" '
                         f'stroke="{series.color}" stroke-width="2"/>')
            parts.append(f'<text x="{legend_x + 24}" y="{y + 4}">'
                         f'{escape(series.name)}</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_svg())


@dataclass
class BarChart:
    """Grouped bar chart (the Figure 4 rendering)."""

    title: str
    groups: List[str]
    series_names: List[str]
    #: values[series][group]
    values: List[List[float]]
    y_label: str = ""
    width: int = 560
    height: int = 360

    def to_svg(self) -> str:
        if len(self.values) != len(self.series_names):
            raise ValueError("one value row per series required")
        for row in self.values:
            if len(row) != len(self.groups):
                raise ValueError("one value per group required")
        margin_left, margin_right = 56, 20
        margin_top, margin_bottom = 44, 60
        plot_width = self.width - margin_left - margin_right
        plot_height = self.height - margin_top - margin_bottom
        y_hi = max((max(row) for row in self.values), default=1.0)
        y_hi = max(y_hi, 1e-9) * 1.1
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">'
            f'{escape(self.title)}</text>',
        ]
        group_width = plot_width / len(self.groups)
        bar_width = group_width / (len(self.series_names) + 1)
        for group_index, group in enumerate(self.groups):
            gx = margin_left + group_index * group_width
            for series_index, name in enumerate(self.series_names):
                value = self.values[series_index][group_index]
                bar_height = plot_height * value / y_hi
                x = gx + (series_index + 0.5) * bar_width
                y = margin_top + plot_height - bar_height
                color = PALETTE[series_index % len(PALETTE)]
                parts.append(
                    f'<rect x="{x:.1f}" y="{y:.1f}" '
                    f'width="{bar_width * 0.9:.1f}" '
                    f'height="{bar_height:.1f}" fill="{color}"/>')
                parts.append(
                    f'<text x="{x + bar_width * 0.45:.1f}" '
                    f'y="{y - 4:.1f}" text-anchor="middle" '
                    f'font-size="10">{value:.0f}</text>')
            parts.append(
                f'<text x="{gx + group_width / 2:.1f}" '
                f'y="{self.height - margin_bottom + 18}" '
                f'text-anchor="middle">{escape(group)}</text>')
        # Legend (bottom).
        for series_index, name in enumerate(self.series_names):
            color = PALETTE[series_index % len(PALETTE)]
            x = margin_left + series_index * (plot_width
                                              / len(self.series_names))
            y = self.height - 14
            parts.append(f'<rect x="{x}" y="{y - 9}" width="12" '
                         f'height="12" fill="{color}"/>')
            parts.append(f'<text x="{x + 16}" y="{y + 2}" font-size="11">'
                         f'{escape(name)}</text>')
        if self.y_label:
            cx, cy = 14, margin_top + plot_height / 2
            parts.append(
                f'<text x="{cx}" y="{cy}" text-anchor="middle" '
                f'transform="rotate(-90 {cx} {cy})">'
                f'{escape(self.y_label)}</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_svg())
