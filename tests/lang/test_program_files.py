"""Every shipped .et program must compile, format and round-trip."""

import glob
import os

import pytest

from repro.lang import compile_source, format_program, parse_source

PROGRAMS_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples", "programs")
PROGRAM_FILES = sorted(glob.glob(os.path.join(PROGRAMS_DIR, "*.et")))


def test_programs_exist():
    assert len(PROGRAM_FILES) >= 3


@pytest.mark.parametrize("path", PROGRAM_FILES,
                         ids=[os.path.basename(p) for p in PROGRAM_FILES])
def test_program_compiles(path):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    definitions = compile_source(source)
    assert definitions
    for definition in definitions:
        assert definition.name
        assert callable(definition.activation)


@pytest.mark.parametrize("path", PROGRAM_FILES,
                         ids=[os.path.basename(p) for p in PROGRAM_FILES])
def test_program_round_trips(path):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = parse_source(source)
    assert parse_source(format_program(program)) == program


def test_cli_compiles_every_program(tmp_path):
    from repro.cli import main

    for path in PROGRAM_FILES:
        lines = []
        assert main(["compile", path], out=lines.append) == 0, path
        assert any("[ok:" in line for line in lines)
