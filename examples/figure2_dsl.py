#!/usr/bin/env python
"""The paper's Figure 2 program, verbatim, through the EnviroTrack DSL.

The context definition language (§4, Appendix A) is parsed, compiled to
runtime declarations, and run against a magnetometer-equipped field — the
same pipeline as the paper's preprocessor emitting NesC.

Run:
    python examples/figure2_dsl.py
"""

from repro import EnviroTrackApp, LineTrajectory, Target
from repro.lang import compile_source

FIGURE_2_PROGRAM = """
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s

    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            MySend(pursuer, self:label, location);
        }
    end
end context
"""


def main() -> None:
    context_types = compile_source(FIGURE_2_PROGRAM)
    print(f"compiled context types: "
          f"{[definition.name for definition in context_types]}")

    app = EnviroTrackApp(seed=11, base_loss_rate=0.05)
    app.field.deploy_grid(10, 2)

    # A T-72-like target: 44 tons, ~40x the ferrous mass of an average
    # vehicle.  With the magnetometer threshold below, its detection
    # radius works out to ≈0.7 grid units — the paper's 100 m on a 140 m
    # grid.
    app.field.add_target(Target(
        name="t72", kind="vehicle",
        trajectory=LineTrajectory((0.0, 0.5), speed=0.1),
        signature_radius=0.7,
        attributes={"ferrous_mass": 40_000.0}))
    app.field.install_magnetometers(threshold=1.0)

    for definition in context_types:
        app.add_context_type(definition)
    base = app.place_base_station((0.0, -3.0))
    app.run(until=95.0)

    print(f"\npursuer received {len(base.reports)} reports")
    for label in base.labels_seen():
        points = base.track(label)
        print(f"context label {label}: {len(points)} position fixes")
        for t, (x, y) in points[:8]:
            print(f"  t={t:6.1f}s  ({x:5.2f}, {y:4.2f})")


if __name__ == "__main__":
    main()
