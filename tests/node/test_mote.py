"""Unit tests for the mote runtime."""

import pytest

from repro.node import Mote
from repro.radio import BROADCAST, Frame, Medium
from repro.sim import Simulator


def build(n=2, spacing=1.0, radius=5.0):
    sim = Simulator(seed=6)
    medium = Medium(sim, communication_radius=radius)
    motes = [Mote(sim, i, (i * spacing, 0.0), medium) for i in range(n)]
    return sim, medium, motes


def test_send_and_dispatch_by_kind():
    sim, _, (a, b) = build()
    got = []
    b.register_handler("ping", lambda frame: got.append(frame.payload))
    b.register_handler("other", lambda frame: got.append("wrong"))
    a.send(Frame(src=0, dst=BROADCAST, kind="ping", payload={"n": 1}))
    sim.run(until=1.0)
    assert got == [{"n": 1}]
    assert b.frames_delivered == 1


def test_unicast_address_filter():
    sim, _, motes = build(n=3)
    got = []
    for mote in motes[1:]:
        mote.register_handler(
            "m", lambda frame, m=mote: got.append(m.node_id))
    motes[0].send(Frame(src=0, dst=2, kind="m"))
    sim.run(until=1.0)
    assert got == [2]  # mote 1 heard it physically but filtered it


def test_multiple_handlers_all_invoked():
    sim, _, (a, b) = build()
    got = []
    b.register_handler("m", lambda f: got.append("first"))
    b.register_handler("m", lambda f: got.append("second"))
    a.send(Frame(src=0, dst=BROADCAST, kind="m"))
    sim.run(until=1.0)
    assert got == ["first", "second"]


def test_rx_goes_through_cpu():
    """Receptions cost CPU time: a backlogged mote delays dispatch."""
    sim, _, (a, b) = build()
    b.cpu.task_cost = 0.05
    times = []
    b.register_handler("m", lambda f: times.append(sim.now))
    for _ in range(3):
        b.cpu.post(lambda: None, cost=0.2)  # busy work
    a.send(Frame(src=0, dst=BROADCAST, kind="m"))
    sim.run(until=5.0)
    assert times[0] > 0.6  # waited behind 0.6s of queued work


def test_sensor_installation_and_read():
    _, _, (a, _) = build()
    a.install_sensor("temperature", lambda: 42.0)
    assert a.read_sensor("temperature") == 42.0
    assert a.has_sensor("temperature")
    assert not a.has_sensor("light")
    assert "temperature" in a.sensor_names()
    with pytest.raises(KeyError):
        a.read_sensor("light")


def test_failed_mote_is_silent():
    sim, medium, (a, b) = build()
    got = []
    b.register_handler("m", lambda f: got.append(1))
    a.fail()
    a.send(Frame(src=0, dst=BROADCAST, kind="m"))
    sim.run(until=1.0)
    assert got == []
    assert not a.alive


def test_failed_mote_receives_nothing():
    sim, _, (a, b) = build()
    got = []
    b.register_handler("m", lambda f: got.append(1))
    b.fail()
    a.send(Frame(src=0, dst=BROADCAST, kind="m"))
    sim.run(until=1.0)
    assert got == []


def test_failure_stops_timers():
    sim, _, (a, _) = build()
    fired = []
    timer = a.periodic(0.5, lambda: fired.append(sim.now))
    timer.start()
    sim.run(until=1.2)
    assert len(fired) == 2
    a.fail()
    sim.run(until=5.0)
    assert len(fired) == 2


def test_failure_aborts_mac_backoff():
    # Crash the mote while its CSMA MAC is backing off behind a busy
    # channel: the queued frame must never reach the air — before the
    # fix the mac.backoff event outlived the node and transmitted.
    sim, medium, (a, b) = build()
    got = []
    b.register_handler("zombie", lambda f: got.append(f.kind))
    # Slow, persistent backoff so the retries outlast the noise frame
    # (the default window gives up long before 1s of airtime clears).
    a.mac.backoff = (0.05, 0.1)
    a.mac.max_attempts = 100
    # Occupy the channel so a's send enters backoff instead of going out.
    medium.transmit(Frame(src=1, dst=BROADCAST, kind="noise",
                          size_bits=50_000))  # 1s airtime
    a.send(Frame(src=0, dst=BROADCAST, kind="zombie"))
    sim.run(until=0.01)  # CPU task ran; frame now sits in MAC backoff
    assert a.mac.backlog == 0 and a.mac._busy
    a.fail()
    sim.run(until=5.0)
    assert got == []
    assert a.mac.sent == 0
    tx_nodes = [r.node for r in sim.trace_records("radio.tx")]
    assert 0 not in tx_nodes


def test_recover_restores_radio():
    sim, _, (a, b) = build()
    got = []
    b.register_handler("m", lambda f: got.append(1))
    b.fail()
    b.recover()
    a.send(Frame(src=0, dst=BROADCAST, kind="m"))
    sim.run(until=1.0)
    assert got == [1]


def test_timer_handlers_run_on_cpu():
    sim, _, (a, _) = build()
    a.cpu.task_cost = 0.1
    fired = []
    timer = a.periodic(1.0, lambda: fired.append(sim.now))
    timer.start()
    sim.run(until=1.5)
    # Fire at t=1.0 plus 0.1 CPU service.
    assert fired[0] == pytest.approx(1.1)


def test_oneshot_helper():
    sim, _, (a, _) = build()
    fired = []
    timer = a.oneshot(lambda: fired.append(sim.now))
    timer.start(0.7)
    sim.run(until=2.0)
    assert len(fired) == 1


def test_watchdog_helper():
    sim, _, (a, _) = build()
    fired = []
    dog = a.watchdog(1.0, lambda: fired.append(sim.now))
    dog.kick()
    sim.schedule(0.8, dog.kick)
    sim.run(until=5.0)
    assert fired[0] == pytest.approx(1.8, abs=0.02)


def test_move_to_updates_radio_position():
    sim, medium, (a, b) = build(spacing=1.0, radius=2.0)
    got = []
    b.register_handler("m", lambda f: got.append(1))
    b.move_to((50.0, 0.0))
    a.send(Frame(src=0, dst=BROADCAST, kind="m"))
    sim.run(until=1.0)
    assert got == []
