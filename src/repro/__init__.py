"""EnviroTrack — an environmental computing middleware for distributed
sensor networks.

A full reproduction of *EnviroTrack: Towards an Environmental Computing
Paradigm for Distributed Sensor Networks* (Abdelzaher et al., ICDCS 2004):
context labels attached to physical entities, tracking objects executing
on dynamic sensor groups, approximate aggregate state with freshness and
critical-mass QoS, heartbeat-based group management, geographic-hash
directories and the MTP transport — all running on a deterministic
discrete-event mote simulator that replaces the paper's MICA testbed.

Quickstart::

    from repro import (EnviroTrackApp, ContextTypeDef, AggregateVarSpec,
                       TrackingObjectDef, MethodDef, TimerInvocation,
                       Target, LineTrajectory)

    app = EnviroTrackApp(seed=1)
    app.field.deploy_grid(10, 2)
    app.field.add_target(Target("car", "vehicle",
                                LineTrajectory((0.0, 0.5), 0.1),
                                signature_radius=1.0))
    app.field.install_detection_sensors("vehicle_seen", kinds=["vehicle"])
    ...

See ``examples/quickstart.py`` for the complete program.
"""

from .aggregation import (AggregateStore, AggregateVarSpec,
                          AggregationRegistry, ReadResult, default_registry)
from .core import (BaseStation, ContextTypeDef, EnviroTrackAgent,
                   EnviroTrackApp, MethodDef, ObjectContext, PortInvocation,
                   ReportRecord, TimerInvocation, TrackingObjectDef,
                   WhenInvocation)
from .groups import GroupConfig, GroupListener, GroupManager, Role
from .naming import DirectoryService, FieldBounds, hash_to_coordinate
from .node import Component, Cpu, Mote
from .radio import BROADCAST, Frame, Medium, RadioStats
from .sensing import (GrowingTarget, LineTrajectory, RandomWalkTrajectory,
                      SensorField, StaticPoint, Target, Trajectory,
                      WaypointTrajectory, fire_target)
from .sim import Simulator
from .transport import GeoRouter, LastKnownLeaderTable, MtpAgent

__version__ = "1.0.0"

__all__ = [
    "AggregateStore",
    "AggregateVarSpec",
    "AggregationRegistry",
    "BROADCAST",
    "BaseStation",
    "Component",
    "ContextTypeDef",
    "Cpu",
    "DirectoryService",
    "EnviroTrackAgent",
    "EnviroTrackApp",
    "FieldBounds",
    "Frame",
    "GeoRouter",
    "GroupConfig",
    "GroupListener",
    "GroupManager",
    "GrowingTarget",
    "LastKnownLeaderTable",
    "LineTrajectory",
    "Medium",
    "MethodDef",
    "Mote",
    "MtpAgent",
    "ObjectContext",
    "PortInvocation",
    "RadioStats",
    "RandomWalkTrajectory",
    "ReadResult",
    "ReportRecord",
    "Role",
    "SensorField",
    "Simulator",
    "StaticPoint",
    "Target",
    "TimerInvocation",
    "TrackingObjectDef",
    "Trajectory",
    "WaypointTrajectory",
    "WhenInvocation",
    "default_registry",
    "fire_target",
    "hash_to_coordinate",
]
