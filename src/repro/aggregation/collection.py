"""The raw-data collection protocol (§3.2.3).

Members of a sensor group periodically send their relevant local sensor
readings to the leader.  The paper sets the report period
``P_e = L_e − d`` where ``d`` estimates the maximum in-group message delay
plus processing time, so every window of ``P_e`` seconds at the leader is
guaranteed to contain a fresh reading from each live member.

The protocol is deliberately independent of the aggregation function — it
only moves ``{variable: reading}`` maps; the leader's
:class:`repro.aggregation.window.AggregateStore` applies the functions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .window import AggregateVarSpec

#: Frame kind used by member→leader reports.
REPORT_KIND = "etrack.report"


def report_period(specs: List[AggregateVarSpec],
                  delay_estimate: float) -> float:
    """Compute P_e = min_var(L_e) − d, floored to stay positive.

    The tightest freshness across the context's variables drives the
    period: reporting at that rate satisfies every variable's bound.
    """
    if not specs:
        raise ValueError("context declares no aggregate variables")
    tightest = min(spec.freshness for spec in specs)
    period = tightest - delay_estimate
    if period <= 0:
        # Degenerate configuration: freshness tighter than the delay bound.
        # Report as fast as half the freshness rather than rejecting.
        period = tightest / 2.0
    return period


def build_report(context_type: str, label: str, sender: int, time: float,
                 readings: Dict[str, Any]) -> Dict[str, Any]:
    """Payload for one member report frame."""
    return {
        "type": context_type,
        "label": label,
        "sender": sender,
        "time": time,
        "readings": readings,
    }


def sample_readings(mote, specs: List[AggregateVarSpec]
                    ) -> Dict[str, Any]:
    """Sample this mote's sensors for every declared aggregate variable.

    Variables whose sensor is not installed on the mote are skipped —
    heterogeneous deployments are allowed (§3.2: "A sensor node can be part
    of multiple groups at one time").
    """
    readings: Dict[str, Any] = {}
    for spec in specs:
        if mote.has_sensor(spec.sensor):
            readings[spec.name] = mote.read_sensor(spec.sensor)
    return readings


def parse_report(payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Validate an incoming report payload; None when malformed.

    Malformed frames are possible under collision/corruption models and in
    adversarial tests; the leader must never crash on them.
    """
    required = ("type", "label", "sender", "time", "readings")
    if not all(key in payload for key in required):
        return None
    if not isinstance(payload["readings"], dict):
        return None
    return payload
