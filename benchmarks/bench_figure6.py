"""Figure 6 — effect of the CR:SR ratio on max trackable speed.

Paper: with the relinquish optimization on, larger events are trackable at
faster speeds for a given communication:sensing radius ratio (fewer
handovers per distance travelled), and the architecture breaks down when
the ratio falls below 1 — nodes outside the leader's radio range sense the
event concurrently and form spurious groups.
"""

from conftest import QUICK, emit

from repro.experiments import figure6


def test_figure6_crsr_ratio_vs_trackable_speed(benchmark):
    result = benchmark.pedantic(
        lambda: figure6(quick=QUICK), rounds=1, iterations=1)
    emit("Figure 6 — max trackable speed vs CR:SR ratio",
         result.format_table())
    if QUICK:
        return

    sr2 = dict(result.series(2.0))
    sr3 = dict(result.series(3.0))

    # Breakdown when CR:SR < 1 (spurious concurrent groups).
    assert sr2[0.7] == 0.0
    assert sr3[0.7] == 0.0
    # Recovery above ratio 1 and growth with the ratio.
    assert sr2[3.0] > sr2[1.0]
    # Larger events trackable at least as fast at an intermediate ratio.
    assert sr3[2.0] >= sr2[2.0] or sr3[3.0] >= sr2[3.0]
