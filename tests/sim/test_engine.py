"""Unit tests for the discrete-event engine."""

import inspect

import pytest

import repro.sim.engine as engine_module
from repro.sim import (SCHEDULER_MODES, SimulationError, Simulator,
                       WatchdogTimer)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advances to the horizon
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_events_scheduled_during_run_fire_in_order():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, fired.append, "nested")

    sim.schedule(1.0, first)
    sim.schedule(3.0, fired.append, "last")
    sim.run()
    assert fired == ["first", "nested", "last"]


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [(1, None)] or fired[0] is not None
    assert sim.pending() == 1


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is not None
    assert fired == ["a"]


def test_step_on_empty_queue_returns_none():
    assert Simulator().step() is None


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_time() == 2.0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_trace_records_filterable():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.record("cat.a", node=1, x=1))
    sim.schedule(2.0, lambda: sim.record("cat.b", node=2, x=2))
    sim.run()
    assert len(list(sim.trace_records("cat.a"))) == 1
    assert len(list(sim.trace_records(node=2))) == 1
    assert len(list(sim.trace_records())) == 2


def test_trace_capacity_drops_oldest():
    sim = Simulator(trace_capacity=2)
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: sim.record("c", idx=i))
    sim.run()
    assert [r.detail["idx"] for r in sim.trace] == [3, 4]


def test_events_fired_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 5


# ----------------------------------------------------------------------
# Cancellation-aware scheduler
# ----------------------------------------------------------------------
def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Simulator(scheduler="fifo")
    for mode in SCHEDULER_MODES:
        assert Simulator(scheduler=mode).scheduler == mode


def test_bad_compact_ratio_rejected():
    with pytest.raises(ValueError):
        Simulator(compact_ratio=0.0)
    with pytest.raises(ValueError):
        Simulator(compact_ratio=1.5)


def test_peek_time_does_not_sort_the_heap():
    # Regression guard for the original O(n log n) implementation:
    # peeking must lazily discard cancelled heads, never sort.
    source = inspect.getsource(engine_module.Simulator.peek_time)
    assert "sorted(" not in source
    assert "sorted(" not in inspect.getsource(engine_module.Simulator.pending)


@pytest.mark.parametrize("scheduler", SCHEDULER_MODES)
def test_pending_counter_exact_under_cancel_churn(scheduler):
    sim = Simulator(seed=5, scheduler=scheduler)
    rng = sim.rng.stream("test.churn")
    events = []
    expected = 0
    for i in range(400):
        if events and rng.random() < 0.45:
            event = events.pop(rng.randrange(len(events)))
            event.cancel()
            event.cancel()  # idempotent: must not double-count
            expected -= 1
        else:
            events.append(sim.schedule(rng.uniform(0.0, 10.0), lambda: None))
            expected += 1
        assert sim.pending() == expected
    fired = []
    sim.schedule(11.0, fired.append, "end")
    sim.run()
    assert fired == ["end"]
    assert sim.pending() == 0
    assert sim.cancelled_pending() == 0


@pytest.mark.parametrize("scheduler", SCHEDULER_MODES)
def test_peek_time_exact_under_cancel_churn(scheduler):
    sim = Simulator(seed=6, scheduler=scheduler)
    rng = sim.rng.stream("test.churn")
    events = {}
    for i in range(300):
        events[i] = sim.schedule(rng.uniform(0.0, 10.0), lambda: None)
    for i in sorted(events):
        if rng.random() < 0.7:
            events[i].cancel()
            del events[i]
        expected = min((e.time for e in events.values()), default=None)
        assert sim.peek_time() == expected


def test_step_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1

    sim2 = Simulator()
    sim2.schedule(1.0, lambda: errors.append(None))

    def nested_step():
        try:
            sim2.step()
        except SimulationError as exc:
            errors.append(exc)

    sim2.schedule(0.5, nested_step)
    sim2.step()
    assert isinstance(errors[-1], SimulationError)


def test_step_clears_stale_stop_flag():
    # Aligns step() with run(): a stop() from a previous run must not
    # leak into later single-stepping.
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.stop())
    sim.schedule(2.0, fired.append, "later")
    sim.run()
    assert fired == []
    assert sim.step() is not None
    assert fired == ["later"]


def test_step_skips_cancelled_and_reports_none_when_drained():
    sim = Simulator()
    fired = []
    cancelled = sim.schedule(1.0, fired.append, "dead")
    sim.schedule(2.0, fired.append, "live")
    cancelled.cancel()
    event = sim.step()
    assert event is not None and fired == ["live"]
    assert sim.step() is None


def test_compaction_reclaims_garbage_and_keeps_order():
    sim = Simulator(seed=1, compact_min=8, compact_ratio=0.25)
    fired = []
    doomed = [sim.schedule(5.0 + i * 0.01, fired.append, f"dead{i}")
              for i in range(40)]
    survivors = [sim.schedule(1.0 + i, fired.append, f"live{i}")
                 for i in range(3)]
    assert survivors
    for event in doomed:
        event.cancel()
    assert sim.compactions > 0
    # Residual garbage stays below the compaction trigger floor, and the
    # heap holds exactly live + residual-garbage entries.
    assert sim.cancelled_pending() < sim.compact_min
    assert sim.pending() == 3
    assert sim.heap_size() == sim.pending() + sim.cancelled_pending()
    sim.run()
    assert fired == ["live0", "live1", "live2"]


def test_heap_scheduler_never_compacts():
    sim = Simulator(scheduler="heap", compact_min=4, compact_ratio=0.1)
    for i in range(50):
        sim.schedule(1.0, lambda: None).cancel()
    assert sim.compactions == 0
    assert sim.cancelled_pending() == 50
    sim.run()
    assert sim.cancelled_pending() == 0


def test_compaction_normalizes_rearmed_timer_entries():
    # A deferred (in-place re-armed) watchdog entry must survive
    # compaction at its *true* deadline, not the stale heap key.
    sim = Simulator(seed=2, compact_min=4, compact_ratio=0.1)
    fired = []
    dog = WatchdogTimer(sim, timeout=1.0, callback=lambda: fired.append(
        sim.now), label="dog")
    dog.kick()
    sim.schedule(0.5, dog.kick)  # defer the pending entry in place
    sim.run(until=0.6)
    for i in range(20):  # force a compaction while the entry is deferred
        sim.schedule(2.0, lambda: None).cancel()
    assert sim.compactions > 0
    sim.run()
    assert fired == [1.5]


def test_engine_gauges_published_after_run():
    sim = Simulator(seed=3, compact_min=4, compact_ratio=0.1)
    for i in range(10):
        sim.schedule(1.0, lambda: None).cancel()
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.metrics.gauge("repro_sim_heap_size",
                             "").value() == 0.0
    assert sim.metrics.gauge("repro_sim_cancelled_pending",
                             "").value() == 0.0
    assert sim.metrics.counter("repro_sim_compactions_total",
                               "").value() == float(sim.compactions)
    assert sim.compactions > 0


def test_heap_size_and_cancelled_pending_track_garbage():
    sim = Simulator(scheduler="heap")
    live = sim.schedule(1.0, lambda: None)
    dead = sim.schedule(2.0, lambda: None)
    dead.cancel()
    assert sim.heap_size() == 2
    assert sim.pending() == 1
    assert sim.cancelled_pending() == 1
    assert live.active
