"""Causal span tracing across frames, handlers and scheduled work.

A *span* is one step of a causal story: "node 7 sent a heartbeat", "node 3
handled it", "node 3 replied with a defence".  Spans form trees — a
handler span is a child of the frame span that delivered the triggering
frame, and any frame sent from inside a handler becomes a child of that
handler span.  The tree for a takeover therefore reads like the protocol
narrative: claim frame → receive handlers → defend reply → abort.

Propagation works through two channels:

* **frames** carry ``Frame.span_id`` (assigned at send time, never
  serialized into the trace), so a reception on another node knows its
  cause;
* **scheduled continuations** (CPU task completions, jittered
  rebroadcasts, timer-driven replies) inherit the span that was current
  when :meth:`~repro.sim.engine.Simulator.schedule` was called — the
  engine captures the current span into each :class:`~repro.sim.events.Event`
  and restores it around dispatch.

Like the metrics registry, the tracker is pure side-state: it never draws
randomness, schedules events or writes trace records, so ``trace_digest``
is unaffected by tracing being on or off.  Span ids come from a plain
deterministic counter, so they are reproducible run-to-run as well.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set


@dataclass
class SpanRecord:
    """One node of a span tree."""

    span_id: int
    name: str
    node: Optional[int]
    parent_id: Optional[int]
    started_at: float
    ended_at: Optional[float] = None
    frame_ids: List[int] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        """Simulated seconds the span was open, if it finished."""
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at


class SpanTracker:
    """Records span trees for one simulation run.

    The tracker holds a *current span* — the causal context of whatever
    code is executing right now.  Instrumentation opens child spans with
    :meth:`span`; the engine moves the context across asynchronous gaps
    with :meth:`swap`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._ids = itertools.count(1)
        self._spans: Dict[int, SpanRecord] = {}
        self._children: Dict[int, List[int]] = {}
        self._frame_spans: Dict[int, int] = {}
        #: Span id of the executing causal context, or None.  A plain
        #: attribute (not a property): the engine reads and writes it
        #: around every event dispatch, so it must stay cheap.
        self.current: Optional[int] = None

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    def swap(self, span_id: Optional[int]) -> Optional[int]:
        """Set the current span; return the previous one."""
        previous = self.current
        self.current = span_id
        return previous

    @contextmanager
    def activate(self, span_id: Optional[int]) -> Iterator[Optional[int]]:
        """Run a block with ``span_id`` as the current span."""
        previous = self.swap(span_id)
        try:
            yield span_id
        finally:
            self.swap(previous)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def start(self, name: str, node: Optional[int] = None,
              parent: Optional[int] = None,
              root: bool = False) -> int:
        """Open a span; the parent defaults to the current span.

        Pass ``root=True`` to force a tree root regardless of context
        (e.g. an operation initiated by the experiment script itself).
        """
        if parent is None and not root:
            parent = self.current
        span_id = next(self._ids)
        record = SpanRecord(span_id=span_id, name=name, node=node,
                            parent_id=parent, started_at=self._clock())
        self._spans[span_id] = record
        if parent is not None:
            self._children.setdefault(parent, []).append(span_id)
        return span_id

    def finish(self, span_id: int) -> None:
        """Close a span at the current simulation time."""
        record = self._spans.get(span_id)
        if record is not None and record.ended_at is None:
            record.ended_at = self._clock()

    @contextmanager
    def span(self, name: str, node: Optional[int] = None,
             parent: Optional[int] = None,
             root: bool = False) -> Iterator[int]:
        """Open a child span, make it current, close it on exit."""
        span_id = self.start(name, node=node, parent=parent, root=root)
        previous = self.swap(span_id)
        try:
            yield span_id
        finally:
            self.swap(previous)
            self.finish(span_id)

    def note_frame(self, span_id: int, frame_id: int) -> None:
        """Associate a transmitted frame with a span."""
        record = self._spans.get(span_id)
        if record is None:
            return
        record.frame_ids.append(frame_id)
        self._frame_spans[frame_id] = span_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, span_id: int) -> SpanRecord:
        return self._spans[span_id]

    def __contains__(self, span_id: int) -> bool:
        return span_id in self._spans

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self) -> List[SpanRecord]:
        """Every span, in creation (= id) order."""
        return [self._spans[sid] for sid in sorted(self._spans)]

    def roots(self) -> List[SpanRecord]:
        return [record for record in self.spans()
                if record.parent_id is None]

    def children(self, span_id: int) -> List[SpanRecord]:
        return [self._spans[child]
                for child in self._children.get(span_id, [])]

    def find(self, name_prefix: str) -> List[SpanRecord]:
        """Spans whose name starts with ``name_prefix``, in id order."""
        return [record for record in self.spans()
                if record.name.startswith(name_prefix)]

    def span_of_frame(self, frame_id: int) -> Optional[int]:
        """The span a frame was sent under, or None."""
        return self._frame_spans.get(frame_id)

    def subtree(self, span_id: int) -> List[int]:
        """Preorder span ids of the tree rooted at ``span_id``."""
        if span_id not in self._spans:
            raise KeyError(f"unknown span {span_id}")
        out: List[int] = []
        stack = [span_id]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(self._children.get(current, [])))
        return out

    def ancestors(self, span_id: int) -> List[int]:
        """Span ids from the tree root down to ``span_id`` (inclusive)."""
        if span_id not in self._spans:
            raise KeyError(f"unknown span {span_id}")
        path: List[int] = []
        cursor: Optional[int] = span_id
        while cursor is not None:
            path.append(cursor)
            cursor = self._spans[cursor].parent_id
        path.reverse()
        return path

    def subtree_frames(self, span_id: int) -> Set[int]:
        """Every frame id sent anywhere in the span's subtree."""
        frames: Set[int] = set()
        for sid in self.subtree(span_id):
            frames.update(self._spans[sid].frame_ids)
        return frames

    def ancestor_frames(self, span_id: int) -> Set[int]:
        """Every frame id sent on the root→span causal path."""
        frames: Set[int] = set()
        for sid in self.ancestors(span_id):
            frames.update(self._spans[sid].frame_ids)
        return frames

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format_tree(self, span_id: int) -> str:
        """Indented text rendering of one span tree (for reports/REPL)."""
        lines: List[str] = []

        def visit(sid: int, depth: int) -> None:
            record = self._spans[sid]
            node = "-" if record.node is None else str(record.node)
            end = ("…" if record.ended_at is None
                   else f"{record.ended_at:.3f}")
            frames = (f" frames={record.frame_ids}"
                      if record.frame_ids else "")
            lines.append(f"{'  ' * depth}{record.name} "
                         f"[span {sid}, node {node}, "
                         f"{record.started_at:.3f}→{end}]{frames}")
            for child in self._children.get(sid, []):
                visit(child, depth + 1)

        visit(span_id, 0)
        return "\n".join(lines)


class NullSpanTracker:
    """Drop-in tracker used when telemetry is disabled — records nothing."""

    enabled = False
    current: Optional[int] = None

    def swap(self, span_id: Optional[int]) -> Optional[int]:
        return None

    @contextmanager
    def activate(self, span_id: Optional[int]) -> Iterator[None]:
        yield None

    def start(self, name: str, node: Optional[int] = None,
              parent: Optional[int] = None, root: bool = False) -> None:
        return None

    def finish(self, span_id) -> None:
        pass

    @contextmanager
    def span(self, name: str, node: Optional[int] = None,
             parent: Optional[int] = None,
             root: bool = False) -> Iterator[None]:
        yield None

    def note_frame(self, span_id, frame_id) -> None:
        pass

    def __contains__(self, span_id) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def spans(self) -> List[SpanRecord]:
        return []

    def roots(self) -> List[SpanRecord]:
        return []

    def children(self, span_id) -> List[SpanRecord]:
        return []

    def find(self, name_prefix: str) -> List[SpanRecord]:
        return []

    def span_of_frame(self, frame_id) -> Optional[int]:
        return None
