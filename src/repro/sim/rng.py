"""Named, seeded random streams.

Every stochastic subsystem (radio loss, deployment jitter, failure
injection, …) draws from its own stream so that adding randomness to one
subsystem never perturbs another.  Stream seeds derive deterministically
from the master seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master`` and a stream name.

    Uses SHA-256 rather than ``hash()`` so results are stable across
    interpreter runs and PYTHONHASHSEED settings.
    """
    digest = hashlib.sha256(f"{master}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A lazily created family of :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is None:
            existing = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = existing
        return existing

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)

    def names(self):
        """Names of the streams created so far (sorted for determinism)."""
        return sorted(self._streams)
