"""TinyOS-style components.

TinyOS structures node software as components wired into a protocol graph,
each made of command handlers, event handlers and tasks.  Our protocol
layers (group management, data collection, transport, the EnviroTrack
middleware agent) subclass :class:`Component`: they register frame handlers
on their mote, create mote-bound timers, and send frames — all through one
small base class so every layer shares the same CPU/radio discipline.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..radio import BROADCAST, DEFAULT_FRAME_BITS, Frame
from .mote import Mote


class Component:
    """Base class for protocol components hosted on a mote."""

    #: Subclasses set this to their frame-kind namespace (trace labels).
    name = "component"

    def __init__(self, mote: Mote) -> None:
        self.mote = mote
        self.sim = mote.sim
        self._started = False

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """Host mote's node id."""
        return self.mote.node_id

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Activate the component.  Idempotent."""
        if self._started:
            return
        self._started = True
        self.on_start()

    def on_start(self) -> None:
        """Subclass hook: register handlers, start timers."""

    # ------------------------------------------------------------------
    # Messaging helpers
    # ------------------------------------------------------------------
    def handle(self, kind: str, handler: Callable[[Frame], None]) -> None:
        """Register a frame handler for ``kind`` on the host mote."""
        self.mote.register_handler(kind, handler)

    def broadcast(self, kind: str, payload: Optional[Dict[str, Any]] = None,
                  size_bits: int = DEFAULT_FRAME_BITS,
                  tx_range: Optional[float] = None) -> None:
        """Broadcast a frame from this component's mote."""
        self.mote.send(Frame(src=self.node_id, dst=BROADCAST, kind=kind,
                             payload=payload or {}, size_bits=size_bits,
                             tx_range=tx_range))

    def unicast(self, dst: int, kind: str,
                payload: Optional[Dict[str, Any]] = None,
                size_bits: int = DEFAULT_FRAME_BITS) -> None:
        """Unicast a frame to ``dst`` from this component's mote."""
        self.mote.send(Frame(src=self.node_id, dst=dst, kind=kind,
                             payload=payload or {}, size_bits=size_bits))

    # ------------------------------------------------------------------
    def record(self, category: str, **detail: Any) -> None:
        """Emit a namespaced trace record for this component."""
        self.sim.record(f"{self.name}.{category}", node=self.node_id,
                        **detail)
