"""Radio frame model.

Frames carry protocol messages between motes.  Sizes are in bits because
the evaluation accounts for link utilization against the MICA motes' 50 kbps
channel; airtime is ``size_bits / bitrate``.

Default sizes approximate TinyOS active-message packets (a 36-byte TOS_Msg:
7 bytes header + up to 29 bytes payload).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Broadcast destination sentinel.
BROADCAST = -1

#: Default frame size: a full 36-byte TinyOS packet.
DEFAULT_FRAME_BITS = 36 * 8

_frame_ids = itertools.count(1)


def reset_frame_ids() -> None:
    """Restart frame-id numbering at 1.

    Scenario drivers call this before each independent run so that frame
    ids in trace records depend only on the run itself — never on how many
    runs the process executed before, or on which worker process a
    parallel sweep placed the run in.  (Ids must only be unique within one
    simulation; nothing correlates them across runs.)
    """
    global _frame_ids
    _frame_ids = itertools.count(1)


@dataclass
class Frame:
    """One over-the-air frame.

    Parameters
    ----------
    src:
        Sending mote id.
    dst:
        Receiving mote id, or :data:`BROADCAST`.
    kind:
        Protocol dispatch key (e.g. ``"heartbeat"``, ``"report"``, ``"mtp"``).
    payload:
        Arbitrary protocol data; never inspected by the radio layer.
    size_bits:
        On-air size used for airtime and utilization accounting.
    """

    src: int
    dst: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bits: int = DEFAULT_FRAME_BITS
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    sent_at: Optional[float] = None
    #: Optional per-frame transmit power control: reception range in grid
    #: units.  ``None`` uses the medium's communication radius.  The Fig. 4
    #: experiment limits heartbeat reach to/past the sensing radius with it.
    tx_range: Optional[float] = None
    #: Causal span this frame was sent under (telemetry only).  Assigned
    #: at send time, carried to receivers so handler spans chain to the
    #: sender's context; never serialized into trace records.
    span_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError(f"frame size must be positive: {self.size_bits}")

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def addressed_to(self, node_id: int) -> bool:
        """True when ``node_id`` should deliver this frame up the stack."""
        return self.is_broadcast or self.dst == node_id
