"""Regression: duplicate leaders after a leader crash under loss.

Hypothesis originally falsified ``test_leader_failure_always_recovers_
same_label`` at seed=292 (and, scanning the seed space, at the other
seeds below): a surviving member lost two consecutive heartbeats to the
10% channel loss, its receive timer expired, and it usurped leadership
while the real successor was alive — two leaders for label ``t``.  The
fix (takeover liveness probes + member vouches + leader defence
heartbeats) must keep these exact seeds green forever.
"""

import pytest

from repro.groups import GroupConfig, GroupManager, Role
from repro.sensing import SensorField
from repro.sim import Simulator

#: Seeds where the pre-fix protocol produced two surviving leaders
#: (found by exhaustively scanning seeds 0..400 of the property test).
FALSIFYING_SEEDS = [119, 123, 127, 183, 198, 234, 274, 292, 368, 382]


def _build(seed, loss, sensing_ids):
    sim = Simulator(seed=seed)
    field = SensorField(sim, communication_radius=10.0,
                        base_loss_rate=loss)
    managers = {}
    for i in range(6):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing_ids,
                      GroupConfig(heartbeat_period=0.5,
                                  suppression_range=None))
        manager.start()
        managers[i] = manager
    return sim, managers


@pytest.mark.parametrize("seed", FALSIFYING_SEEDS)
def test_leader_crash_recovers_unique_leader(seed):
    sensing_ids = {1, 2, 3}
    sim, managers = _build(seed, 0.1, sensing_ids)
    sim.run(until=6.0)
    leaders = [n for n, m in managers.items()
               if m.role("t") is Role.LEADER]
    assert len(leaders) == 1
    label = managers[leaders[0]].label("t")
    victim = leaders[0]
    managers[victim].mote.fail()
    survivors = sensing_ids - {victim}
    sim.run(until=20.0)
    new_leaders = [n for n, m in managers.items()
                   if m.role("t") is Role.LEADER and m.mote.alive]
    assert len(new_leaders) == 1
    assert new_leaders[0] in survivors
    assert managers[new_leaders[0]].label("t") == label


def test_probe_cycle_aborts_spurious_takeover():
    """A member that merely *missed* heartbeats (leader alive) must not
    usurp: either the leader's defence beat or a peer vouch cancels the
    probe cycle — no duplicate leader, and a trace record explains why."""
    sim = Simulator(seed=292)
    field = SensorField(sim, communication_radius=10.0, base_loss_rate=0.0)
    sensing_ids = {1, 2, 3}
    managers = {}
    for i in range(6):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing_ids,
                      GroupConfig(heartbeat_period=0.5,
                                  suppression_range=None))
        manager.start()
        managers[i] = manager
    sim.run(until=6.0)
    leaders = [n for n, m in managers.items()
               if m.role("t") is Role.LEADER]
    assert len(leaders) == 1
    # Force one member's receive timer to expire while the leader lives.
    member = next(n for n, m in managers.items()
                  if m.role("t") is Role.MEMBER)
    state = managers[member]._types["t"]
    state.receive_timer.start(0.0)
    sim.run(until=8.0)
    assert [n for n, m in managers.items()
            if m.role("t") is Role.LEADER] == leaders
    assert list(sim.trace_records("gm.probe"))
    assert list(sim.trace_records("gm.takeover_aborted"))
    assert not list(sim.trace_records("gm.takeover"))


def test_takeover_probes_zero_restores_immediate_takeover():
    """``takeover_probes=0`` is the paper's original behavior: receive
    expiry usurps on the spot, with no probe round."""
    sim = Simulator(seed=1)
    field = SensorField(sim, communication_radius=10.0, base_loss_rate=0.0)
    sensing_ids = {1, 2}
    managers = {}
    for i in range(4):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing_ids,
                      GroupConfig(heartbeat_period=0.5, takeover_probes=0,
                                  suppression_range=None))
        manager.start()
        managers[i] = manager
    sim.run(until=4.0)
    leader = next(n for n, m in managers.items()
                  if m.role("t") is Role.LEADER)
    managers[leader].mote.fail()
    sim.run(until=8.0)
    assert list(sim.trace_records("gm.takeover"))
    assert not list(sim.trace_records("gm.probe"))
    alive_leaders = [n for n, m in managers.items()
                     if m.role("t") is Role.LEADER and m.mote.alive]
    assert len(alive_leaders) == 1
