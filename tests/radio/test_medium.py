"""Unit tests for the broadcast medium: range, loss, collisions, stats."""

import pytest

from repro.radio import BROADCAST, Frame, Medium, TransceiverPort
from repro.sim import Simulator


def make_port(medium, node_id, pos, inbox):
    port = TransceiverPort(node_id, lambda: pos,
                           lambda frame: inbox.append((node_id, frame)))
    medium.attach(port)
    return port


def setup_medium(**kwargs):
    sim = Simulator(seed=1)
    medium = Medium(sim, communication_radius=kwargs.pop("radius", 2.0),
                    **kwargs)
    return sim, medium


def test_delivery_within_range_only():
    sim, medium = setup_medium(radius=2.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (1.0, 0.0), inbox)
    make_port(medium, 2, (5.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()
    assert [node for node, _ in inbox] == [1]


def test_sender_does_not_hear_itself():
    sim, medium = setup_medium()
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()
    assert inbox == []


def test_delivery_delayed_by_airtime():
    sim, medium = setup_medium(bitrate=1000.0)  # 288ms for 36B frame
    times = []
    make_port(medium, 0, (0.0, 0.0), [])
    port = TransceiverPort(1, lambda: (1.0, 0.0),
                           lambda frame: times.append(sim.now))
    medium.attach(port)
    frame = Frame(src=0, dst=BROADCAST, kind="x")
    medium.transmit(frame)
    sim.run()
    assert times == [pytest.approx(frame.size_bits / 1000.0)]


def test_unknown_source_rejected():
    _, medium = setup_medium()
    with pytest.raises(KeyError):
        medium.transmit(Frame(src=99, dst=BROADCAST, kind="x"))


def test_duplicate_attach_rejected():
    _, medium = setup_medium()
    make_port(medium, 0, (0.0, 0.0), [])
    with pytest.raises(ValueError):
        make_port(medium, 0, (1.0, 0.0), [])


def test_base_loss_drops_some_receptions():
    sim, medium = setup_medium(radius=10.0, base_loss_rate=0.5)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (1.0, 0.0), inbox)
    for _ in range(200):
        medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
        sim.run()
    # Bernoulli(0.5) over 200 sends: between 60 and 140 with huge margin.
    assert 60 <= len(inbox) <= 140


def test_overlapping_transmissions_collide():
    sim, medium = setup_medium(radius=10.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (2.0, 0.0), inbox)
    make_port(medium, 2, (1.0, 0.0), inbox)  # hears both
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    medium.transmit(Frame(src=1, dst=BROADCAST, kind="y"))
    sim.run()
    assert inbox == []  # both frames corrupted everywhere
    assert medium.stats.receptions_dropped["collision"] > 0
    assert medium.stats.frames_lost == 2


def test_non_overlapping_transmissions_do_not_collide():
    sim, medium = setup_medium(radius=10.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (2.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()  # completes first transmission
    medium.transmit(Frame(src=1, dst=BROADCAST, kind="y"))
    sim.run()
    assert len(inbox) == 2


def test_collision_requires_interference_range():
    # Two transmitters far apart; the receiver only hears one of them.
    sim, medium = setup_medium(radius=3.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (100.0, 0.0), inbox)
    make_port(medium, 2, (1.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    medium.transmit(Frame(src=1, dst=BROADCAST, kind="y"))
    sim.run()
    assert [(n, f.kind) for n, f in inbox] == [(2, "x")]


def test_tx_range_limits_reach():
    sim, medium = setup_medium(radius=5.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (1.0, 0.0), inbox)
    make_port(medium, 2, (3.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x", tx_range=2.0))
    sim.run()
    assert [node for node, _ in inbox] == [1]


def test_channel_busy_during_airtime():
    sim, medium = setup_medium(radius=5.0)
    make_port(medium, 0, (0.0, 0.0), [])
    make_port(medium, 1, (1.0, 0.0), [])
    assert not medium.channel_busy((1.0, 0.0))
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    assert medium.channel_busy((1.0, 0.0))
    sim.run()
    assert not medium.channel_busy((1.0, 0.0))


def test_neighbors_of():
    _, medium = setup_medium(radius=2.0)
    make_port(medium, 0, (0.0, 0.0), [])
    make_port(medium, 1, (1.0, 0.0), [])
    make_port(medium, 2, (1.5, 0.0), [])
    make_port(medium, 3, (9.0, 0.0), [])
    assert medium.neighbors_of(0) == [1, 2]
    assert medium.neighbors_of(0, radius=1.2) == [1]


def test_addressed_outcome_accounting():
    sim, medium = setup_medium(radius=5.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (1.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=1, kind="r"))
    sim.run()
    stats = medium.stats
    assert stats.addressed_sent_by_kind["r"] == 1
    assert stats.addressed_delivered_by_kind["r"] == 1
    assert stats.addressed_loss_fraction("r") == 0.0
    # Addressed to an out-of-range node: counted as a loss.
    make_port(medium, 9, (100.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=9, kind="r"))
    sim.run()
    assert stats.addressed_loss_fraction("r") == 0.5


def test_utilization_accounting():
    sim, medium = setup_medium(radius=5.0, bitrate=1000.0)
    make_port(medium, 0, (0.0, 0.0), [])
    make_port(medium, 1, (1.0, 0.0), [])
    frame = Frame(src=0, dst=BROADCAST, kind="x")
    medium.transmit(frame)
    sim.run(until=10.0)
    expected = (frame.size_bits / 10.0) / 1000.0
    assert medium.stats.link_utilization(1000.0, sim.now) == \
        pytest.approx(expected)


def test_disabled_port_receives_nothing():
    sim, medium = setup_medium(radius=5.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    port = make_port(medium, 1, (1.0, 0.0), inbox)
    port.enabled = False
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()
    assert inbox == []


def test_frame_size_must_be_positive():
    with pytest.raises(ValueError):
        Frame(src=0, dst=BROADCAST, kind="x", size_bits=0)


def test_stats_reset():
    sim, medium = setup_medium(radius=5.0)
    make_port(medium, 0, (0.0, 0.0), [])
    make_port(medium, 1, (1.0, 0.0), [])
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()
    assert medium.stats.frames_sent == 1
    medium.stats.reset(sim.now)
    assert medium.stats.frames_sent == 0
    assert medium.stats.started_at == sim.now


# ----------------------------------------------------------------------
# Spatial index modes and detach semantics
# ----------------------------------------------------------------------

def test_invalid_index_mode_rejected():
    sim = Simulator(seed=1)
    with pytest.raises(ValueError):
        Medium(sim, communication_radius=2.0, index="quadtree")


@pytest.mark.parametrize("index", ["grid", "bruteforce"])
def test_basic_delivery_in_both_index_modes(index):
    sim, medium = setup_medium(radius=2.0, index=index)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (1.0, 0.0), inbox)
    make_port(medium, 2, (5.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()
    assert [node for node, _ in inbox] == [1]


@pytest.mark.parametrize("index", ["grid", "bruteforce"])
def test_detached_receiver_mid_flight_gets_nothing(index):
    # Regression: a node detached while a frame is in flight must not
    # receive it (its radio is gone), and since no other receiver exists
    # the frame counts as lost.
    sim, medium = setup_medium(radius=5.0, index=index)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (1.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    medium.detach(1)
    sim.run()
    assert inbox == []
    assert medium.stats.frames_lost == 1
    # The vanished reception is not an attempt either — no phantom stats.
    assert medium.stats.reception_attempts_by_kind["x"] == 0


@pytest.mark.parametrize("index", ["grid", "bruteforce"])
def test_detached_sender_clears_channel_busy(index):
    # Regression: an in-flight transmission whose sender has been
    # detached must not keep the channel busy via its stale position.
    sim, medium = setup_medium(radius=5.0, index=index)
    make_port(medium, 0, (0.0, 0.0), [])
    make_port(medium, 1, (1.0, 0.0), [])
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    assert medium.channel_busy((1.0, 0.0))
    medium.detach(0)
    assert not medium.channel_busy((1.0, 0.0))


@pytest.mark.parametrize("index", ["grid", "bruteforce"])
def test_neighbors_of_skips_detached(index):
    _, medium = setup_medium(radius=2.0, index=index)
    make_port(medium, 0, (0.0, 0.0), [])
    make_port(medium, 1, (1.0, 0.0), [])
    make_port(medium, 2, (1.5, 0.0), [])
    assert medium.neighbors_of(0) == [1, 2]
    medium.detach(1)
    assert medium.neighbors_of(0) == [2]


def test_reattach_after_detach_is_fresh():
    # The identity check must accept a *new* port reusing a detached id.
    sim, medium = setup_medium(radius=5.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    make_port(medium, 1, (1.0, 0.0), inbox)
    medium.detach(1)
    make_port(medium, 1, (2.0, 0.0), inbox)
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()
    assert [node for node, _ in inbox] == [1]


def test_refresh_position_rebuckets_moved_node():
    # A node moved far across the grid must be found at its new cell
    # (and no longer at the old one) once refresh_position is called.
    sim, medium = setup_medium(radius=2.0)
    inbox = []
    make_port(medium, 0, (0.0, 0.0), inbox)
    pos = [(50.0, 50.0)]
    port = TransceiverPort(1, lambda: pos[0],
                           lambda frame: inbox.append((1, frame)))
    medium.attach(port)
    assert medium.neighbors_of(0) == []
    pos[0] = (1.0, 0.0)
    medium.refresh_position(1)
    assert medium.neighbors_of(0) == [1]
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()
    assert [node for node, _ in inbox] == [1]


def test_refresh_position_unknown_node_is_noop():
    _, medium = setup_medium(radius=2.0)
    medium.refresh_position(42)  # must not raise
