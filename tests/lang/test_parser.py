"""Unit tests for the EnviroTrack language parser."""

import pytest

from repro.lang import ParseError, parse_source
from repro.lang.ast import (Binary, Call, CallStatement, IfStatement,
                            Literal, Name, SelfLabel)

FIGURE2 = """
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(5s)
        report_function() {
            MySend(pursuer, self:label, location);
        }
    end
end context
"""


def test_figure2_program_parses():
    program = parse_source(FIGURE2)
    context = program.context("tracker")
    assert isinstance(context.activation, Call)
    assert context.activation.name == "magnetic_sensor_reading"
    assert len(context.aggregates) == 1
    assert len(context.objects) == 1


def test_aggregate_declaration_attributes():
    program = parse_source(FIGURE2)
    aggregate = program.context("tracker").aggregates[0]
    assert aggregate.name == "location"
    assert aggregate.function == "avg"
    assert aggregate.sensors == ("position",)
    assert aggregate.attribute("confidence") == 2
    assert aggregate.attribute("freshness") == pytest.approx(1.0)
    assert aggregate.attribute("missing", "dflt") == "dflt"


def test_object_and_invocation():
    program = parse_source(FIGURE2)
    function = program.context("tracker").objects[0].functions[0]
    assert function.name == "report_function"
    assert function.invocation.kind == "timer"
    assert function.invocation.period == pytest.approx(5.0)
    statement = function.body[0]
    assert isinstance(statement, CallStatement)
    assert statement.call.name == "MySend"
    assert isinstance(statement.call.args[0], Name)
    assert isinstance(statement.call.args[1], SelfLabel)


def test_when_invocation_condition():
    source = """
    begin context fire
        activation: temperature() > 180
        avg_temp : avg(temperature) confidence=3, freshness=2s
        begin object alarm
            invocation: avg_temp > 300
            raise_alarm() { log(avg_temp); }
        end
    end context
    """
    program = parse_source(source)
    function = program.context("fire").objects[0].functions[0]
    assert function.invocation.kind == "when"
    condition = function.invocation.condition
    assert isinstance(condition, Binary) and condition.op == ">"


def test_port_invocation():
    source = """
    begin context relay
        activation: motion_sensor_reading()
        begin object receiver
            invocation: PORT(7)
            on_message() { log(args); }
        end
    end context
    """
    function = parse_source(source).context("relay").objects[0].functions[0]
    assert function.invocation.kind == "port"
    assert function.invocation.port == 7


def test_deactivation_clause():
    source = """
    begin context hysteresis
        activation: temperature() > 200
        deactivation: temperature() < 150
    end context
    """
    context = parse_source(source).context("hysteresis")
    assert context.deactivation is not None


def test_multiple_contexts():
    source = """
    begin context a
        activation: temperature() > 1
    end context
    begin context b
        activation: temperature() > 2
    end context
    """
    program = parse_source(source)
    assert [c.name for c in program.contexts] == ["a", "b"]


def test_if_else_statement():
    source = """
    begin context c
        activation: light()
        v : avg(light) confidence=1, freshness=1s
        begin object o
            invocation: TIMER(1s)
            f() {
                if (v > 10) { log(v); } else { x = 1; }
            }
        end
    end context
    """
    function = parse_source(source).context("c").objects[0].functions[0]
    statement = function.body[0]
    assert isinstance(statement, IfStatement)
    assert len(statement.then_body) == 1
    assert len(statement.else_body) == 1


def test_operator_precedence():
    source = """
    begin context c
        activation: a() + b() * 2 > 5 and not d()
    end context
    """
    condition = parse_source(source).context("c").activation
    # Top level is 'and'; left is '>'; its left is '+' with '*' nested.
    assert condition.op == "and"
    assert condition.left.op == ">"
    assert condition.left.left.op == "+"
    assert condition.left.left.right.op == "*"


@pytest.mark.parametrize("bad_source", [
    "",                                        # empty program
    "begin context x end context",             # missing activation
    "begin context x activation: f( end context",   # broken expr
    """begin context x
       activation: f()
       begin object o end
       end context""",                         # object with no functions
    """begin context x
       activation: f()
       begin object o
           invocation: TIMER(1s)
           m() { 3 + 4; }
       end
       end context""",                         # non-call statement
])
def test_syntax_errors_rejected(bad_source):
    with pytest.raises(ParseError):
        parse_source(bad_source)


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as excinfo:
        parse_source("begin context x\nactivation oops\nend context")
    assert "line 2" in str(excinfo.value)


def test_literals():
    source = """
    begin context c
        activation: true and not false
    end context
    """
    condition = parse_source(source).context("c").activation
    assert isinstance(condition.left, Literal)
    assert condition.left.value is True
