"""Property-based tests for the simulation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=60)


@given(delays)
@settings(max_examples=80)
def test_dispatch_order_is_total_and_stable(times):
    """Events fire in nondecreasing time order; equal times preserve
    scheduling order."""
    sim = Simulator()
    fired = []
    for index, delay in enumerate(times):
        sim.schedule(delay, lambda i=index, d=delay: fired.append((d, i)))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(delays, st.integers(min_value=0, max_value=59))
@settings(max_examples=50)
def test_cancellation_removes_exactly_that_event(times, cancel_index):
    sim = Simulator()
    fired = []
    events = [sim.schedule(delay, lambda i=index: fired.append(i))
              for index, delay in enumerate(times)]
    victim = cancel_index % len(events)
    events[victim].cancel()
    sim.run()
    assert victim not in fired
    assert len(fired) == len(times) - 1


@given(delays, st.floats(min_value=0.0, max_value=1e6,
                         allow_nan=False, allow_infinity=False))
@settings(max_examples=60)
def test_run_until_horizon_splits_cleanly(times, horizon):
    """Events ≤ horizon fire; the rest stay pending; clock lands on the
    horizon (or later if already past)."""
    sim = Simulator()
    fired = []
    for delay in times:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run(until=horizon)
    assert all(d <= horizon for d in fired)
    assert sim.pending() == sum(1 for d in times if d > horizon)
    sim.run()
    assert len(fired) == len(times)


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=30)
def test_same_seed_same_trace(seed):
    def run():
        sim = Simulator(seed=seed)
        rng = sim.rng.stream("s")
        out = []
        for i in range(10):
            sim.schedule(rng.random() * 10, lambda: out.append(sim.now))
        sim.run()
        return out

    assert run() == run()
