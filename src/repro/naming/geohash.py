"""Geographic hashing of context type names (§5.3).

"We use a hashing function that hashes a type name to some (x, y)
coordinate in the sensor network field.  The nodes within one hop of that
coordinate are responsible for maintaining references to active objects of
this type."

The hash must be (a) deterministic across nodes with no coordination and
(b) stable across processes, so it is built on SHA-256 of the type name,
mapped into the field bounds every node is configured with at deployment.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

Position = Tuple[float, float]


@dataclass(frozen=True)
class FieldBounds:
    """The rectangle all nodes agree the field occupies."""

    x_lo: float
    y_lo: float
    x_hi: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.x_lo >= self.x_hi or self.y_lo >= self.y_hi:
            raise ValueError(f"degenerate field bounds: {self}")

    @property
    def width(self) -> float:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> float:
        return self.y_hi - self.y_lo

    def contains(self, point: Position) -> bool:
        return (self.x_lo <= point[0] <= self.x_hi
                and self.y_lo <= point[1] <= self.y_hi)

    def shrunk(self, margin: float) -> "FieldBounds":
        """Bounds pulled in by ``margin`` on every side (keeps hashed
        coordinates away from the field edge where node density halves)."""
        if 2 * margin >= min(self.width, self.height):
            return self
        return FieldBounds(self.x_lo + margin, self.y_lo + margin,
                           self.x_hi - margin, self.y_hi - margin)


def hash_to_coordinate(name: str, bounds: FieldBounds,
                       salt: str = "") -> Position:
    """Map a type name to a deterministic coordinate inside ``bounds``.

    The optional ``salt`` lets deployments re-home directories (e.g. after
    the original directory region is destroyed) while staying consistent
    network-wide.
    """
    digest = hashlib.sha256(f"{salt}:{name}".encode("utf-8")).digest()
    x_frac = int.from_bytes(digest[0:8], "big") / float(1 << 64)
    y_frac = int.from_bytes(digest[8:16], "big") / float(1 << 64)
    return (bounds.x_lo + x_frac * bounds.width,
            bounds.y_lo + y_frac * bounds.height)
