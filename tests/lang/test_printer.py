"""Tests for the pretty-printer, including parse/print round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import format_expr, format_program, parse_source
from repro.lang.ast import Binary, Call, Literal, Name

FIGURE2 = """
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        ticks = 0;
        invocation: TIMER(5s)
        report_function() {
            MySend(pursuer, self:label, location);
            if (ticks > 3) { log(ticks); } else { ticks = ticks + 1; }
        }
        invocation: PORT(2)
        on_query() {
            invoke(src_label, 3, location, location);
        }
        invocation: location.valid and location[0] > 5
        alarm() {
            setState(seen, true);
        }
    end
end context

begin context fire
    activation: temperature() > 180 and light()
    deactivation: temperature() < 120
    heat : max(temperature) confidence=3, freshness=2s
    begin object watcher
        invocation: TIMER(1s)
        tick() { log(heat); }
    end
end context
"""


def test_round_trip_fixed_program():
    program = parse_source(FIGURE2)
    printed = format_program(program)
    reparsed = parse_source(printed)
    assert reparsed == program


def test_printed_source_is_stable():
    program = parse_source(FIGURE2)
    once = format_program(program)
    twice = format_program(parse_source(once))
    assert once == twice


def test_expression_parenthesization():
    # (a or b) and c must keep its parentheses.
    expr = Binary("and", Binary("or", Name("a"), Name("b")), Name("c"))
    assert format_expr(expr) == "(a or b) and c"
    # a or (b and c) needs none.
    expr = Binary("or", Name("a"), Binary("and", Name("b"), Name("c")))
    assert format_expr(expr) == "a or b and c"
    # (a + b) * c keeps parentheses; a + b * c does not.
    expr = Binary("*", Binary("+", Name("a"), Name("b")), Name("c"))
    assert format_expr(expr) == "(a + b) * c"


def test_literals():
    assert format_expr(Literal(True)) == "true"
    assert format_expr(Literal(2.0)) == "2"
    assert format_expr(Literal(2.5)) == "2.5"
    assert format_expr(Literal("hi")) == "'hi'"
    assert format_expr(Call("f", (Literal(1.0), Name("x")))) == "f(1, x)"


@given(st.floats(min_value=0.01, max_value=1e4),
       st.integers(min_value=1, max_value=99))
@settings(max_examples=50)
def test_round_trip_generated_attributes(freshness, confidence):
    source = f"""
    begin context c
        activation: light()
        v : avg(light) confidence={confidence}, freshness={freshness!r}s
        begin object o
            invocation: TIMER(1s)
            f() {{ log(v); }}
        end
    end context
    """
    program = parse_source(source)
    assert parse_source(format_program(program)) == program
