"""Unit tests for group-management messages and label identity."""

from repro.groups import Heartbeat, Relinquish, label_type, mint_label


class TestLabels:
    def test_labels_unique_across_creators_and_sequences(self):
        labels = {mint_label("tracker", creator, seq)
                  for creator in range(10) for seq in range(1, 11)}
        assert len(labels) == 100

    def test_label_embeds_type_and_creator(self):
        label = mint_label("fire", 17, 1)
        assert label == "fire#17.1"
        assert label_type(label) == "fire"

    def test_minting_is_stateless_and_deterministic(self):
        assert mint_label("t", 3, 2) == mint_label("t", 3, 2)

    def test_label_type_tolerates_plain_strings(self):
        assert label_type("noseparator") == "noseparator"


class TestHeartbeat:
    def make(self, **overrides):
        fields = dict(context_type="tracker", label="tracker#1.1",
                      leader=1, weight=5, seq=7,
                      state={"count": 2}, hops=1,
                      leader_pos=(3.0, 4.0))
        fields.update(overrides)
        return Heartbeat(**fields)

    def test_round_trip(self):
        original = self.make()
        parsed = Heartbeat.from_payload(original.to_payload())
        assert parsed == original

    def test_none_state_and_pos_round_trip(self):
        original = self.make(state=None, leader_pos=None)
        parsed = Heartbeat.from_payload(original.to_payload())
        assert parsed.state is None
        assert parsed.leader_pos is None

    def test_malformed_payloads_return_none(self):
        for payload in ({}, {"context_type": "t"},
                        {"context_type": "t", "label": "l",
                         "leader": "NaN?", "weight": [], "seq": {}},
                        {"context_type": "t", "label": "l", "leader": 1,
                         "weight": 0, "seq": 1, "leader_pos": "oops"}):
            assert Heartbeat.from_payload(payload) is None

    def test_forwarded_by_preserved(self):
        beat = self.make(forwarded_by=9)
        assert Heartbeat.from_payload(beat.to_payload()).forwarded_by == 9


class TestRelinquish:
    def test_round_trip(self):
        original = Relinquish(context_type="tracker", label="tracker#1.1",
                              leader=4, weight=12, state={"x": 1})
        parsed = Relinquish.from_payload(original.to_payload())
        assert parsed == original

    def test_malformed_rejected(self):
        assert Relinquish.from_payload({"label": "l"}) is None
        assert Relinquish.from_payload(
            {"context_type": "t", "label": "l", "leader": None,
             "weight": 1}) is None
