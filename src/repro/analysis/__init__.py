"""Result rendering: dependency-free SVG charts of the paper's figures."""

from .render import (figure3_chart, figure4_chart, figure5_chart,
                     figure6_chart)
from .svg import BarChart, LineChart, Series

__all__ = [
    "BarChart",
    "LineChart",
    "Series",
    "figure3_chart",
    "figure4_chart",
    "figure5_chart",
    "figure6_chart",
]
