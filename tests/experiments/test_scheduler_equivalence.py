"""Scenario-level differential tests: lazy vs heap scheduler.

The tentpole claim of the engine overhaul is that the cancellation-aware
scheduler changes *nothing* about simulated behavior — only wall-clock
cost.  These tests run the real scenario families (tank tracking with
directory/MTP/leader kills, chaos recovery, transport chaos) under both
``scheduler="lazy"`` and ``scheduler="heap"`` and require byte-identical
trace digests.
"""

from dataclasses import replace

from repro.experiments import TankScenario, TransportChaosSpec, \
    run_tank_scenario
from repro.experiments.chaos import _chaos_run
from repro.experiments.transport_chaos import _transport_run
from repro.sim import load_trace, trace_digest

QUICK = TankScenario(columns=6, rows=2, seed=11)


def scenario_digest(**overrides):
    run = run_tank_scenario(replace(QUICK, **overrides))
    return trace_digest(run.app.sim)


class TestTankEquivalence:
    def test_tracking_scenario(self):
        assert scenario_digest(scheduler="lazy") == \
            scenario_digest(scheduler="heap")

    def test_tracking_scenario_with_directory_and_mtp(self):
        kwargs = dict(enable_directory=True, enable_mtp=True)
        assert scenario_digest(scheduler="lazy", **kwargs) == \
            scenario_digest(scheduler="heap", **kwargs)

    def test_leader_kill_scenario(self):
        kwargs = dict(leader_kill_times=(1.0,))
        assert scenario_digest(scheduler="lazy", **kwargs) == \
            scenario_digest(scheduler="heap", **kwargs)

    def test_lazy_is_the_default(self):
        run = run_tank_scenario(QUICK)
        assert run.app.sim.scheduler == "lazy"


class TestChaosEquivalence:
    def test_chaos_run_digest(self, tmp_path):
        digests = {}
        for mode in ("lazy", "heap"):
            path = tmp_path / f"chaos-{mode}.jsonl"
            _chaos_run(3, 0.25, 2.0, 1, 0.05, 8, 3,
                       trace_out=str(path), scheduler=mode)
            digests[mode] = trace_digest(load_trace(str(path)))
        assert digests["lazy"] == digests["heap"]


class TestTransportChaosEquivalence:
    def test_transport_run_digest_and_counters(self):
        outcomes = {}
        for mode in ("lazy", "heap"):
            spec = TransportChaosSpec(mode="reliable", seed=5, crashes=1,
                                      scheduler=mode)
            outcomes[mode] = _transport_run(spec)
        lazy, heap = outcomes["lazy"], outcomes["heap"]
        assert lazy.trace_digest == heap.trace_digest
        # The whole picklable outcome must match, not just the digest.
        assert replace(lazy, trace_digest="") == \
            replace(heap, trace_digest="")
