"""Deployment sizing: the §6.1 case-study arithmetic, reusable.

The paper sizes its tank-tracking deployment from first principles:

* a magnetometer that detects an average vehicle at 30 m detects a
  44-ton T-72 (≈40× the ferrous mass) at ``30 × 40^(1/3) ≈ 100 m``,
  because magnetic disturbance attenuates with the cube of distance;
* a target detectable at radius *R* is always within range of some sensor
  when sensors sit on a grid of spacing ``R·√2`` (≈140 m for the tank) —
  the worst case is the center of a grid cell, ``(spacing/√2)`` from the
  nearest corners;
* covering a 70 km × 5 km border strip at that spacing takes ≈18,000
  motes; a tank at 45 km/hr crosses one grid hop every ≈11.2 s.

These helpers make the same computations available for arbitrary targets
and fields, so scenario builders can size deployments physically instead
of guessing grid parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Reference magnetometer performance the paper quotes (Honeywell traffic
#: sensors): an average vehicle detected at up to 30 m.
REFERENCE_DETECTION_RANGE_M = 30.0
REFERENCE_VEHICLE_MASS_KG = 1100.0

#: The paper's T-72 figures.
T72_MASS_KG = 44_000.0
T72_MAX_OFFROAD_SPEED_KMH = 45.0


def magnetic_detection_range(target_mass_kg: float,
                             reference_range_m: float =
                             REFERENCE_DETECTION_RANGE_M,
                             reference_mass_kg: float =
                             REFERENCE_VEHICLE_MASS_KG) -> float:
    """Detection range of a ferrous target, by the cube-law scaling.

    Field strength ∝ mass / r³, so the range at which a target of mass
    ``m`` produces the reference target's threshold signal is
    ``r_ref × (m / m_ref)^(1/3)``.
    """
    if target_mass_kg <= 0 or reference_mass_kg <= 0:
        raise ValueError("masses must be positive")
    if reference_range_m <= 0:
        raise ValueError("reference range must be positive")
    return reference_range_m * (target_mass_kg
                                / reference_mass_kg) ** (1.0 / 3.0)


def grid_spacing_for_coverage(detection_range_m: float) -> float:
    """Largest square-grid spacing guaranteeing continuous coverage.

    A target is farthest from all sensors at a cell center, at distance
    ``spacing/√2`` from the four corners; coverage therefore requires
    ``spacing ≤ detection_range × √2``.
    """
    if detection_range_m <= 0:
        raise ValueError("detection range must be positive")
    return detection_range_m * math.sqrt(2.0)


def motes_for_area(width_m: float, height_m: float,
                   spacing_m: float) -> int:
    """Number of grid motes covering a rectangular strip."""
    if width_m <= 0 or height_m <= 0:
        raise ValueError("area dimensions must be positive")
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    columns = math.floor(width_m / spacing_m) + 1
    rows = math.floor(height_m / spacing_m) + 1
    return columns * rows


def seconds_per_hop(speed_kmh: float, spacing_m: float) -> float:
    """Grid-hop traversal time of a target at ``speed_kmh``."""
    if speed_kmh <= 0:
        raise ValueError("speed must be positive")
    meters_per_second = speed_kmh / 3.6
    return spacing_m / meters_per_second


def hops_per_second(speed_kmh: float, spacing_m: float) -> float:
    """The stress tests' speed unit: grid hops per second."""
    return 1.0 / seconds_per_hop(speed_kmh, spacing_m)


@dataclass(frozen=True)
class DeploymentPlan:
    """A physically sized deployment for tracking one target class."""

    target_mass_kg: float
    target_speed_kmh: float
    field_width_m: float
    field_height_m: float
    detection_range_m: float
    grid_spacing_m: float
    mote_count: int
    seconds_per_hop: float
    hops_per_second: float

    def summary(self) -> str:
        return (
            f"target {self.target_mass_kg / 1000:.0f}t @ "
            f"{self.target_speed_kmh:.0f} km/hr: detection range "
            f"{self.detection_range_m:.0f} m, grid spacing "
            f"{self.grid_spacing_m:.0f} m, {self.mote_count} motes for "
            f"{self.field_width_m / 1000:.0f} km x "
            f"{self.field_height_m / 1000:.1f} km, "
            f"{self.seconds_per_hop:.1f} s/hop "
            f"({self.hops_per_second:.3f} hops/s)")


def plan_deployment(target_mass_kg: float, target_speed_kmh: float,
                    field_width_m: float, field_height_m: float,
                    spacing_round_m: float = 10.0) -> DeploymentPlan:
    """Size a full deployment for a target class.

    ``spacing_round_m``: round the computed spacing *down* to a multiple
    of this (the paper rounds 141 m to a round 140 m figure).
    """
    detection = magnetic_detection_range(target_mass_kg)
    spacing = grid_spacing_for_coverage(detection)
    if spacing_round_m > 0:
        spacing = math.floor(spacing / spacing_round_m) * spacing_round_m
        spacing = max(spacing, spacing_round_m)
    return DeploymentPlan(
        target_mass_kg=target_mass_kg,
        target_speed_kmh=target_speed_kmh,
        field_width_m=field_width_m,
        field_height_m=field_height_m,
        detection_range_m=detection,
        grid_spacing_m=spacing,
        mote_count=motes_for_area(field_width_m, field_height_m, spacing),
        seconds_per_hop=seconds_per_hop(target_speed_kmh, spacing),
        hops_per_second=hops_per_second(target_speed_kmh, spacing),
    )


def paper_case_study() -> DeploymentPlan:
    """The paper's exact scenario: a T-72 on a 70 km × 5 km border."""
    return plan_deployment(T72_MASS_KG, T72_MAX_OFFROAD_SPEED_KMH,
                           field_width_m=70_000.0, field_height_m=5_000.0)
