"""Context type and tracking object declarations.

These are the programmer-facing declarations of §3.2/§4: a *context type*
names a class of trackable entities (``tracker``, ``FIRE``), and declares

* the **activation condition** — ``sense_e()``, a boolean over local
  sensory measurements that defines group membership;
* optionally a **deactivation condition** (defaults to the inverse of the
  activation condition, footnote 1 of the paper);
* the **aggregate state variables** with their freshness and critical-mass
  QoS attributes;
* the **attached objects** whose methods run on the group leader, invoked
  by timers, by aggregate-state conditions, or by MTP messages.

Both the Python API and the EnviroTrack DSL compiler produce these
structures; the middleware agent consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..aggregation import AggregateVarSpec
from ..groups import GroupConfig

#: An activation/deactivation condition: either the name of a boolean
#: sensor installed on the motes, or a callable over the mote itself.
Condition = Union[str, Callable[..., bool]]


@dataclass(frozen=True)
class TimerInvocation:
    """``invocation: TIMER(5s)`` — run the method periodically."""

    period: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"timer period must be positive: {self.period}")


@dataclass(frozen=True)
class WhenInvocation:
    """Run the method when a predicate over aggregate state holds.

    The predicate receives the method's :class:`ObjectContext` and is
    polled every ``poll_period`` seconds on the leader.  ``edge_triggered``
    fires only on false→true transitions (default), matching the intuition
    of "invoke when the condition becomes true".
    """

    predicate: Callable[[Any], bool]
    poll_period: float = 0.5
    edge_triggered: bool = True

    def __post_init__(self) -> None:
        if self.poll_period <= 0:
            raise ValueError(
                f"poll period must be positive: {self.poll_period}")


@dataclass(frozen=True)
class PortInvocation:
    """Run the method when an MTP invocation arrives on ``port``."""

    port: int

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"port must be >= 0: {self.port}")


Invocation = Union[TimerInvocation, WhenInvocation, PortInvocation]


@dataclass(frozen=True)
class MethodDef:
    """One method of a tracking object.

    ``body`` receives the :class:`repro.core.runtime.ObjectContext`;
    port-invoked methods additionally receive
    ``(args, src_label, src_port)``.
    """

    name: str
    invocation: Invocation
    body: Callable[..., None]


@dataclass(frozen=True)
class TrackingObjectDef:
    """An object attached to a context type (executed on group leaders).

    ``data`` declares object-local variables with initial values (the
    Appendix A ``data declaration``); they seed the object context's
    ``locals`` whenever a node becomes the label's leader.
    """

    name: str
    methods: tuple
    data: tuple

    def __init__(self, name: str, methods: List[MethodDef],
                 data: Optional[Dict[str, Any]] = None) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "methods", tuple(methods))
        object.__setattr__(self, "data",
                           tuple((data or {}).items()))
        seen = set()
        for method in self.methods:
            if method.name in seen:
                raise ValueError(
                    f"duplicate method {method.name!r} in object {name!r}")
            seen.add(method.name)

    def initial_data(self) -> Dict[str, Any]:
        return dict(self.data)


@dataclass
class ContextTypeDef:
    """Full declaration of one context type.

    Parameters
    ----------
    name:
        The context type name (``tracker`` in Figure 2).
    activation:
        ``sense_e()`` — boolean sensor name or ``callable(mote) -> bool``.
    aggregates:
        Aggregate state variable specs (each with confidence + freshness).
    objects:
        Attached tracking objects.
    deactivation:
        Optional explicit deactivation condition; when given, a node stays
        in the group until it fires (hysteresis).  Defaults to the inverse
        of ``activation``.
    group:
        Group management configuration for this type.
    delay_estimate:
        ``d`` in ``P_e = L_e − d``: bound on in-group delivery + processing
        delay used to derive the member report period.
    report_size_bits:
        On-air size of member report frames.
    directory_update_period:
        How often a leader refreshes the label's directory entry; ``None``
        disables directory registration for this type.
    """

    name: str
    activation: Condition
    aggregates: List[AggregateVarSpec] = field(default_factory=list)
    objects: List[TrackingObjectDef] = field(default_factory=list)
    deactivation: Optional[Condition] = None
    group: GroupConfig = field(default_factory=GroupConfig)
    delay_estimate: float = 0.1
    report_size_bits: int = 36 * 8
    directory_update_period: Optional[float] = 10.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("context type needs a name")
        if self.delay_estimate < 0:
            raise ValueError(
                f"delay estimate must be >= 0: {self.delay_estimate}")
        names = [spec.name for spec in self.aggregates]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate aggregate variable in {self.name!r}")
        object_names = [obj.name for obj in self.objects]
        if len(object_names) != len(set(object_names)):
            raise ValueError(f"duplicate object name in {self.name!r}")

    def aggregate(self, name: str) -> AggregateVarSpec:
        for spec in self.aggregates:
            if spec.name == name:
                return spec
        raise KeyError(f"context {self.name!r} has no aggregate {name!r}")

    def ports(self) -> Dict[int, MethodDef]:
        """Port → method map for MTP registration."""
        mapping: Dict[int, MethodDef] = {}
        for obj in self.objects:
            for method in obj.methods:
                if isinstance(method.invocation, PortInvocation):
                    port = method.invocation.port
                    if port in mapping:
                        raise ValueError(
                            f"port {port} bound twice in {self.name!r}")
                    mapping[port] = method
        return mapping
