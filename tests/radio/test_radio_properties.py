"""Property-based tests for the radio and CPU substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.node import Cpu
from repro.radio import BROADCAST, Frame, Medium, TransceiverPort
from repro.sim import Simulator

positions = st.lists(
    st.tuples(st.floats(min_value=0, max_value=20),
              st.floats(min_value=0, max_value=20)),
    min_size=2, max_size=10, unique=True)


@given(positions,
       st.floats(min_value=0.5, max_value=25.0),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=60)
def test_broadcast_reaches_exactly_in_range_receivers(points, radius,
                                                      seed):
    """With no loss and no contention, a broadcast is delivered to every
    port within range and none beyond."""
    sim = Simulator(seed=seed)
    medium = Medium(sim, communication_radius=radius)
    received = []
    for node_id, pos in enumerate(points):
        medium.attach(TransceiverPort(
            node_id, lambda p=pos: p,
            lambda frame, n=node_id: received.append(n)))
    medium.transmit(Frame(src=0, dst=BROADCAST, kind="x"))
    sim.run()
    src = points[0]
    expected = {n for n, pos in enumerate(points) if n != 0
                and ((pos[0] - src[0]) ** 2
                     + (pos[1] - src[1]) ** 2) ** 0.5 <= radius}
    assert set(received) == expected


@given(st.integers(min_value=0, max_value=10_000),
       st.floats(min_value=0.0, max_value=0.9))
@settings(max_examples=30)
def test_medium_is_deterministic_per_seed(seed, loss):
    def run():
        sim = Simulator(seed=seed)
        medium = Medium(sim, communication_radius=5.0,
                        base_loss_rate=loss)
        log = []
        for node_id, pos in enumerate([(0.0, 0.0), (1.0, 0.0),
                                       (2.0, 0.0)]):
            medium.attach(TransceiverPort(
                node_id, lambda p=pos: p,
                lambda frame, n=node_id: log.append((n, frame.kind))))
        for i in range(20):
            sim.schedule(i * 0.1, medium.transmit,
                         Frame(src=i % 3, dst=BROADCAST, kind=f"k{i}"))
        sim.run()
        return log

    assert run() == run()


@given(st.lists(st.floats(min_value=0.0001, max_value=0.05),
                min_size=1, max_size=30))
@settings(max_examples=60)
def test_cpu_preserves_fifo_order_and_total_service(costs):
    sim = Simulator()
    cpu = Cpu(sim, 0, queue_limit=100)
    done = []
    for index, cost in enumerate(costs):
        cpu.post(lambda i=index: done.append(i), cost=cost)
    sim.run()
    assert done == list(range(len(costs)))
    assert cpu.executed == len(costs)
    assert cpu.busy_time == sum(costs)
    assert sim.now >= sum(costs) - 1e-9
