"""AST for the EnviroTrack context definition language (Appendix A)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    """Number / string / boolean literal."""

    value: object


@dataclass(frozen=True)
class Name:
    """A bare identifier: aggregate variable, local, or symbolic name."""

    ident: str


@dataclass(frozen=True)
class SelfLabel:
    """The ``self:label`` handle of the enclosing context."""


@dataclass(frozen=True)
class Call:
    """``fn(arg, …)`` — sense function, builtin, or sensor read."""

    name: str
    args: Tuple["Expr", ...] = ()


@dataclass(frozen=True)
class Attribute:
    """``expr.attr`` (e.g. ``location.valid``)."""

    base: "Expr"
    attr: str


@dataclass(frozen=True)
class Index:
    """``expr[i]`` (e.g. ``location[0]``)."""

    base: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class Unary:
    """``not x`` / ``-x``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    """Binary operation: comparisons, arithmetic, and/or."""

    op: str
    left: "Expr"
    right: "Expr"


Expr = Union[Literal, Name, SelfLabel, Call, Attribute, Index, Unary,
             Binary]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallStatement:
    call: Call


@dataclass(frozen=True)
class Assignment:
    """``name = expr;`` — object-local scratch variable."""

    name: str
    value: Expr


@dataclass(frozen=True)
class IfStatement:
    condition: Expr
    then_body: Tuple["Statement", ...]
    else_body: Tuple["Statement", ...] = ()


Statement = Union[CallStatement, Assignment, IfStatement]


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InvocationSpec:
    """``invocation:`` clause — TIMER(p), PORT(n) or a condition expr."""

    kind: str  # 'timer' | 'port' | 'when'
    period: Optional[float] = None
    port: Optional[int] = None
    condition: Optional[Expr] = None


@dataclass(frozen=True)
class FunctionDecl:
    name: str
    invocation: InvocationSpec
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ObjectDecl:
    name: str
    functions: Tuple[FunctionDecl, ...]
    #: Appendix A's ``data declaration``: object-local variables with
    #: initial values, seeded into the object's locals on leader start.
    data: Tuple[Tuple[str, object], ...] = ()


@dataclass(frozen=True)
class AggregateDecl:
    """``location : avg(position) confidence=2, freshness=1s``."""

    name: str
    function: str
    sensors: Tuple[str, ...]
    attributes: Tuple[Tuple[str, object], ...]

    def attribute(self, name: str, default: object = None) -> object:
        for key, value in self.attributes:
            if key == name:
                return value
        return default


@dataclass
class ContextDecl:
    name: str
    activation: Expr
    deactivation: Optional[Expr] = None
    aggregates: List[AggregateDecl] = field(default_factory=list)
    objects: List[ObjectDecl] = field(default_factory=list)


@dataclass
class Program:
    contexts: List[ContextDecl] = field(default_factory=list)

    def context(self, name: str) -> ContextDecl:
        for decl in self.contexts:
            if decl.name == name:
                return decl
        raise KeyError(f"no context named {name!r}")
