"""Transport: geographic routing, LRU leader tables, MTP, reliability."""

from .mtp import (DEFAULT_CHAIN_LIMIT, DEFAULT_LOOKUP_EXPIRY,
                  DEFAULT_NEGATIVE_TTL, DEFAULT_PENDING_LIMIT, Invocation,
                  MTP_KIND, MtpAgent, PortHandler)
from .reliability import (ConnectionKey, DeadLetter, DeadLetterQueue,
                          DedupTable, MTP_ACK_KIND, MTP_DEDUP_KIND,
                          PendingTransmission, ReliabilityConfig,
                          RELIABILITY_STREAM, SequenceCounters)
from .routing import DEFAULT_TTL, GEO_KIND, GeoRouter
from .tables import LastKnownLeaderTable, LeaderPointer, NegativeCache

__all__ = [
    "ConnectionKey",
    "DEFAULT_CHAIN_LIMIT",
    "DEFAULT_LOOKUP_EXPIRY",
    "DEFAULT_NEGATIVE_TTL",
    "DEFAULT_PENDING_LIMIT",
    "DEFAULT_TTL",
    "DeadLetter",
    "DeadLetterQueue",
    "DedupTable",
    "GEO_KIND",
    "GeoRouter",
    "Invocation",
    "LastKnownLeaderTable",
    "LeaderPointer",
    "MTP_ACK_KIND",
    "MTP_DEDUP_KIND",
    "MTP_KIND",
    "MtpAgent",
    "NegativeCache",
    "PendingTransmission",
    "PortHandler",
    "ReliabilityConfig",
    "RELIABILITY_STREAM",
    "SequenceCounters",
]
