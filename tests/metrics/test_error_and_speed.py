"""Unit tests for tracking error and max-trackable-speed search."""

import pytest

from repro.metrics import compare_track, max_trackable_speed
from repro.metrics.collectors import mean_metrics
from repro.metrics.collectors import CommunicationMetrics


class TestTrackingError:
    def test_errors_against_ground_truth(self):
        track = [(0.0, (0.0, 0.0)), (10.0, (1.0, 1.0))]
        comparison = compare_track(track, lambda t: (t / 10.0, 0.0))
        assert comparison.errors[0] == pytest.approx(0.0)
        assert comparison.errors[1] == pytest.approx(1.0)
        assert comparison.mean_error == pytest.approx(0.5)
        assert comparison.max_error == pytest.approx(1.0)
        assert comparison.rms_error == pytest.approx((0.5) ** 0.5)

    def test_empty_track(self):
        comparison = compare_track([], lambda t: (0.0, 0.0))
        assert comparison.mean_error != comparison.mean_error  # NaN
        assert comparison.ascii_plot() == "(no reports)"

    def test_ascii_plot_renders(self):
        track = [(float(i), (float(i), 0.5)) for i in range(10)]
        comparison = compare_track(track, lambda t: (t, 0.5))
        plot = comparison.ascii_plot(width=40, height=8)
        assert "*" in plot
        assert len(plot.splitlines()) == 8


class TestSpeedSearch:
    def test_finds_threshold(self):
        result = max_trackable_speed(
            lambda speed, seed: speed <= 2.0,
            speeds=[0.5, 1.0, 2.0, 3.0, 4.0], repetitions=3)
        assert result.max_trackable_speed == 2.0
        assert result.passed(1.0)
        assert not result.passed(3.0)

    def test_majority_vote(self):
        # Passes only on even seeds: 2 of 3 seeds (0, 1, 2) → majority.
        result = max_trackable_speed(
            lambda speed, seed: seed % 2 == 0 or speed < 1.5,
            speeds=[1.0, 2.0], repetitions=3)
        assert result.max_trackable_speed == 2.0

    def test_early_stop_after_consecutive_failures(self):
        calls = []

        def probe(speed, seed):
            calls.append(speed)
            return False

        result = max_trackable_speed(probe, speeds=[1, 2, 3, 4, 5],
                                     repetitions=1,
                                     stop_after_failures=2)
        assert result.max_trackable_speed == 0.0
        assert set(calls) == {1, 2}

    def test_unique_seeds_per_run(self):
        seeds = []
        max_trackable_speed(
            lambda speed, seed: seeds.append(seed) or True,
            speeds=[1.0, 2.0], repetitions=3)
        assert len(seeds) == len(set(seeds)) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            max_trackable_speed(lambda s, x: True, speeds=[])
        with pytest.raises(ValueError):
            max_trackable_speed(lambda s, x: True, speeds=[1.0],
                                repetitions=0)
        result = max_trackable_speed(lambda s, x: True, speeds=[1.0])
        with pytest.raises(KeyError):
            result.passed(9.9)


class TestMeanMetrics:
    def make(self, hb, msg, util):
        return CommunicationMetrics(
            heartbeat_loss_pct=hb, report_loss_pct=msg,
            link_utilization_pct=util, heartbeats_sent=100,
            reports_sent=50, frames_sent=200)

    def test_averages_rows(self):
        mean = mean_metrics([self.make(10, 4, 2), self.make(20, 8, 4)])
        assert mean.heartbeat_loss_pct == pytest.approx(15.0)
        assert mean.report_loss_pct == pytest.approx(6.0)
        assert mean.link_utilization_pct == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_metrics([])

    def test_as_row_formatting(self):
        row = self.make(7.08, 3.05, 2.54).as_row()
        assert "7.08" in row and "3.05" in row and "2.54" in row
