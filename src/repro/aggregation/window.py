"""Sliding-window stores implementing approximate aggregate state.

Section 3.2.3 defines the guarantee a successful read must provide:

* the value aggregates readings of *group members*;
* every contributing reading was measured within the freshness ``L_e``;
* at least the critical mass ``N_e`` distinct devices contributed.

A :class:`SlidingWindow` holds timestamped readings per sender and exposes
``evaluate(now)`` returning a :class:`ReadResult` whose ``valid`` flag is
the paper's valid/null flag; reads of an invalid variable return the null
flag and no value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry.registry import NullRegistry
from .functions import AggregationFn

#: Shared sink for stores constructed without a metrics registry.
_NULL_METRICS = NullRegistry()


@dataclass(frozen=True)
class AggregateVarSpec:
    """Declaration of one aggregate state variable.

    Mirrors the DSL line ``location : avg(position) confidence=2,
    freshness=1s``.
    """

    name: str
    function: str
    sensor: str
    confidence: int = 1
    freshness: float = 1.0

    def __post_init__(self) -> None:
        if self.confidence < 1:
            raise ValueError(
                f"critical mass must be >= 1: {self.confidence}")
        if self.freshness <= 0:
            raise ValueError(
                f"freshness must be positive: {self.freshness}")


@dataclass
class ReadResult:
    """Outcome of reading an aggregate state variable."""

    name: str
    valid: bool
    value: Any = None
    contributors: int = 0
    oldest_reading_age: Optional[float] = None

    def __bool__(self) -> bool:
        return self.valid


@dataclass
class _StoredReading:
    time: float
    value: Any


class SlidingWindow:
    """Per-variable reading store with freshness + critical-mass semantics.

    Only the newest reading per sender counts: critical mass is a count of
    *distinct devices*, not messages.
    """

    def __init__(self, spec: AggregateVarSpec, fn: AggregationFn) -> None:
        self.spec = spec
        self._fn = fn
        self._readings: Dict[int, _StoredReading] = {}
        self.total_reports = 0

    def add(self, sender: int, value: Any, time: float) -> None:
        """Record a reading from ``sender`` measured at ``time``."""
        existing = self._readings.get(sender)
        if existing is not None and existing.time > time:
            return  # stale reordering; keep the newer reading
        self._readings[sender] = _StoredReading(time=time, value=value)
        self.total_reports += 1

    def prune(self, now: float) -> None:
        """Drop readings older than the freshness horizon."""
        horizon = now - self.spec.freshness
        stale = [sender for sender, reading in self._readings.items()
                 if reading.time < horizon]
        for sender in stale:
            del self._readings[sender]

    def fresh_readings(self, now: float) -> List[Tuple[int, Any]]:
        """(sender, value) pairs within the freshness horizon at ``now``."""
        horizon = now - self.spec.freshness
        return sorted(
            (sender, reading.value)
            for sender, reading in self._readings.items()
            if reading.time >= horizon)

    def evaluate(self, now: float) -> ReadResult:
        """Aggregate the fresh readings; valid iff critical mass is met."""
        self.prune(now)
        fresh = self.fresh_readings(now)
        if len(fresh) < self.spec.confidence:
            return ReadResult(name=self.spec.name, valid=False,
                              contributors=len(fresh))
        values = [value for _, value in fresh]
        oldest = min(self._readings[sender].time for sender, _ in fresh)
        return ReadResult(name=self.spec.name, valid=True,
                          value=self._fn(values), contributors=len(fresh),
                          oldest_reading_age=now - oldest)

    def clear(self) -> None:
        self._readings.clear()

    def __len__(self) -> int:
        return len(self._readings)


class AggregateStore:
    """All sliding windows of one context label, owned by its leader."""

    def __init__(self, specs: List[AggregateVarSpec],
                 registry, metrics=None) -> None:
        self._windows: Dict[str, SlidingWindow] = {}
        for spec in specs:
            if spec.name in self._windows:
                raise ValueError(f"duplicate aggregate var {spec.name!r}")
            self._windows[spec.name] = SlidingWindow(
                spec, registry.get(spec.function))
        # Telemetry: leaders pass the run's MetricsRegistry; stores built
        # without one (unit tests, ad-hoc scripts) count into a null sink.
        metrics = metrics if metrics is not None else _NULL_METRICS
        self._reports_metric = metrics.counter(
            "repro_agg_reports_total",
            "Member readings folded into aggregate windows, by variable.",
            ("var",))
        self._reads_metric = metrics.counter(
            "repro_agg_reads_total",
            "Aggregate variable reads, by variable and validity.",
            ("var", "valid"))

    def window(self, name: str) -> SlidingWindow:
        return self._windows[name]

    def names(self) -> List[str]:
        return sorted(self._windows)

    def add_report(self, sender: int, readings: Dict[str, Any],
                   time: float) -> None:
        """Fan a member report out to the matching windows."""
        for name, value in readings.items():
            window = self._windows.get(name)
            if window is not None:
                window.add(sender, value, time)
                self._reports_metric.inc(1.0, name)

    def read(self, name: str, now: float) -> ReadResult:
        """Read one aggregate variable with full QoS semantics."""
        result = self._windows[name].evaluate(now)
        self._reads_metric.inc(1.0, name,
                               "true" if result.valid else "false")
        return result

    def read_all(self, now: float) -> Dict[str, ReadResult]:
        return {name: self.read(name, now) for name in self._windows}

    def max_freshness(self) -> float:
        """The loosest freshness bound across variables (report period
        derivation uses the per-variable bound; this is a helper)."""
        return max(w.spec.freshness for w in self._windows.values())

    def clear(self) -> None:
        for window in self._windows.values():
            window.clear()
