"""Property-based tests for the reliable-delivery primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import DedupTable, SequenceCounters

connections = st.tuples(
    st.sampled_from(["a#1.1", "b#2.1", "c#3.1"]),
    st.integers(min_value=0, max_value=3),
    st.sampled_from(["x#7.1", "y#8.1"]),
    st.integers(min_value=0, max_value=3),
)

#: An arrival schedule: each (connection, seq) may appear many times, in
#: any interleaving — the shape of retransmission storms.
arrivals = st.lists(
    st.tuples(connections, st.integers(min_value=1, max_value=30)),
    min_size=1, max_size=200,
)


@given(arrivals)
@settings(max_examples=150)
def test_at_most_once_per_pair_while_remembered(schedule):
    """However arrivals interleave, a pair passes check_and_mark at most
    once while it stays within the dedup windows (sized here to hold the
    whole schedule, so "remembered" means "always")."""
    table = DedupTable(connections=64, window=64)
    passed = set()
    for conn, seq in schedule:
        fresh = table.check_and_mark(conn, seq)
        if fresh:
            assert (conn, seq) not in passed, \
                f"{(conn, seq)} delivered twice"
            passed.add((conn, seq))
    # Every distinct pair got through exactly once in total.
    assert passed == set(schedule)
    assert table.duplicates == len(schedule) - len(passed)


@given(arrivals)
@settings(max_examples=100)
def test_mark_then_arrival_never_delivers(schedule):
    """Pre-warming via mark() (the dedup-share path) must suppress every
    later direct arrival of the same pair."""
    table = DedupTable(connections=64, window=64)
    for conn, seq in schedule:
        table.mark(conn, seq)
    for conn, seq in schedule:
        assert not table.check_and_mark(conn, seq)


@given(arrivals, st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=100)
def test_dedup_bounds_hold_under_any_schedule(schedule, connections_cap,
                                              window):
    table = DedupTable(connections=connections_cap, window=window)
    for conn, seq in schedule:
        table.check_and_mark(conn, seq)
        assert len(table) <= connections_cap
        assert all(len(seqs) <= window
                   for seqs in table._seen.values())


@given(st.lists(connections, min_size=1, max_size=100))
@settings(max_examples=100)
def test_sequence_numbers_gapless_per_connection(sends):
    counters = SequenceCounters()
    seen = {}
    for conn in sends:
        seq = counters.next(conn)
        assert seq == seen.get(conn, 0) + 1  # dense, strictly increasing
        seen[conn] = seq
