"""Ablation C — leader-weight duplicate suppression.

§5.2 resolves duplicate same-type labels by *weight* (member reports
received to date): lighter labels delete themselves when they hear heavier
ones.  This ablation disables suppression (by shrinking the suppression
range to zero, so no heartbeat ever qualifies) and counts how many labels
end up representing one target.
"""

from dataclasses import replace

from conftest import QUICK, emit

from repro.experiments import TankScenario, run_tank_scenario
import repro.experiments.scenarios as scenarios_module


def run_setting(suppression_on: bool, repetitions: int):
    original = scenarios_module.build_tracker_definition

    def patched(scenario, _original=original):
        definition = _original(scenario)
        if not suppression_on:
            definition.group = replace(definition.group,
                                       suppression_range=0.0)
        return definition

    scenarios_module.build_tracker_definition = patched
    try:
        labels = deletions = 0
        for rep in range(repetitions):
            scenario = TankScenario(
                columns=12 if QUICK else 16, rows=3, speed=1.0,
                heartbeat_period=0.5, relinquish=False,
                heartbeat_tx_range=2.0,  # marginal reach: duplicates form
                member_rebroadcast=False, base_loss_rate=0.10,
                with_base_station=False, seed=130 + rep)
            result = run_tank_scenario(scenario)
            labels += len(result.handovers.effective_labels())
            deletions += result.handovers.suppressions
        return labels / repetitions, deletions / repetitions
    finally:
        scenarios_module.build_tracker_definition = original


def test_ablation_weight_suppression(benchmark):
    repetitions = 1 if QUICK else 4

    def run():
        return {"suppression on": run_setting(True, repetitions),
                "suppression off": run_setting(False, repetitions)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation C — weight-based duplicate suppression",
             f"{'setting':>18} {'effective labels/run':>21} "
             f"{'deletions/run':>14}"]
    for name, (labels, deletions) in results.items():
        lines.append(f"{name:>18} {labels:>21.1f} {deletions:>14.1f}")
    emit("Ablation C — weight suppression", "\n".join(lines))

    if not QUICK:
        on_labels, on_deletions = results["suppression on"]
        off_labels, off_deletions = results["suppression off"]
        # Without suppression, duplicate labels accumulate.
        assert off_labels > on_labels
        assert off_deletions == 0.0
