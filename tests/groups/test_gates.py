"""Tests for the proximity gates on cross-label decisions.

Two same-type labels merge only when they plausibly track the same
physical stimulus (suppression_range); joining/remembering a label can be
bounded too (join_range).  §3.2.1: groups around different entities "remain
distinct and do not merge as long as the tracked entities are physically
separated".
"""

from repro.groups import GroupConfig, GroupManager, Role
from repro.sensing import SensorField
from repro.sim import Simulator


def build(config, positions, sensing):
    sim = Simulator(seed=21)
    field = SensorField(sim, communication_radius=20.0)
    managers = {}
    for i, pos in enumerate(positions):
        mote = field.add_mote(pos)
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in sensing, config)
        manager.start()
        managers[i] = manager
    return sim, managers


def test_distant_same_type_groups_stay_distinct():
    # Two isolated stimuli 15 units apart, both within radio range.
    config = GroupConfig(heartbeat_period=0.5, suppression_range=3.0,
                         join_range=3.0)
    sensing = {0, 3}
    positions = [(0.0, 0.0), (1.0, 0.0), (14.0, 0.0), (15.0, 0.0)]
    sim, managers = build(config, positions, sensing)
    sim.run(until=10.0)
    labels = {managers[0].label("t"), managers[3].label("t")}
    assert None not in labels
    assert len(labels) == 2
    assert managers[0].role("t") is Role.LEADER
    assert managers[3].role("t") is Role.LEADER


def test_nearby_duplicates_still_merge():
    config = GroupConfig(heartbeat_period=0.5, suppression_range=3.0)
    sensing = {0, 1}
    positions = [(0.0, 0.0), (1.0, 0.0)]
    sim, managers = build(config, positions, sensing)
    # Force both to lead separate labels immediately.
    for i in (0, 1):
        state = managers[i]._types["t"]
        state.sensing = True
        managers[i]._create_label(state)
    sim.run(until=6.0)
    leaders = [i for i in (0, 1)
               if managers[i].role("t") is Role.LEADER]
    assert len(leaders) == 1
    assert managers[0].label("t") == managers[1].label("t")


def test_join_range_blocks_distant_adoption():
    """A node sensing its own stimulus must not adopt a far label heard
    over a long radio link."""
    config = GroupConfig(heartbeat_period=0.5, suppression_range=3.0,
                         join_range=3.0)
    sensing = {0}
    positions = [(0.0, 0.0), (15.0, 0.0)]
    sim, managers = build(config, positions, sensing)
    sim.run(until=5.0)
    label_far = managers[0].label("t")
    sensing.add(1)
    sim.run(until=10.0)
    # Node 1 heard node 0's heartbeats (radio range 20) but created its
    # own label because the leader is far beyond join_range.
    assert managers[1].label("t") is not None
    assert managers[1].label("t") != label_far


def test_join_range_none_preserves_paper_behavior():
    config = GroupConfig(heartbeat_period=0.5, suppression_range=None,
                         join_range=None)
    sensing = {0}
    positions = [(0.0, 0.0), (15.0, 0.0)]
    sim, managers = build(config, positions, sensing)
    sim.run(until=5.0)
    label = managers[0].label("t")
    sensing.add(1)
    sim.run(until=10.0)
    # Ungated: the far node joins the existing label (single-entity
    # deployments rely on exactly this for fast targets).
    assert managers[1].label("t") == label


def test_yield_tie_break_prevents_mutual_yield():
    """Two leaders of the SAME label yield deterministically: exactly one
    survives, even when both hear each other in the same round."""
    config = GroupConfig(heartbeat_period=0.5, suppression_range=None)
    sensing = {0, 1}
    positions = [(0.0, 0.0), (1.0, 0.0)]
    sim, managers = build(config, positions, sensing)
    sim.run(until=3.0)
    label = managers[0].label("t") or managers[1].label("t")
    # Manually create the duplicate-leader condition on one label.
    for i in (0, 1):
        state = managers[i]._types["t"]
        if state.role is not Role.LEADER:
            state.sensing = True
            managers[i]._become_leader(state, label, weight=0,
                                       inherited_state=None,
                                       via="takeover")
    sim.run(until=8.0)
    leaders = [i for i in (0, 1)
               if managers[i].role("t") is Role.LEADER]
    assert len(leaders) == 1
