"""Group management: context-label coherence without consistent views."""

from .config import GroupConfig
from .messages import (HEARTBEAT_KIND, QUERY_KIND, RELINQUISH_KIND,
                       VOUCH_KIND, Heartbeat, LeaderQuery, LeaderVouch,
                       Relinquish, label_type, mint_label)
from .protocol import GroupListener, GroupManager, Role

__all__ = [
    "GroupConfig",
    "GroupListener",
    "GroupManager",
    "HEARTBEAT_KIND",
    "Heartbeat",
    "LeaderQuery",
    "LeaderVouch",
    "QUERY_KIND",
    "RELINQUISH_KIND",
    "Relinquish",
    "Role",
    "VOUCH_KIND",
    "label_type",
    "mint_label",
]
