"""Unit tests for one-shot, watchdog and periodic timers."""

import pytest

from repro.sim import OneShotTimer, PeriodicTimer, Simulator, WatchdogTimer


class TestOneShot:
    def test_fires_once_after_delay(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run(until=10.0)
        assert fired == [2.0]
        assert timer.fire_count == 1

    def test_restart_replaces_pending_firing(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.start(5.0))
        sim.run(until=10.0)
        assert fired == [6.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run(until=5.0)
        assert fired == []
        assert not timer.armed

    def test_armed_reflects_state(self):
        sim = Simulator()
        timer = OneShotTimer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run(until=2.0)
        assert not timer.armed


class TestWatchdog:
    def test_fires_after_silence(self):
        sim = Simulator()
        fired = []
        dog = WatchdogTimer(sim, 1.0, lambda: fired.append(sim.now))
        dog.kick()
        sim.run(until=5.0)
        assert fired == [1.0]

    def test_kicks_postpone_expiry(self):
        sim = Simulator()
        fired = []
        dog = WatchdogTimer(sim, 1.0, lambda: fired.append(sim.now))
        dog.kick()
        for t in (0.5, 1.0, 1.5):
            sim.schedule(t, dog.kick)
        sim.run(until=5.0)
        assert fired == [2.5]

    def test_rejects_nonpositive_timeout(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            WatchdogTimer(sim, 0.0, lambda: None)


class TestPeriodic:
    def test_fires_every_period(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_initial_delay_offsets_first_firing(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now),
                              initial_delay=0.25)
        timer.start()
        sim.run(until=2.5)
        assert fired == [0.25, 1.25, 2.25]

    def test_stop_halts_schedule(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]
        assert not timer.running

    def test_callback_may_stop_itself(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_restart_resets_phase(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(1.5, timer.start)
        sim.run(until=3.6)
        assert fired == [1.0, 2.5, 3.5]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)
