"""The EnviroTrack context definition language (§4, Appendix A)."""

from .ast import (AggregateDecl, ContextDecl, FunctionDecl, InvocationSpec,
                  ObjectDecl, Program)
from .compiler import (CompileError, EvalError, compile_condition,
                       compile_context, compile_program, compile_source)
from .lexer import LexError, Token, tokenize
from .parser import ParseError, Parser, parse_source
from .printer import format_context, format_expr, format_program
from .stdlib import DEFAULT_LIBRARY, SenseLibrary, default_library

__all__ = [
    "AggregateDecl",
    "CompileError",
    "ContextDecl",
    "DEFAULT_LIBRARY",
    "EvalError",
    "FunctionDecl",
    "InvocationSpec",
    "LexError",
    "ObjectDecl",
    "ParseError",
    "Parser",
    "Program",
    "SenseLibrary",
    "Token",
    "compile_condition",
    "compile_context",
    "compile_program",
    "compile_source",
    "default_library",
    "format_context",
    "format_expr",
    "format_program",
    "parse_source",
    "tokenize",
]
