"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advances to the horizon
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_events_scheduled_during_run_fire_in_order():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, fired.append, "nested")

    sim.schedule(1.0, first)
    sim.schedule(3.0, fired.append, "last")
    sim.run()
    assert fired == ["first", "nested", "last"]


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [(1, None)] or fired[0] is not None
    assert sim.pending() == 1


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is not None
    assert fired == ["a"]


def test_step_on_empty_queue_returns_none():
    assert Simulator().step() is None


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_time() == 2.0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_trace_records_filterable():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.record("cat.a", node=1, x=1))
    sim.schedule(2.0, lambda: sim.record("cat.b", node=2, x=2))
    sim.run()
    assert len(list(sim.trace_records("cat.a"))) == 1
    assert len(list(sim.trace_records(node=2))) == 1
    assert len(list(sim.trace_records())) == 2


def test_trace_capacity_drops_oldest():
    sim = Simulator(trace_capacity=2)
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: sim.record("c", idx=i))
    sim.run()
    assert [r.detail["idx"] for r in sim.trace] == [3, 4]


def test_events_fired_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 5
