#!/usr/bin/env python
"""Quickstart: track one vehicle across a sensor grid.

Builds the paper's canonical application with the Python API: a `tracker`
context type activates wherever a vehicle is sensed, maintains an average
position with a critical mass of 2 readings no older than 1 second, and a
`reporter` object sends the estimated position to the base station every
5 seconds.

Run:
    python examples/quickstart.py
"""

from repro import (AggregateVarSpec, ContextTypeDef, EnviroTrackApp,
                   LineTrajectory, MethodDef, Target, TimerInvocation,
                   TrackingObjectDef)


def report_function(ctx):
    """The attached object's method (Figure 2's report_function)."""
    location = ctx.read("location")
    if location.valid:
        ctx.my_send({"location": location.value})


def main() -> None:
    app = EnviroTrackApp(seed=7, communication_radius=6.0,
                         base_loss_rate=0.05)

    # A 10x2 grid of motes at integer coordinates (1 unit = 140 m).
    app.field.deploy_grid(10, 2)

    # A vehicle crossing the field on y = 0.5 at 0.1 hops/s (the paper's
    # emulated 50 km/hr T-72).
    app.field.add_target(Target(
        name="car-1", kind="vehicle",
        trajectory=LineTrajectory((0.0, 0.5), speed=0.1),
        signature_radius=1.0))
    app.field.install_detection_sensors("vehicle_seen", kinds=["vehicle"])

    # The tracker context type: activation condition, one aggregate state
    # variable with QoS attributes, one attached tracking object.
    app.add_context_type(ContextTypeDef(
        name="tracker",
        activation="vehicle_seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=2, freshness=1.0)],
        objects=[TrackingObjectDef("reporter", [
            MethodDef("report_function", TimerInvocation(5.0),
                      report_function)])]))

    base = app.place_base_station((0.0, -3.0))
    app.run(until=95.0)

    print(f"base station received {len(base.reports)} reports "
          f"for labels {base.labels_seen()}")
    for label in base.labels_seen():
        print(f"\ntrack of context label {label}:")
        for t, (x, y) in base.track(label):
            print(f"  t={t:6.1f}s  tracked=({x:5.2f}, {y:4.2f})  "
                  f"true=({0.1 * t:5.2f}, 0.50)")


if __name__ == "__main__":
    main()
