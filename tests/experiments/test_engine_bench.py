"""The engine timer-churn bench and its regression gate."""

import pytest

from repro.experiments.bench import (ENGINE_REGRESSION_FACTOR,
                                     EngineBenchPoint, EngineBenchResult,
                                     bench_engine,
                                     check_engine_regression)


def _point(nodes=500, duration=20.0, lazy=1.0, heap=5.0,
           events=1000, expiries=40, compactions=0):
    return EngineBenchPoint(nodes=nodes, duration=duration,
                            lazy_seconds=lazy, heap_seconds=heap,
                            events_fired=events, expiries=expiries,
                            compactions=compactions)


def _result(*points):
    return EngineBenchResult(points=tuple(points))


def test_small_sweep_runs_and_verifies_digests(tmp_path):
    trace = tmp_path / "churn.jsonl"
    result = bench_engine(sizes=(16,), duration=2.0,
                          trace_out=str(trace))
    point = result.point(16)
    assert point.events_fired > 0
    assert point.expiries > 0
    assert point.lazy_seconds > 0 and point.heap_seconds > 0
    assert trace.exists() and trace.stat().st_size > 0
    # Same seed, same workload: counts are reproducible.
    again = bench_engine(sizes=(16,), duration=2.0)
    assert again.point(16).events_fired == point.events_fired
    assert again.point(16).expiries == point.expiries


def test_save_load_roundtrip(tmp_path):
    result = _result(_point(nodes=100), _point(nodes=100, duration=6.0),
                     _point(nodes=500))
    path = tmp_path / "BENCH_engine.json"
    result.save(str(path))
    loaded = EngineBenchResult.load(str(path))
    assert loaded == result


def test_gate_passes_within_factor():
    ok, message = check_engine_regression(
        _result(_point(lazy=1.0, heap=3.0)),     # 3.0x measured
        _result(_point(lazy=1.0, heap=5.0)))     # 5.0x baseline, floor 2.5
    assert ok and "ok" in message


def test_gate_fails_below_speedup_floor():
    ok, message = check_engine_regression(
        _result(_point(lazy=1.0, heap=2.0)),     # 2.0x measured
        _result(_point(lazy=1.0, heap=5.0)))     # floor 2.5x
    assert not ok and "REGRESSION" in message


def test_gate_fails_on_count_drift():
    ok, message = check_engine_regression(
        _result(_point(events=1001)),
        _result(_point(events=1000)))
    assert not ok and "COUNT DRIFT" in message
    ok, message = check_engine_regression(
        _result(_point(expiries=41)),
        _result(_point(expiries=40)))
    assert not ok and "COUNT DRIFT" in message


def test_gate_quick_cells_check_counts_exactly():
    # Baseline holds full + quick cells; a quick run must be count-gated
    # against the matching quick cells and ratio-gated at the largest
    # common node count.
    baseline = _result(_point(nodes=100, duration=20.0, events=4000),
                       _point(nodes=100, duration=6.0, events=1200),
                       _point(nodes=500, duration=20.0, events=20000),
                       _point(nodes=500, duration=6.0, events=6000))
    quick_ok = _result(
        _point(nodes=100, duration=6.0, events=1200),
        _point(nodes=500, duration=6.0, events=6000))
    ok, _ = check_engine_regression(quick_ok, baseline)
    assert ok
    quick_drift = _result(
        _point(nodes=100, duration=6.0, events=1200),
        _point(nodes=500, duration=6.0, events=6001))
    ok, message = check_engine_regression(quick_drift, baseline)
    assert not ok and "COUNT DRIFT" in message


def test_gate_ignores_counts_for_unmatched_durations():
    # A custom-duration run can't be count-compared, but the speedup
    # ratio still gates against the baseline's largest cell.
    baseline = _result(_point(duration=20.0, events=20000))
    custom = _result(_point(duration=7.5, events=123, lazy=1.0, heap=4.0))
    ok, _ = check_engine_regression(custom, baseline)
    assert ok


def test_gate_requires_common_sizes():
    ok, message = check_engine_regression(
        _result(_point(nodes=100)), _result(_point(nodes=500)))
    assert not ok and "common" in message


def test_regression_factor_matches_acceptance_criterion():
    # The issue's bar: >= 2x speedup at 500 nodes.  The committed
    # baseline is ~5x, so the ratio floor (baseline / factor) keeps the
    # gate at or above the acceptance threshold.
    assert ENGINE_REGRESSION_FACTOR == pytest.approx(2.0)
