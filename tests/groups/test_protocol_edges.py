"""Edge-case tests for the group management state machine."""

from repro.groups import GroupConfig, GroupManager, Role
from repro.sensing import SensorField
from repro.sim import Simulator


class Harness:
    def __init__(self, count=6, seed=3, config=None,
                 communication_radius=10.0):
        self.sim = Simulator(seed=seed)
        self.field = SensorField(
            self.sim, communication_radius=communication_radius)
        self.sensing = set()
        self.config = config or GroupConfig(heartbeat_period=0.5,
                                            suppression_range=None)
        self.managers = {}
        for i in range(count):
            mote = self.field.add_mote((float(i), 0.0))
            manager = GroupManager(mote)
            manager.track("t", lambda m: m.node_id in self.sensing,
                          self.config)
            manager.start()
            self.managers[i] = manager

    def run(self, seconds):
        self.sim.run(until=self.sim.now + seconds)

    def roles(self):
        return {n: m.role("t") for n, m in self.managers.items()}


def test_relinquish_with_no_claimants_dissolves_label():
    """The last sensing node relinquishes into silence: the label dies
    and the node keeps only wait memory."""
    h = Harness()
    h.sensing = {2}
    h.run(3.0)
    assert h.managers[2].role("t") is Role.LEADER
    h.sensing = set()
    h.run(3.0)
    assert all(role is Role.IDLE for role in h.roles().values())
    relinquishes = list(h.sim.trace_records("gm.relinquish"))
    assert len(relinquishes) == 1
    claims = list(h.sim.trace_records("gm.claim"))
    assert claims == []


def test_wait_memory_expiry_creates_fresh_label():
    """After the wait timer expires, a returning stimulus gets a NEW
    label — 'the choice of the wait timer depends on how far to maintain
    memory of nearby events'."""
    h = Harness()
    h.sensing = {2}
    h.run(3.0)
    first_label = h.managers[2].label("t")
    h.sensing = set()
    # Wait timeout = 4.2 × 0.5 = 2.1 s; run far past it.
    h.run(10.0)
    h.sensing = {2}
    h.run(3.0)
    second_label = h.managers[2].label("t")
    assert second_label is not None
    assert second_label != first_label


def test_quick_return_within_wait_window_keeps_label():
    h = Harness()
    h.sensing = {2}
    h.run(3.0)
    first_label = h.managers[2].label("t")
    h.sensing = set()
    h.run(0.6)  # well inside the 2.1 s wait window
    h.sensing = {2}
    h.run(2.0)
    assert h.managers[2].label("t") == first_label


def test_takeover_only_mode_never_relinquishes():
    h = Harness(config=GroupConfig(heartbeat_period=0.5,
                                   relinquish=False,
                                   suppression_range=None))
    h.sensing = {2, 3}
    h.run(3.0)
    h.sensing = {3}
    h.run(3.0)
    assert list(h.sim.trace_records("gm.relinquish")) == []
    # The silent stepdown is recorded instead, and 3 recovers by timeout.
    if h.managers[2].role("t") is Role.IDLE:
        assert (list(h.sim.trace_records("gm.silent_stepdown"))
                or h.managers[3].role("t") is Role.LEADER)
    h.run(3.0)
    assert h.managers[3].role("t") is Role.LEADER


def test_simultaneous_mass_sensing_converges():
    """Every node starts sensing in the same instant (a field-wide event):
    formation jitter + suppression still converge to one label."""
    h = Harness(count=8)
    h.sensing = set(range(8))
    h.run(8.0)
    leaders = [n for n, r in h.roles().items() if r is Role.LEADER]
    assert len(leaders) == 1
    labels = {m.label("t") for m in h.managers.values()}
    assert len(labels) == 1


def test_flapping_sensor_does_not_leak_labels():
    """A node whose sensing flaps on/off every second stays on one label
    (wait memory bridges the gaps)."""
    h = Harness()
    labels_seen = set()
    for cycle in range(6):
        h.sensing = {2}
        h.run(1.0)
        label = h.managers[2].label("t")
        if label:
            labels_seen.add(label)
        h.sensing = set()
        h.run(1.0)
    assert len(labels_seen) == 1


def test_heartbeat_tx_range_limits_wait_memory_reach():
    config = GroupConfig(heartbeat_period=0.5, heartbeat_tx_range=1.5,
                         member_rebroadcast=False,
                         suppression_range=None)
    h = Harness(config=config)
    h.sensing = {0}
    h.run(3.0)
    near = h.managers[1]._types["t"]
    far = h.managers[4]._types["t"]
    assert near.wait_memory is not None
    assert far.wait_memory is None
