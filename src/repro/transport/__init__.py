"""Transport: geographic routing, LRU leader tables, and MTP."""

from .mtp import (DEFAULT_CHAIN_LIMIT, Invocation, MTP_KIND, MtpAgent,
                  PortHandler)
from .routing import DEFAULT_TTL, GEO_KIND, GeoRouter
from .tables import LastKnownLeaderTable, LeaderPointer

__all__ = [
    "DEFAULT_CHAIN_LIMIT",
    "DEFAULT_TTL",
    "GEO_KIND",
    "GeoRouter",
    "Invocation",
    "LastKnownLeaderTable",
    "LeaderPointer",
    "MTP_KIND",
    "MtpAgent",
    "PortHandler",
]
