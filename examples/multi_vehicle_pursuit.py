#!/usr/bin/env python
"""Multi-vehicle pursuit: several targets, one context type, many labels.

"There may be multiple vehicles in the field, in which case the above
code will generate multiple instances of the tracker at their respective
different locations" (§4).  Two vehicles cross the field on different
paths; the middleware instantiates one context label per vehicle, and the
pursuer's base station separates their tracks by label — without the
application naming either vehicle anywhere.

Also demonstrates persistent object state (the setState mechanism): each
tracker counts its own reports across leader handovers.

Run:
    python examples/multi_vehicle_pursuit.py
"""

from repro import (AggregateVarSpec, ContextTypeDef, EnviroTrackApp,
                   GroupConfig, LineTrajectory, MethodDef, Target,
                   TimerInvocation, TrackingObjectDef, WaypointTrajectory)


def report_function(ctx):
    location = ctx.read("location")
    if not location.valid:
        return
    # Persistent state survives leadership handovers: the report counter
    # is carried on heartbeats to successor leaders.
    count = (ctx.state or {}).get("reports", 0) + 1
    ctx.set_state({"reports": count})
    ctx.my_send({"location": location.value, "report_no": count})


def main() -> None:
    app = EnviroTrackApp(seed=21, base_loss_rate=0.05)
    app.field.deploy_grid(14, 8)

    # Vehicle 1: straight west→east run along y = 2.5.
    app.field.add_target(Target(
        name="sedan", kind="vehicle",
        trajectory=LineTrajectory((0.0, 2.5), speed=0.12),
        signature_radius=1.0))
    # Vehicle 2: a dog-leg route through the north of the field.
    app.field.add_target(Target(
        name="truck", kind="vehicle",
        trajectory=WaypointTrajectory(
            [(12.0, 6.5), (6.0, 6.5), (3.0, 4.5), (0.0, 4.5)],
            speed=0.1),
        signature_radius=1.2))
    app.field.install_detection_sensors("vehicle_seen", kinds=["vehicle"])

    app.add_context_type(ContextTypeDef(
        name="tracker",
        activation="vehicle_seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=2, freshness=1.0)],
        objects=[TrackingObjectDef("reporter", [
            MethodDef("report_function", TimerInvocation(4.0),
                      report_function)])],
        # Multi-target deployment: bound label adoption and suppression to
        # ~2× the sensing radius so the two vehicles' groups stay distinct
        # even when their paths pass within radio range of each other.
        group=GroupConfig(suppression_range=2.5, join_range=2.5)))

    base = app.place_base_station((-1.0, -2.0))
    app.run(until=110.0)

    labels = base.labels_seen()
    print(f"pursuer sees {len(labels)} distinct tracked entities "
          f"(labels {labels})\n")
    for label in labels:
        track = base.track(label)
        if not track:
            continue
        first_t, first_pos = track[0]
        last_t, last_pos = track[-1]
        last_no = max(r.values.get("report_no", 0)
                      for r in base.reports_for(label))
        print(f"{label}: {len(track)} fixes, report counter reached "
              f"{last_no}")
        print(f"  first fix t={first_t:5.1f}s at "
              f"({first_pos[0]:5.2f}, {first_pos[1]:5.2f})")
        print(f"  last  fix t={last_t:5.1f}s at "
              f"({last_pos[0]:5.2f}, {last_pos[1]:5.2f})")


if __name__ == "__main__":
    main()
