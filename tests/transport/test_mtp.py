"""Unit tests for MTP remote method invocation (§5.4)."""

from repro.groups import GroupConfig, GroupManager
from repro.naming import DirectoryService, FieldBounds
from repro.sensing import SensorField
from repro.sim import Simulator
from repro.transport import MtpAgent
from repro.transport import GeoRouter


class Net:
    """A grid where each node has router, groups, directory and MTP."""

    def __init__(self, columns=8, rows=4, communication_radius=2.5,
                 seed=4):
        self.sim = Simulator(seed=seed)
        self.field = SensorField(
            self.sim, communication_radius=communication_radius)
        self.field.deploy_grid(columns, rows)
        self.sensing = {}  # type name -> set of node ids
        bounds = FieldBounds(0.0, 0.0, float(columns - 1), float(rows - 1))
        self.routers = {}
        self.groups = {}
        self.mtp = {}
        for mote in self.field.mote_list():
            router = GeoRouter(mote)
            router.start()
            directory = DirectoryService(mote, router, bounds,
                                         hash_margin=1.0)
            directory.start()
            manager = GroupManager(mote)
            for type_name in ("alpha", "beta"):
                manager.track(
                    type_name,
                    lambda m, t=type_name: m.node_id in
                    self.sensing.get(t, set()),
                    GroupConfig(heartbeat_period=0.5))
            manager.start()
            agent = MtpAgent(mote, router, manager, directory=directory)
            agent.start()
            self.routers[mote.node_id] = router
            self.groups[mote.node_id] = manager
            self.mtp[mote.node_id] = agent

    def run(self, seconds):
        self.sim.run(until=self.sim.now + seconds)

    def leader_of(self, type_name):
        for node, manager in self.groups.items():
            if manager.is_leading(type_name):
                return node
        return None

    def register_label(self, type_name):
        """Register the current leader's label in the directory."""
        leader = self.leader_of(type_name)
        manager = self.groups[leader]
        label = manager.label(type_name)
        mote = self.field.motes[leader]
        directory = self.mtp[leader].directory
        directory.register(type_name, label, mote.position, leader)
        return leader, label


def test_invocation_between_two_labels():
    net = Net()
    net.sensing = {"alpha": {0}, "beta": {31}}
    net.run(3.0)
    alpha_leader, alpha_label = net.register_label("alpha")
    beta_leader, beta_label = net.register_label("beta")
    net.run(2.0)

    received = []
    net.mtp[beta_leader].register_port(
        "beta", 5,
        lambda args, src_label, src_port, src_leader: received.append(
            (args, src_label, src_leader)))
    net.mtp[alpha_leader].invoke(alpha_label, beta_label, 5, {"ping": 1})
    net.run(5.0)
    assert received == [({"ping": 1}, alpha_label, alpha_leader)]


def test_header_learning_updates_tables():
    net = Net()
    net.sensing = {"alpha": {0}, "beta": {31}}
    net.run(3.0)
    alpha_leader, alpha_label = net.register_label("alpha")
    beta_leader, beta_label = net.register_label("beta")
    net.run(2.0)
    net.mtp[beta_leader].register_port("beta", 1,
                                       lambda *args: None)
    net.mtp[alpha_leader].invoke(alpha_label, beta_label, 1, {})
    net.run(5.0)
    pointer = net.mtp[beta_leader].table.peek(alpha_label)
    assert pointer is not None and pointer.leader == alpha_leader


def test_unknown_label_dropped_with_reason():
    net = Net()
    net.sensing = {"alpha": {0}}
    net.run(3.0)
    alpha_leader, alpha_label = net.register_label("alpha")
    net.run(2.0)
    net.mtp[alpha_leader].invoke(alpha_label, "beta#9.99", 1, {})
    net.run(5.0)
    assert net.mtp[alpha_leader].dropped == 1


def test_port_registration_conflicts_rejected():
    net = Net(columns=2, rows=2)
    agent = net.mtp[0]
    agent.register_port("alpha", 1, lambda *a: None)
    try:
        agent.register_port("alpha", 1, lambda *a: None)
    except ValueError:
        return
    raise AssertionError("expected ValueError")


def test_heartbeats_seed_forwarding_pointers():
    net = Net()
    net.sensing = {"alpha": {5}}
    net.run(3.0)
    label = net.groups[5].label("alpha")
    # Any node in radio range of the leader learned the pointer from
    # overheard heartbeats.
    neighbor = 6
    pointer = net.mtp[neighbor].table.peek(label)
    assert pointer is not None and pointer.leader == 5
