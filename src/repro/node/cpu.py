"""Bounded-rate CPU model for a mote.

The paper's stress tests conclude that at very small heartbeat periods "the
bottleneck appears to lie in CPU processing", not bandwidth — the maximum
trackable speed *declines* once heartbeat processing saturates the motes
(Figure 5).  To reproduce that shape, every handler on a mote runs through
this CPU: a FIFO served one task at a time, each task occupying the
processor for its ``cost`` seconds.  When heartbeat floods arrive faster
than the service rate, the queue backs up, timer handlers (takeover,
relinquish) run late, and tracking breaks exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from ..sim import Simulator

#: Default per-task service time (seconds).  A MICA mote's 4 MHz ATmega103
#: spends on the order of a millisecond of handler work per message.
DEFAULT_TASK_COST = 0.001

#: Default task queue capacity (TinyOS task queues were tiny).
DEFAULT_QUEUE_LIMIT = 64


@dataclass
class _Task:
    fn: Callable[..., Any]
    args: tuple
    kwargs: dict
    cost: float
    label: str
    posted_at: float


class Cpu:
    """A single-server FIFO processor.

    Parameters
    ----------
    sim:
        Owning simulator.
    node_id:
        For trace records only.
    task_cost:
        Default service time per task, seconds.
    queue_limit:
        Maximum number of *waiting* tasks; overflow tasks are dropped and
        counted in :attr:`dropped`.
    """

    def __init__(self, sim: Simulator, node_id: int,
                 task_cost: float = DEFAULT_TASK_COST,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT) -> None:
        if task_cost < 0:
            raise ValueError(f"task cost must be >= 0: {task_cost}")
        if queue_limit < 1:
            raise ValueError(f"queue limit must be >= 1: {queue_limit}")
        self.sim = sim
        self.node_id = node_id
        self.task_cost = task_cost
        self.queue_limit = queue_limit
        self.enabled = True
        self._queue: Deque[_Task] = deque()
        self._busy = False
        self.executed = 0
        self.dropped = 0
        self.busy_time = 0.0
        self.max_backlog = 0
        self.total_latency = 0.0

    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Waiting tasks (excluding the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a task is in service."""
        return self._busy

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of elapsed simulated time spent serving tasks."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def mean_latency(self) -> float:
        """Mean queueing+service delay per executed task."""
        if self.executed == 0:
            return 0.0
        return self.total_latency / self.executed

    # ------------------------------------------------------------------
    def post(self, fn: Callable[..., Any], *args: Any,
             cost: Optional[float] = None, label: str = "task",
             **kwargs: Any) -> bool:
        """Enqueue a task; returns False when the task was dropped.

        The task runs when the CPU reaches it, *after* its service time —
        so a backlogged CPU delays protocol reactions, which is the effect
        the Figure 5 stress test measures.
        """
        if not self.enabled:
            return False
        task = _Task(fn=fn, args=args, kwargs=kwargs,
                     cost=self.task_cost if cost is None else cost,
                     label=label, posted_at=self.sim.now)
        if self._busy:
            if len(self._queue) >= self.queue_limit:
                self.dropped += 1
                self.sim.record("cpu.drop", node=self.node_id, label=label)
                return False
            self._queue.append(task)
            self.max_backlog = max(self.max_backlog, len(self._queue))
            return True
        self._begin(task)
        return True

    def shutdown(self) -> None:
        """Stop accepting and executing tasks (node failure)."""
        self.enabled = False
        self._queue.clear()

    # ------------------------------------------------------------------
    def _begin(self, task: _Task) -> None:
        self._busy = True
        self.sim.schedule(task.cost, self._finish, task, label="cpu.service")

    def _finish(self, task: _Task) -> None:
        self.busy_time += task.cost
        if not self.enabled:
            self._busy = False
            return
        self.executed += 1
        self.total_latency += self.sim.now - task.posted_at
        try:
            task.fn(*task.args, **task.kwargs)
        finally:
            if self._queue and self.enabled:
                self._begin(self._queue.popleft())
            else:
                self._busy = False
