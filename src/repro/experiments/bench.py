"""Microbenchmark: grid spatial index vs brute-force medium scan.

The workload is a transmit storm over a constant-density random
deployment (field side grows with √N, so a communication disk always
contains the same expected number of motes — the regime the grid index is
built for).  Each storm drives the real :class:`~repro.radio.Medium`
through its hot path — carrier sense, transmit fan-out, collision
marking, periodic neighbor queries — once per index mode with identical
seeds, times both, and also *checks* them against each other: the two
runs must produce byte-identical trace digests, or the bench aborts.
That makes every benchmark run a free differential test.

``python -m repro bench`` prints the table and compares the measured
grid-vs-bruteforce speedup against the committed ``BENCH_medium.json``
baseline.  The regression check compares speedup **ratios**, not wall
times, so it is stable across machines of different absolute speed.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..radio import BROADCAST, Frame, Medium, TransceiverPort, \
    reset_frame_ids
from ..sim import (PeriodicTimer, Simulator, WatchdogTimer, dump_trace,
                   trace_digest)

#: Node counts for the full and the ``--quick`` smoke sweep.
FULL_SIZES = (100, 250, 500)
QUICK_SIZES = (100, 500)
FULL_FRAMES = 400
QUICK_FRAMES = 120

#: The paper's radio reach, in grid units.
COMMUNICATION_RADIUS = 6.0
#: Field side = factor × √N keeps density constant (0.04 motes/unit²,
#: ≈4–5 motes per communication disk) as N grows.
DENSITY_SIDE_FACTOR = 5.0
#: Inter-frame gap (s); below the ≈5.8 ms airtime of a default frame, so
#: consecutive transmissions overlap and the collision path is exercised.
FRAME_GAP = 0.002

#: Committed baseline file name (repo root).
BASELINE_FILENAME = "BENCH_medium.json"

#: A run regresses when its speedup falls below baseline/REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0


@dataclass(frozen=True)
class BenchPoint:
    """Timings of one node-count cell (identical workload per mode)."""

    nodes: int
    frames: int
    grid_seconds: float
    bruteforce_seconds: float

    @property
    def speedup(self) -> float:
        """How many times faster the grid index ran the same storm."""
        if self.grid_seconds <= 0:
            return float("inf")
        return self.bruteforce_seconds / self.grid_seconds


@dataclass(frozen=True)
class BenchResult:
    """One full sweep over node counts."""

    points: Tuple[BenchPoint, ...]

    def point(self, nodes: int) -> BenchPoint:
        for candidate in self.points:
            if candidate.nodes == nodes:
                return candidate
        raise KeyError(nodes)

    def node_counts(self) -> List[int]:
        return sorted(point.nodes for point in self.points)

    def format_table(self) -> str:
        lines = ["Medium microbench — transmit storm, grid index vs "
                 "brute force (same seed, digests verified equal)",
                 f"{'nodes':>6} {'frames':>7} {'grid':>10} "
                 f"{'bruteforce':>11} {'speedup':>8}"]
        for point in sorted(self.points, key=lambda p: p.nodes):
            lines.append(
                f"{point.nodes:6d} {point.frames:7d} "
                f"{point.grid_seconds:9.4f}s "
                f"{point.bruteforce_seconds:10.4f}s "
                f"{point.speedup:7.2f}x")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "benchmark": "medium-transmit-storm",
            "communication_radius": COMMUNICATION_RADIUS,
            "density_side_factor": DENSITY_SIDE_FACTOR,
            "points": [
                {"nodes": p.nodes, "frames": p.frames,
                 "grid_seconds": round(p.grid_seconds, 6),
                 "bruteforce_seconds": round(p.bruteforce_seconds, 6),
                 "speedup": round(p.speedup, 3)}
                for p in sorted(self.points, key=lambda p: p.nodes)],
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "BenchResult":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return cls(points=tuple(
            BenchPoint(nodes=entry["nodes"], frames=entry["frames"],
                       grid_seconds=entry["grid_seconds"],
                       bruteforce_seconds=entry["bruteforce_seconds"])
            for entry in data["points"]))


def _run_storm(index: str, nodes: int, frames: int, seed: int,
               telemetry: bool = True,
               trace_path: Optional[str] = None) -> Tuple[float, str]:
    """Time one transmit storm; return (seconds, trace digest).

    Everything random — placement, sender choice, channel loss — derives
    from ``seed`` alone, so two calls differing only in ``index`` do the
    exact same work and must log the exact same trace.  ``telemetry``
    toggles the metrics/span machinery (the trace digest is identical
    either way); ``trace_path`` dumps the storm's trace as JSONL.
    """
    reset_frame_ids()
    sim = Simulator(seed=seed, telemetry=telemetry)
    medium = Medium(sim, communication_radius=COMMUNICATION_RADIUS,
                    base_loss_rate=0.1, index=index)
    side = DENSITY_SIDE_FACTOR * math.sqrt(nodes)
    placement = random.Random(seed)
    positions: List[Tuple[float, float]] = []
    for node_id in range(nodes):
        position = (placement.uniform(0.0, side),
                    placement.uniform(0.0, side))
        positions.append(position)
        medium.attach(TransceiverPort(
            node_id, (lambda p=position: p), lambda frame: None))
    senders = random.Random(seed + 1)
    started = time.perf_counter()
    for _ in range(frames):
        src = senders.randrange(nodes)
        medium.channel_busy(positions[src])
        medium.neighbors_of(src)
        medium.transmit(Frame(src=src, dst=BROADCAST, kind="bench"))
        sim.run(until=sim.now + FRAME_GAP)
    sim.run(until=sim.now + 1.0)  # drain in-flight deliveries
    elapsed = time.perf_counter() - started
    if trace_path:
        dump_trace(sim, trace_path)
    return elapsed, trace_digest(sim)


def bench_medium(quick: bool = False, seed: int = 2004,
                 sizes: Optional[Tuple[int, ...]] = None,
                 frames: Optional[int] = None,
                 trace_out: Optional[str] = None) -> BenchResult:
    """Run the sweep; raise if the two index modes ever diverge.

    ``trace_out`` writes the largest grid storm's trace as JSONL.
    """
    if sizes is None:
        sizes = QUICK_SIZES if quick else FULL_SIZES
    if frames is None:
        frames = QUICK_FRAMES if quick else FULL_FRAMES
    points: List[BenchPoint] = []
    largest = max(sizes)
    for nodes in sizes:
        grid_seconds, grid_digest = _run_storm(
            "grid", nodes, frames, seed,
            trace_path=trace_out if nodes == largest else None)
        brute_seconds, brute_digest = _run_storm("bruteforce", nodes,
                                                 frames, seed)
        if grid_digest != brute_digest:
            raise AssertionError(
                f"index modes diverged at {nodes} nodes: grid digest "
                f"{grid_digest[:16]}… != bruteforce {brute_digest[:16]}…")
        points.append(BenchPoint(nodes=nodes, frames=frames,
                                 grid_seconds=grid_seconds,
                                 bruteforce_seconds=brute_seconds))
    return BenchResult(points=tuple(points))


#: Telemetry with the profiler left disabled may cost at most this
#: factor over a telemetry-off run (the CI bench-smoke gate).
OVERHEAD_FACTOR = 1.05


@dataclass(frozen=True)
class OverheadResult:
    """Wall-time comparison of one storm with telemetry off vs on."""

    nodes: int
    frames: int
    repeats: int
    off_seconds: float
    on_seconds: float

    @property
    def ratio(self) -> float:
        """Telemetry-on time as a multiple of telemetry-off time."""
        if self.off_seconds <= 0:
            return 1.0
        return self.on_seconds / self.off_seconds

    def within(self, factor: float = OVERHEAD_FACTOR) -> bool:
        return self.ratio <= factor

    def format_table(self) -> str:
        return ("Telemetry overhead — transmit storm, profiler disabled "
                "(median interleaved off/on pair)\n"
                f"{'nodes':>6} {'frames':>7} {'repeats':>8} "
                f"{'telemetry off':>14} {'telemetry on':>13} "
                f"{'ratio':>6}\n"
                f"{self.nodes:6d} {self.frames:7d} {self.repeats:8d} "
                f"{self.off_seconds:13.4f}s {self.on_seconds:12.4f}s "
                f"{self.ratio:5.3f}x")


def bench_telemetry_overhead(nodes: int = 100, frames: int = 600,
                             seed: int = 2004,
                             repeats: int = 7) -> OverheadResult:
    """Measure what telemetry costs while the profiler stays disabled.

    Runs the same storm with telemetry off (null registry + span
    tracker) and on (live registry + spans, profiler NOT enabled),
    interleaved ``repeats`` times, and reports the pair with the
    *median* on/off ratio.  Pairing adjacent runs cancels machine-speed
    drift on shared CI hosts (a fast moment speeds up both halves of a
    pair), and the median discards pairs a scheduler hiccup landed in.
    The two modes must produce identical trace digests (telemetry is
    pure side-state), so this doubles as an equivalence check.  The
    disabled profiler itself is a single ``is None`` test per
    dispatched event, so the measured ratio bounds its cost too.
    """
    pairs: List[Tuple[float, float]] = []
    off_digest = on_digest = ""
    _run_storm("grid", nodes, frames, seed)  # warm caches/allocator
    for _ in range(repeats):
        off_seconds, off_digest = _run_storm("grid", nodes, frames, seed,
                                             telemetry=False)
        on_seconds, on_digest = _run_storm("grid", nodes, frames, seed,
                                           telemetry=True)
        pairs.append((off_seconds, on_seconds))
    if off_digest != on_digest:
        raise AssertionError(
            f"telemetry changed the trace: off digest "
            f"{off_digest[:16]}… != on {on_digest[:16]}…")
    pairs.sort(key=lambda pair: pair[1] / pair[0])
    median_off, median_on = pairs[len(pairs) // 2]
    return OverheadResult(nodes=nodes, frames=frames, repeats=repeats,
                          off_seconds=median_off, on_seconds=median_on)


#: Committed baseline for the MTP reliability-overhead bench (repo root).
MTP_BASELINE_FILENAME = "BENCH_mtp.json"

#: The reliable run may cost at most this factor more frames than the
#: committed baseline ratio says.  Frame counts are simulated —
#: deterministic given (spec, seed) on every machine — so the tolerance
#: absorbs intentional protocol tweaks between baseline refreshes, not
#: measurement noise.
MTP_OVERHEAD_FACTOR = 1.25


@dataclass(frozen=True)
class MtpBenchResult:
    """Reliable vs raw MTP on a clean channel: frames bought per ack.

    Same seed, same workload (one leader crash, zero channel loss), two
    transport modes.  Because every count is simulated, the result is
    byte-stable across machines; the regression gate can therefore
    compare ratios tightly instead of allowing wall-clock slop.
    """

    seed: int
    sent: int
    raw_frames: int
    reliable_frames: int
    raw_delivered: int
    reliable_delivered: int
    retransmits: int
    acks: int
    dead_letters: int
    duplicates: int

    @property
    def overhead(self) -> float:
        """Reliable-mode frames as a multiple of raw-mode frames."""
        if self.raw_frames <= 0:
            return float("inf")
        return self.reliable_frames / self.raw_frames

    def format_table(self) -> str:
        return ("MTP reliability bench — clean channel, one leader "
                "crash, same seed per mode (deterministic counts)\n"
                f"{'seed':>6} {'sent':>5} {'raw frames':>11} "
                f"{'rel frames':>11} {'overhead':>9} {'raw deliv':>10} "
                f"{'rel deliv':>10} {'rexmit':>7} {'acks':>5} "
                f"{'dead':>5} {'dup':>4}\n"
                f"{self.seed:6d} {self.sent:5d} {self.raw_frames:11d} "
                f"{self.reliable_frames:11d} {self.overhead:8.3f}x "
                f"{self.raw_delivered:10d} {self.reliable_delivered:10d} "
                f"{self.retransmits:7d} {self.acks:5d} "
                f"{self.dead_letters:5d} {self.duplicates:4d}")

    def to_dict(self) -> dict:
        return {
            "benchmark": "mtp-reliability-overhead",
            "seed": self.seed,
            "sent": self.sent,
            "raw_frames": self.raw_frames,
            "reliable_frames": self.reliable_frames,
            "overhead": round(self.overhead, 4),
            "raw_delivered": self.raw_delivered,
            "reliable_delivered": self.reliable_delivered,
            "retransmits": self.retransmits,
            "acks": self.acks,
            "dead_letters": self.dead_letters,
            "duplicates": self.duplicates,
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "MtpBenchResult":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return cls(seed=data["seed"], sent=data["sent"],
                   raw_frames=data["raw_frames"],
                   reliable_frames=data["reliable_frames"],
                   raw_delivered=data["raw_delivered"],
                   reliable_delivered=data["reliable_delivered"],
                   retransmits=data["retransmits"], acks=data["acks"],
                   dead_letters=data["dead_letters"],
                   duplicates=data["duplicates"])


def bench_mtp(seed: int = 2004) -> MtpBenchResult:
    """Run the paired clean-channel transport runs and count frames.

    The loss spike is disabled and the base loss rate is zero, so the
    only adversity is one scripted leader crash — enough that the
    reliable mode's machinery (retransmit + escalation) actually runs,
    while keeping the frame counts a pure function of (spec, seed).
    """
    from .transport_chaos import TransportChaosSpec, _transport_run
    overrides = dict(seed=seed, base_loss_rate=0.0, spike_extra_loss=0.0,
                     crashes=1)
    raw = _transport_run(TransportChaosSpec(mode="raw", **overrides))
    reliable = _transport_run(
        TransportChaosSpec(mode="reliable", **overrides))
    if raw.sent != reliable.sent:
        raise AssertionError(
            f"modes diverged on workload size: raw sent {raw.sent} != "
            f"reliable sent {reliable.sent}")
    return MtpBenchResult(
        seed=seed, sent=raw.sent,
        raw_frames=raw.frames, reliable_frames=reliable.frames,
        raw_delivered=raw.delivered,
        reliable_delivered=reliable.delivered,
        retransmits=reliable.retransmits, acks=reliable.acks,
        dead_letters=reliable.dead_letters,
        duplicates=reliable.duplicates)


def check_mtp_regression(current: MtpBenchResult,
                         baseline: MtpBenchResult,
                         factor: float = MTP_OVERHEAD_FACTOR
                         ) -> Tuple[bool, str]:
    """Gate the frame overhead and the clean-channel delivery floor.

    Fails when the reliable mode spends more than ``factor ×`` the
    baseline's frame overhead, or when clean-channel reliable delivery
    slips below the baseline's (it should stay at 100%), or when a
    clean-channel run produces end-to-end duplicates.
    """
    ceiling = baseline.overhead * factor
    message = (f"overhead {current.overhead:.3f}x vs baseline "
               f"{baseline.overhead:.3f}x (ceiling {ceiling:.3f}x); "
               f"delivered {current.reliable_delivered}/{current.sent}")
    if current.overhead > ceiling:
        return False, f"REGRESSION — {message}"
    if current.sent and current.reliable_delivered / current.sent \
            < baseline.reliable_delivered / max(baseline.sent, 1):
        return False, f"DELIVERY REGRESSION — {message}"
    if current.duplicates > baseline.duplicates:
        return False, (f"DUPLICATE REGRESSION — {current.duplicates} "
                       f"clean-channel duplicates (baseline "
                       f"{baseline.duplicates}); {message}")
    return True, f"ok — {message}"


#: Committed baseline for the engine timer-churn bench (repo root).
ENGINE_BASELINE_FILENAME = "BENCH_engine.json"

#: A run regresses when its lazy-vs-heap speedup falls below
#: baseline/ENGINE_REGRESSION_FACTOR.
ENGINE_REGRESSION_FACTOR = 2.0

#: Engine-churn workload shape: EnviroTrack group management keeps a few
#: watchdogs per node (receive timer, wait timer, report schedule…) and
#: kicks them on every heartbeat, so the churn bench arms this many
#: watchdogs per node and kicks them all each "heartbeat".
WATCHDOGS_PER_NODE = 4
#: Watchdog silence timeout (s); kicks land far inside it, so in heap
#: mode nearly every scheduled expiry becomes cancelled garbage.
WATCHDOG_TIMEOUT = 1.0
#: Nominal kick period (s); per-node jitter of ±20% is applied so kick
#: events interleave across nodes instead of ticking in lockstep.
KICK_PERIOD = 0.05
#: Fraction of nodes that go silent halfway through, letting their
#: watchdogs actually expire (expiries are the trace content the digest
#: check compares across schedulers).
SILENT_FRACTION = 0.2

FULL_CHURN_DURATION = 20.0
QUICK_CHURN_DURATION = 6.0


@dataclass(frozen=True)
class EngineBenchPoint:
    """Timings of one node-count cell (identical workload per scheduler)."""

    nodes: int
    duration: float
    lazy_seconds: float
    heap_seconds: float
    events_fired: int
    expiries: int
    compactions: int

    @property
    def speedup(self) -> float:
        """How many times faster the lazy scheduler ran the same churn."""
        if self.lazy_seconds <= 0:
            return float("inf")
        return self.heap_seconds / self.lazy_seconds


@dataclass(frozen=True)
class EngineBenchResult:
    """One full engine-churn sweep over node counts."""

    points: Tuple[EngineBenchPoint, ...]

    def point(self, nodes: int) -> EngineBenchPoint:
        for candidate in self.points:
            if candidate.nodes == nodes:
                return candidate
        raise KeyError(nodes)

    def node_counts(self) -> List[int]:
        return sorted(point.nodes for point in self.points)

    def format_table(self) -> str:
        lines = ["Engine microbench — watchdog kick churn, lazy scheduler "
                 "vs cancel-and-reschedule (same seed, digests verified "
                 "equal)",
                 f"{'nodes':>6} {'duration':>9} {'events':>8} "
                 f"{'expiries':>9} {'lazy':>10} {'heap':>10} "
                 f"{'speedup':>8}"]
        for point in sorted(self.points, key=lambda p: p.nodes):
            lines.append(
                f"{point.nodes:6d} {point.duration:8.1f}s "
                f"{point.events_fired:8d} {point.expiries:9d} "
                f"{point.lazy_seconds:9.4f}s {point.heap_seconds:9.4f}s "
                f"{point.speedup:7.2f}x")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "benchmark": "engine-timer-churn",
            "watchdogs_per_node": WATCHDOGS_PER_NODE,
            "watchdog_timeout": WATCHDOG_TIMEOUT,
            "kick_period": KICK_PERIOD,
            "silent_fraction": SILENT_FRACTION,
            "points": [
                {"nodes": p.nodes, "duration": p.duration,
                 "lazy_seconds": round(p.lazy_seconds, 6),
                 "heap_seconds": round(p.heap_seconds, 6),
                 "events_fired": p.events_fired,
                 "expiries": p.expiries,
                 "compactions": p.compactions,
                 "speedup": round(p.speedup, 3)}
                for p in sorted(self.points, key=lambda p: p.nodes)],
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "EngineBenchResult":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return cls(points=tuple(
            EngineBenchPoint(nodes=entry["nodes"],
                             duration=entry["duration"],
                             lazy_seconds=entry["lazy_seconds"],
                             heap_seconds=entry["heap_seconds"],
                             events_fired=entry["events_fired"],
                             expiries=entry["expiries"],
                             compactions=entry["compactions"])
            for entry in data["points"]))


def _run_churn(scheduler: str, nodes: int, duration: float, seed: int,
               trace_path: Optional[str] = None
               ) -> Tuple[float, str, int, int, int]:
    """Time one watchdog-churn run under ``scheduler``.

    Returns ``(seconds, digest, events_fired, expiries, compactions)``.
    Every node keeps :data:`WATCHDOGS_PER_NODE` watchdogs kicked from a
    per-node jittered heartbeat; a :data:`SILENT_FRACTION` of nodes stop
    kicking halfway through, so their watchdogs expire (and re-kick
    themselves), giving the trace digest content to compare.  All
    randomness derives from ``seed`` alone, so two calls differing only
    in ``scheduler`` do identical work and must log identical traces.
    """
    sim = Simulator(seed=seed, scheduler=scheduler)
    rng = sim.rng.stream("bench.engine")
    silent_after = duration / 2.0
    expiries = [0]
    for node in range(nodes):
        watchdogs: List[WatchdogTimer] = []
        for slot in range(WATCHDOGS_PER_NODE):
            cell: List[WatchdogTimer] = []

            def expire(node=node, slot=slot, cell=cell) -> None:
                expiries[0] += 1
                sim.record("bench.expire", node=node, slot=slot)
                cell[0].kick()

            dog = WatchdogTimer(sim, timeout=WATCHDOG_TIMEOUT,
                                callback=expire,
                                label=f"bench.dog{slot}@{node}")
            cell.append(dog)
            dog.kick()
            watchdogs.append(dog)
        period = KICK_PERIOD * (0.8 + 0.4 * rng.random())
        silent = rng.random() < SILENT_FRACTION

        def kick_all(watchdogs=watchdogs, silent=silent) -> None:
            if silent and sim.now >= silent_after:
                return
            for dog in watchdogs:
                dog.kick()

        PeriodicTimer(sim, period, kick_all,
                      label=f"bench.kick@{node}").start()
    started = time.perf_counter()
    sim.run(until=duration)
    elapsed = time.perf_counter() - started
    if trace_path:
        dump_trace(sim, trace_path)
    return (elapsed, trace_digest(sim), sim.events_fired, expiries[0],
            sim.compactions)


def bench_engine(quick: bool = False, seed: int = 2004,
                 sizes: Optional[Tuple[int, ...]] = None,
                 duration: Optional[float] = None,
                 trace_out: Optional[str] = None) -> EngineBenchResult:
    """Run the churn sweep; raise if the two schedulers ever diverge.

    ``trace_out`` writes the largest lazy run's trace as JSONL.
    """
    if sizes is None:
        sizes = QUICK_SIZES if quick else FULL_SIZES
    if duration is None:
        duration = QUICK_CHURN_DURATION if quick else FULL_CHURN_DURATION
    points: List[EngineBenchPoint] = []
    largest = max(sizes)
    for nodes in sizes:
        lazy_seconds, lazy_digest, lazy_fired, lazy_expiries, compactions = \
            _run_churn("lazy", nodes, duration, seed,
                       trace_path=trace_out if nodes == largest else None)
        heap_seconds, heap_digest, heap_fired, heap_expiries, _ = \
            _run_churn("heap", nodes, duration, seed)
        if lazy_digest != heap_digest:
            raise AssertionError(
                f"schedulers diverged at {nodes} nodes: lazy digest "
                f"{lazy_digest[:16]}… != heap {heap_digest[:16]}…")
        if (lazy_fired, lazy_expiries) != (heap_fired, heap_expiries):
            raise AssertionError(
                f"schedulers diverged at {nodes} nodes: lazy fired "
                f"{lazy_fired}/{lazy_expiries} expiries != heap "
                f"{heap_fired}/{heap_expiries}")
        points.append(EngineBenchPoint(
            nodes=nodes, duration=duration, lazy_seconds=lazy_seconds,
            heap_seconds=heap_seconds, events_fired=lazy_fired,
            expiries=lazy_expiries, compactions=compactions))
    return EngineBenchResult(points=tuple(points))


def check_engine_regression(current: EngineBenchResult,
                            baseline: EngineBenchResult,
                            factor: float = ENGINE_REGRESSION_FACTOR
                            ) -> Tuple[bool, str]:
    """Gate the lazy-scheduler speedup and the simulated event counts.

    The committed baseline carries both the quick and the full sweep's
    cells, keyed by (nodes, duration).  Wherever the current run matches
    a baseline cell exactly, its event/expiry counts must be **equal** —
    they are simulated quantities, so any drift means the engine's
    semantics changed, not the machine.  The wall-clock gate compares
    speedup **ratios** at the largest common node count
    (machine-independent, like the medium gate).
    """
    cur = {(p.nodes, p.duration): p for p in current.points}
    base = {(p.nodes, p.duration): p for p in baseline.points}
    for key in sorted(set(cur) & set(base)):
        measured, expected = cur[key], base[key]
        if ((measured.events_fired, measured.expiries)
                != (expected.events_fired, expected.expiries)):
            return False, (
                f"COUNT DRIFT — {key[0]} nodes / {key[1]:.1f}s: "
                f"events/expiries "
                f"{measured.events_fired}/{measured.expiries} vs baseline "
                f"{expected.events_fired}/{expected.expiries}")
    common = sorted(set(current.node_counts())
                    & set(baseline.node_counts()))
    if not common:
        return False, "no common node counts between run and baseline"
    nodes = common[-1]
    measured = max((p for p in current.points if p.nodes == nodes),
                   key=lambda p: p.duration)
    expected = base.get((measured.nodes, measured.duration)) or max(
        (p for p in baseline.points if p.nodes == nodes),
        key=lambda p: p.duration)
    floor = expected.speedup / factor
    message = (f"{nodes} nodes: speedup {measured.speedup:.2f}x vs "
               f"baseline {expected.speedup:.2f}x (floor {floor:.2f}x)")
    if measured.speedup < floor:
        return False, f"REGRESSION — {message}"
    return True, f"ok — {message}"


def check_regression(current: BenchResult, baseline: BenchResult,
                     factor: float = REGRESSION_FACTOR
                     ) -> Tuple[bool, str]:
    """Compare against the committed baseline at the largest common size.

    Passes while ``current speedup ≥ baseline speedup / factor``.  Ratios
    of ratios are machine-independent: a uniformly slower machine scales
    both timings alike, leaving the speedup unchanged.
    """
    common = sorted(set(current.node_counts())
                    & set(baseline.node_counts()))
    if not common:
        return False, "no common node counts between run and baseline"
    nodes = common[-1]
    measured = current.point(nodes).speedup
    expected = baseline.point(nodes).speedup
    floor = expected / factor
    message = (f"{nodes} nodes: speedup {measured:.2f}x vs baseline "
               f"{expected:.2f}x (floor {floor:.2f}x)")
    if measured < floor:
        return False, f"REGRESSION — {message}"
    return True, f"ok — {message}"
