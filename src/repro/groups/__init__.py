"""Group management: context-label coherence without consistent views."""

from .config import GroupConfig
from .messages import (HEARTBEAT_KIND, RELINQUISH_KIND, Heartbeat,
                       Relinquish, label_type, mint_label)
from .protocol import GroupListener, GroupManager, Role

__all__ = [
    "GroupConfig",
    "GroupListener",
    "GroupManager",
    "HEARTBEAT_KIND",
    "Heartbeat",
    "RELINQUISH_KIND",
    "Relinquish",
    "Role",
    "label_type",
    "mint_label",
]
