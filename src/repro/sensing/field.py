"""The sensor field: deployment of motes plus the physical environment.

A :class:`SensorField` owns the medium, the motes and the target list, and
offers the deployment patterns the paper uses:

* **grid** — the evaluation's rectangular grid ("motes were put at integer
  (x, y) coordinates"), 1 grid unit = 140 m in the T-72 case study;
* **random** — uniform ad hoc scattering ("dropped randomly over an area");
* **jittered grid** — grid with bounded placement error, a realistic
  air-drop approximation.

The field also installs the standard sensors every scenario needs
(``position``, per-kind binary detectors, optional magnetometers) so
scenario code stays declarative.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..node import Mote
from ..radio import Medium
from ..sim import Simulator
from .sensors import (ambient_scalar_sensor, binary_detection_sensor,
                      magnetic_sensor, position_sensor, threshold_detector)
from .target import Target

Position = Tuple[float, float]


class SensorField:
    """A deployed sensor network embedded in a physical environment.

    Parameters
    ----------
    sim:
        Owning simulator.
    communication_radius:
        Radio range in grid units (the stress tests use 6).
    base_loss_rate / interference_radius / bitrate:
        Forwarded to :class:`repro.radio.Medium`.
    mac:
        MAC installed on every mote (``"csma"`` or ``"null"``).
    task_cost / cpu_queue_limit:
        CPU model for every mote.
    index:
        Medium spatial-index strategy (``"grid"`` or ``"bruteforce"``).
    """

    def __init__(self, sim: Simulator, communication_radius: float = 6.0,
                 base_loss_rate: float = 0.0,
                 interference_radius: Optional[float] = None,
                 bitrate: float = 50_000.0, mac: str = "csma",
                 task_cost: float = 0.001,
                 cpu_queue_limit: int = 64,
                 propagation_delay: float = 0.0,
                 soft_edge_start: float = 1.0,
                 soft_edge_loss: float = 0.0,
                 index: str = "grid") -> None:
        self.sim = sim
        self.medium = Medium(sim, communication_radius=communication_radius,
                             interference_radius=interference_radius,
                             base_loss_rate=base_loss_rate, bitrate=bitrate,
                             propagation_delay=propagation_delay,
                             soft_edge_start=soft_edge_start,
                             soft_edge_loss=soft_edge_loss,
                             index=index)
        self.mac = mac
        self.task_cost = task_cost
        self.cpu_queue_limit = cpu_queue_limit
        self.motes: Dict[int, Mote] = {}
        self.targets: List[Target] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def add_mote(self, position: Position,
                 node_id: Optional[int] = None) -> Mote:
        """Place a single mote; installs the ``position`` sensor."""
        if node_id is None:
            node_id = self._next_id
        if node_id in self.motes:
            raise ValueError(f"duplicate node id {node_id}")
        self._next_id = max(self._next_id, node_id + 1)
        mote = Mote(self.sim, node_id, position, self.medium, mac=self.mac,
                    task_cost=self.task_cost,
                    queue_limit=self.cpu_queue_limit)
        mote.install_sensor("position", position_sensor(position))
        self.motes[node_id] = mote
        return mote

    def deploy_grid(self, columns: int, rows: int,
                    spacing: float = 1.0,
                    origin: Position = (0.0, 0.0)) -> List[Mote]:
        """Rectangular grid, row-major ids — the paper's testbed layout."""
        if columns < 1 or rows < 1:
            raise ValueError(f"grid must be >= 1x1: {columns}x{rows}")
        placed = []
        for row in range(rows):
            for col in range(columns):
                placed.append(self.add_mote(
                    (origin[0] + col * spacing, origin[1] + row * spacing)))
        return placed

    def deploy_random(self, count: int,
                      bounds: Tuple[float, float, float, float],
                      stream: str = "deploy") -> List[Mote]:
        """Uniform random scattering inside ``(x_lo, y_lo, x_hi, y_hi)``."""
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        x_lo, y_lo, x_hi, y_hi = bounds
        if x_lo >= x_hi or y_lo >= y_hi:
            raise ValueError(f"degenerate bounds: {bounds}")
        rng = self.sim.rng.stream(f"field.{stream}")
        return [self.add_mote((rng.uniform(x_lo, x_hi),
                               rng.uniform(y_lo, y_hi)))
                for _ in range(count)]

    def deploy_jittered_grid(self, columns: int, rows: int,
                             spacing: float = 1.0, jitter: float = 0.2,
                             origin: Position = (0.0, 0.0),
                             stream: str = "jitter") -> List[Mote]:
        """Grid with uniform placement error up to ``jitter`` per axis."""
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0: {jitter}")
        rng = self.sim.rng.stream(f"field.{stream}")
        placed = []
        for row in range(rows):
            for col in range(columns):
                placed.append(self.add_mote((
                    origin[0] + col * spacing + rng.uniform(-jitter, jitter),
                    origin[1] + row * spacing + rng.uniform(-jitter, jitter),
                )))
        return placed

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def add_target(self, target: Target) -> Target:
        if any(existing.name == target.name for existing in self.targets):
            raise ValueError(f"duplicate target name {target.name!r}")
        self.targets.append(target)
        return target

    def remove_target(self, name: str) -> None:
        self.targets = [t for t in self.targets if t.name != name]

    def target(self, name: str) -> Target:
        for candidate in self.targets:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no target named {name!r}")

    def _target_source(self) -> Sequence[Target]:
        return self.targets

    # ------------------------------------------------------------------
    # Standard sensor kits
    # ------------------------------------------------------------------
    def install_detection_sensors(self, sensor_name: str,
                                  kinds: Optional[Iterable[str]] = None,
                                  motes: Optional[Iterable[Mote]] = None
                                  ) -> None:
        """Binary detectors (the light-sensor emulation) on every mote."""
        kind_tuple = None if kinds is None else tuple(kinds)
        for mote in (motes if motes is not None else self.motes.values()):
            mote.install_sensor(sensor_name, binary_detection_sensor(
                lambda: self.sim.now, mote.position, self._target_source,
                kinds=kind_tuple))

    def install_magnetometers(self, sensor_name: str = "magnetic",
                              detector_name: str = "magnetic_detect",
                              threshold: float = 1.0,
                              noise_std: float = 0.0) -> None:
        """Raw + thresholded magnetometers on every mote."""
        for mote in self.motes.values():
            raw = magnetic_sensor(lambda: self.sim.now, mote.position,
                                  self._target_source, noise_std=noise_std,
                                  rng=self.sim.rng.stream(
                                      f"sensor.mag.{mote.node_id}"))
            mote.install_sensor(sensor_name, raw)
            mote.install_sensor(detector_name,
                                threshold_detector(raw, threshold))

    def install_ambient_sensors(self, sensor_name: str, attribute: str,
                                ambient: float = 0.0,
                                noise_std: float = 0.0) -> None:
        """Scalar ambient sensors (temperature, light, acoustic …)."""
        for mote in self.motes.values():
            mote.install_sensor(sensor_name, ambient_scalar_sensor(
                lambda: self.sim.now, mote.position, self._target_source,
                attribute, ambient=ambient, noise_std=noise_std,
                rng=self.sim.rng.stream(
                    f"sensor.{attribute}.{mote.node_id}")))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def motes_sensing(self, target_name: str) -> List[int]:
        """Ground truth S_e(t): ids of motes inside the target's signature."""
        target = self.target(target_name)
        now = self.sim.now
        return sorted(node_id for node_id, mote in self.motes.items()
                      if target.detectable_from(mote.position, now))

    def mote_list(self) -> List[Mote]:
        return [self.motes[node_id] for node_id in sorted(self.motes)]

    def fail_node(self, node_id: int) -> None:
        self.motes[node_id].fail()

    def remove_mote(self, node_id: int) -> Mote:
        """Physically remove a mote: silence it and detach its radio.

        Unlike :meth:`fail_node` (which leaves a dead-but-present radio),
        removal takes the node off the medium entirely — neighbor lists,
        carrier sense and pending deliveries all forget it.
        """
        mote = self.motes.pop(node_id)
        mote.fail()
        self.medium.detach(node_id)
        return mote
