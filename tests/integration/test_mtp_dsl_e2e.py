"""End-to-end: DSL PORT-invoked methods across MTP between two labels."""

from repro.core import EnviroTrackApp
from repro.lang import compile_source, default_library
from repro.sensing import StaticPoint, Target

PROGRAM = """
begin context sentry
    activation: sentry_beacon()
    post : avg(position) confidence=1, freshness=5s
    begin object receiver
        invocation: PORT(9)
        on_alert() {
            log(args);
            setState(alerts, 1);
        }
    end
end context

begin context watcher
    activation: watcher_beacon()
    spot : avg(position) confidence=1, freshness=5s
    begin object caller
        invocation: TIMER(5s)
        call() {
            invoke(target_label, 9, kind, 'movement');
        }
    end
end context
"""


def test_dsl_port_invocation_across_labels():
    library = default_library()
    for fn_name, sensor in (("sentry_beacon", "sentry_seen"),
                            ("watcher_beacon", "watcher_seen")):
        library.register(
            fn_name,
            lambda mote, s=sensor: (mote.read_sensor(s)
                                    if mote.has_sensor(s) else False))
    app = EnviroTrackApp(seed=27, base_loss_rate=0.02)
    app.field.deploy_grid(10, 6)
    app.field.add_target(Target("post-1", "sentry",
                                StaticPoint((8.0, 4.0)),
                                signature_radius=1.2))
    app.field.add_target(Target("cam-1", "watcher",
                                StaticPoint((1.0, 1.0)),
                                signature_radius=1.2))
    app.field.install_detection_sensors("sentry_seen", kinds=["sentry"])
    app.field.install_detection_sensors("watcher_seen", kinds=["watcher"])
    definitions = compile_source(PROGRAM, library=library)
    for definition in definitions:
        app.add_context_type(definition)
    app.install()

    # Let both groups form and register with the directory, then tell the
    # watcher which label to call (resolved via app introspection; a
    # fully dynamic app would use a directory lookup as in
    # examples/intrusion_response.py).
    app.sim.run(until=6.0)
    sentry_leaders = app.leaders("sentry")
    assert sentry_leaders
    sentry_label = next(iter(sentry_leaders.values()))
    for agent in app.agents.values():
        runtime = agent.runtime_of("watcher")
        if runtime.octx is not None:
            runtime.octx.locals["target_label"] = sentry_label

    app.sim.run(until=30.0)
    # The sentry's leader received the invocation: its persistent state
    # was set by the port method, and the app log records the delivery.
    sentry_agent = next(agent for node, agent in app.agents.items()
                        if agent.groups.is_leading("sentry"))
    assert sentry_agent.groups.persistent_state("sentry") == {"alerts": 1}
    deliveries = [r for r in app.sim.trace
                  if r.category == "mtp.deliver"]
    assert deliveries
