"""Tests for handoff-latency analysis."""

import pytest

from repro.experiments import TankScenario, run_tank_scenario
from repro.metrics import handoff_latencies
from repro.sim import Simulator


def test_synthetic_latencies():
    sim = Simulator()
    events = [
        (10.0, "gm.leader_stop", 0, "L1"),
        (10.4, "gm.leader_start", 1, "L1"),
        (20.0, "gm.leader_stop", 1, "L1"),
        (21.2, "gm.leader_start", 2, "L1"),
        (30.0, "gm.leader_stop", 2, "L2"),  # different label: unmatched
    ]
    for t, category, node, label in events:
        sim.schedule_at(t, lambda c=category, n=node, l=label:
                        sim.record(c, node=n, type="tracker", label=l))
    sim.run()
    latencies = handoff_latencies(sim, "tracker")
    assert latencies == pytest.approx([0.4, 1.2])


def test_relinquish_handoffs_faster_than_takeover():
    """The §6.2 asymmetry: explicit relinquish hands off within the claim
    window; takeover waits out the receive timeout (2.1 × heartbeat)."""

    def median_latency(relinquish):
        scenario = TankScenario(columns=14, rows=2, speed=0.2,
                                heartbeat_period=0.5,
                                relinquish=relinquish,
                                base_loss_rate=0.0,
                                with_base_station=False, seed=5)
        result = run_tank_scenario(scenario)
        latencies = handoff_latencies(result.app.sim, "tracker")
        assert latencies, "no handovers observed"
        latencies.sort()
        return latencies[len(latencies) // 2]

    relinquish = median_latency(True)
    takeover = median_latency(False)
    assert relinquish < takeover
    # Takeover latency is bounded by the receive timeout (1.05 s here);
    # silence is counted from the last heartbeat heard, so observed gaps
    # land between ~half the timeout and the full timeout.
    assert 0.4 <= takeover <= 1.1
    # Relinquish handoffs complete within the claim window most runs.
    assert relinquish < 0.3
