"""Tests for the transport-chaos experiment and the MTP bench gate."""

import pytest

from repro.analysis import transport_chaos_chart
from repro.experiments import (MtpBenchResult, TransportChaosSpec,
                               check_mtp_regression, transport_chaos)


def test_reliable_beats_raw_and_stays_duplicate_free():
    # The acceptance claim: under seeded chaos (leader crashes + a loss
    # spike) reliable MTP delivers >= 95% where raw measurably loses,
    # with zero end-to-end duplicate handler deliveries.
    result = transport_chaos(quick=True)
    raw = result.delivery_ratio("raw")
    reliable = result.delivery_ratio("reliable")
    assert raw is not None and raw < 0.90
    assert reliable is not None and reliable >= 0.95
    assert result.duplicates("reliable") == 0
    # Reliability actually worked for its wins, not luck: the machinery
    # visibly ran.
    outcome = result.outcomes_for("reliable")[0]
    assert outcome.retransmits > 0
    assert outcome.acks > 0
    raw_outcome = result.outcomes_for("raw")[0]
    assert raw_outcome.retransmits == 0 and raw_outcome.acks == 0


def test_parallel_sweep_matches_serial_byte_for_byte():
    serial = transport_chaos(quick=True)
    parallel = transport_chaos(quick=True, jobs=2)
    assert serial.outcomes == parallel.outcomes  # digests included


def test_spec_rejects_unknown_mode():
    with pytest.raises(ValueError):
        TransportChaosSpec(mode="bogus", seed=1)


def test_chart_renders_per_seed_delivery(tmp_path):
    result = transport_chaos(quick=True)
    chart = transport_chaos_chart(result)
    path = tmp_path / "transport.svg"
    chart.save(str(path))
    text = path.read_text()
    assert text.startswith("<svg") or "<svg" in text
    assert "Fire-and-forget" in text and "Reliable" in text


def _bench(overhead_frames, delivered=16, duplicates=0):
    return MtpBenchResult(seed=1, sent=16, raw_frames=100,
                          reliable_frames=overhead_frames,
                          raw_delivered=6, reliable_delivered=delivered,
                          retransmits=3, acks=delivered,
                          dead_letters=0, duplicates=duplicates)


def test_mtp_gate_passes_within_factor():
    ok, message = check_mtp_regression(_bench(240), _bench(200))
    assert ok, message


def test_mtp_gate_fails_on_frame_bloat():
    ok, message = check_mtp_regression(_bench(260), _bench(200))
    assert not ok and "REGRESSION" in message


def test_mtp_gate_fails_on_delivery_or_duplicate_slip():
    ok, message = check_mtp_regression(_bench(200, delivered=14),
                                       _bench(200))
    assert not ok and "DELIVERY" in message
    ok, message = check_mtp_regression(_bench(200, duplicates=1),
                                       _bench(200))
    assert not ok and "DUPLICATE" in message
