"""Result rendering: dependency-free SVG charts of the paper's figures."""

from .render import (chaos_chart, figure3_chart, figure4_chart,
                     figure5_chart, figure6_chart,
                     transport_chaos_chart)
from .svg import BarChart, LineChart, Series

__all__ = [
    "BarChart",
    "LineChart",
    "Series",
    "chaos_chart",
    "figure3_chart",
    "figure4_chart",
    "figure5_chart",
    "figure6_chart",
    "transport_chaos_chart",
]
