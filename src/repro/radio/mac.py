"""Medium access control.

Two MACs are provided:

* :class:`NullMac` — transmit immediately, exactly what a frame-at-a-time
  stack with no carrier sensing does.  Highest collision exposure.
* :class:`CsmaMac` — carrier-sense with random backoff, approximating the
  simple CSMA in the MICA TinyOS stack.  It is *unreliable* by design: no
  acknowledgements and no retransmissions, matching the paper's note that
  "no reliability is implemented in the MAC layer of the MICA motes".

Both expose ``send(frame)`` and report queue statistics, so protocol layers
never care which is installed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..sim import Event, Simulator
from .frames import Frame
from .medium import Medium, Position


class MacBase:
    """Common interface for MAC implementations."""

    def __init__(self, sim: Simulator, medium: Medium,
                 position_fn: Callable[[], Position]) -> None:
        self.sim = sim
        self.medium = medium
        self._position_fn = position_fn
        self.sent = 0
        self.dropped = 0

    def send(self, frame: Frame) -> None:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Abort any in-flight MAC activity (node crash/power-off).

        A dead node must not keep transmitting: without this, pending
        backoff/turnaround events outlive the mote and push its queued
        frames onto the air after ``fail()``.
        """

    @property
    def backlog(self) -> int:
        return 0


class NullMac(MacBase):
    """Fire-and-forget: every ``send`` transmits immediately."""

    def send(self, frame: Frame) -> None:
        self.sent += 1
        self.medium.transmit(frame)


class CsmaMac(MacBase):
    """Carrier-sense multiple access with bounded random backoff.

    Parameters
    ----------
    max_attempts:
        Carrier-sense attempts before the frame is dropped (congestion
        drop — counted in :attr:`dropped`).
    backoff:
        ``(lo, hi)`` uniform backoff window in seconds between attempts.
    queue_limit:
        Frames waiting behind an in-progress backoff; overflow is dropped.
    """

    def __init__(self, sim: Simulator, medium: Medium,
                 position_fn: Callable[[], Position],
                 max_attempts: int = 8,
                 backoff: Tuple[float, float] = (0.001, 0.008),
                 queue_limit: int = 32) -> None:
        super().__init__(sim, medium, position_fn)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.queue_limit = queue_limit
        self._queue: Deque[Frame] = deque()
        self._busy = False
        self._rng = sim.rng.stream("radio.mac")
        #: The single in-flight backoff/turnaround event (the MAC is
        #: serial: at most one frame is between attempts at a time).
        self._pending_event: Optional[Event] = None

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def shutdown(self) -> None:
        """Cancel the in-flight attempt and drop the backlog.

        Called when the owning mote fails: its ``mac.backoff`` /
        ``mac.next`` events must not fire (and transmit) from a dead —
        or later rebooted — node.  Leaves the MAC idle so a rebooted
        mote starts from a clean state.
        """
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._queue.clear()
        self._busy = False

    def send(self, frame: Frame) -> None:
        if self._busy:
            if len(self._queue) >= self.queue_limit:
                self.dropped += 1
                self.sim.record("mac.drop", node=frame.src,
                                kind=frame.kind, cause="queue_overflow")
                return
            self._queue.append(frame)
            return
        self._busy = True
        self._attempt(frame, attempt=1)

    # ------------------------------------------------------------------
    def _attempt(self, frame: Frame, attempt: int) -> None:
        self._pending_event = None
        if not self.medium.channel_busy(self._position_fn()):
            self.sent += 1
            self.medium.transmit(frame)
            self._finish()
            return
        if attempt >= self.max_attempts:
            self.dropped += 1
            self.sim.record("mac.drop", node=frame.src, kind=frame.kind,
                            cause="max_attempts")
            self._finish()
            return
        lo, hi = self.backoff
        delay = self._rng.uniform(lo, hi) * attempt
        self._pending_event = self.sim.schedule(
            delay, self._attempt, frame, attempt + 1, label="mac.backoff")

    def _finish(self) -> None:
        if self._queue:
            nxt = self._queue.popleft()
            # Small turnaround gap before the next frame's first attempt.
            self._pending_event = self.sim.schedule(
                self.backoff[0], self._attempt, nxt, 1, label="mac.next")
        else:
            self._busy = False


def make_mac(name: str, sim: Simulator, medium: Medium,
             position_fn: Callable[[], Position],
             **kwargs) -> MacBase:
    """Factory used by scenario configuration (``"null"`` or ``"csma"``)."""
    if name == "null":
        return NullMac(sim, medium, position_fn)
    if name == "csma":
        return CsmaMac(sim, medium, position_fn, **kwargs)
    raise ValueError(f"unknown MAC {name!r} (expected 'null' or 'csma')")
