"""Object naming and directory services (§5.3).

Every context type hashes to a coordinate; the nodes around that point form
the *directory object* for the type.  A context label registers itself when
it "first comes alive", sends occasional location updates, and the
directory answers queries like "where are all the fires?" with the list of
active labels and their last known coordinates.

Implementation notes:

* registrations/queries travel over greedy geographic routing
  (:mod:`repro.transport.routing`);
* the node nearest the hashed point stores the entry and replicates it to
  its one-hop neighborhood ("the nodes within one hop of that coordinate
  are responsible"), so the directory survives single-node failures;
* entries expire after ``entry_ttl`` without updates — departed labels
  vanish without explicit deregistration, matching the protocol's
  soft-state philosophy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..node import Component, Mote
from ..radio import distance
from ..transport.routing import GeoRouter
from .geohash import FieldBounds, hash_to_coordinate

Position = Tuple[float, float]

REGISTER_KIND = "dir.register"
REPLICATE_KIND = "dir.replicate"
QUERY_KIND = "dir.query"
RESPONSE_KIND = "dir.response"

#: Default soft-state lifetime of a directory entry (seconds).
DEFAULT_ENTRY_TTL = 30.0

#: Default per-attempt lookup timeout (seconds): the query + response
#: round trip over greedy routing at paper-scale deployments is well
#: under a second; 3 s absorbs CPU backlog and MAC backoff tails.
DEFAULT_LOOKUP_TIMEOUT = 3.0

#: Default extra attempts after the first lookup times out.
DEFAULT_LOOKUP_RETRIES = 1


@dataclass
class _PendingLookup:
    """Client-side state of one outstanding lookup."""

    context_type: str
    callback: Callable[[List["DirectoryEntry"]], None]
    attempts: int = 0
    event: Any = None  # the armed timeout event, cancellable

    def cancel_timer(self) -> None:
        if self.event is not None:
            self.event.cancel()
            self.event = None


@dataclass
class DirectoryEntry:
    """One active context label known to a directory object."""

    label: str
    context_type: str
    location: Position
    leader: int
    updated: float

    def fresh(self, now: float, ttl: float) -> bool:
        return now - self.updated <= ttl


class DirectoryService(Component):
    """Directory participant running on every mote.

    Parameters
    ----------
    mote, router:
        Host mote and its geographic router.
    bounds:
        Field bounds every node agrees on (hash domain).
    entry_ttl:
        Entry expiry without updates.
    hash_margin:
        Keep hashed coordinates this far from the field edge.
    lookup_timeout:
        Seconds to wait per lookup attempt before retrying or giving up;
        None disables timeouts (a lost response then strands the
        callback — pre-hardening behavior, kept for tests).
    lookup_retries:
        Extra query attempts after the first timeout; once exhausted the
        callback fires with ``[]`` and the pending entry is collected.
    """

    name = "dir"

    def __init__(self, mote: Mote, router: GeoRouter, bounds: FieldBounds,
                 entry_ttl: float = DEFAULT_ENTRY_TTL,
                 hash_margin: float = 1.0,
                 lookup_timeout: Optional[float] = DEFAULT_LOOKUP_TIMEOUT,
                 lookup_retries: int = DEFAULT_LOOKUP_RETRIES) -> None:
        super().__init__(mote)
        self.router = router
        self.bounds = bounds.shrunk(hash_margin)
        self.entry_ttl = entry_ttl
        if lookup_timeout is not None and lookup_timeout <= 0:
            raise ValueError(
                f"lookup_timeout must be positive: {lookup_timeout}")
        if lookup_retries < 0:
            raise ValueError(
                f"lookup_retries must be >= 0: {lookup_retries}")
        self.lookup_timeout = lookup_timeout
        self.lookup_retries = lookup_retries
        self._entries: Dict[str, DirectoryEntry] = {}
        self._pending_queries: Dict[int, _PendingLookup] = {}
        self._query_seq = 0
        # Telemetry counters (no-ops when telemetry is disabled).
        self._ops_metric = self.sim.metrics.counter(
            "repro_directory_ops_total",
            "Directory operations by kind.", ("op",))
        self._timeouts_metric = self.sim.metrics.counter(
            "repro_dir_lookup_timeouts_total",
            "Directory lookup attempts that timed out.")

    def on_start(self) -> None:
        self.router.register_delivery(REGISTER_KIND, self._on_register)
        self.router.register_delivery(QUERY_KIND, self._on_query)
        self.router.register_delivery(RESPONSE_KIND, self._on_response)
        self.handle(REPLICATE_KIND, self._on_replicate_frame)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def directory_point(self, context_type: str) -> Position:
        """Where this type's directory object lives."""
        return hash_to_coordinate(context_type, self.bounds)

    def register(self, context_type: str, label: str,
                 location: Position, leader: int) -> None:
        """Announce (or refresh) an active context label.

        Called by a label's leader when the label first comes alive and
        periodically thereafter ("occasional updates ... keep the location
        information up to date").
        """
        self._ops_metric.inc(1.0, "register")
        with self.sim.spans.span(f"dir.register.{context_type}",
                                 node=self.node_id):
            self.router.route_to_point(
                self.directory_point(context_type), REGISTER_KIND, {
                    "context_type": context_type,
                    "label": label,
                    "location": [location[0], location[1]],
                    "leader": leader,
                    "time": self.now,
                })

    def lookup(self, context_type: str,
               callback: Callable[[List[DirectoryEntry]], None]) -> None:
        """Ask "where are all the <type>s?"; the callback receives the
        entries when the response returns — or ``[]`` once the timeout
        and retry budget are spent, so callers never leak."""
        self._query_seq += 1
        query_id = self._query_seq
        pending = _PendingLookup(context_type=context_type,
                                 callback=callback)
        self._pending_queries[query_id] = pending
        self._ops_metric.inc(1.0, "lookup")
        self._send_query(query_id, pending)

    def _send_query(self, query_id: int, pending: _PendingLookup) -> None:
        """Route one query attempt and arm its timeout."""
        context_type = pending.context_type
        if self.lookup_timeout is not None:
            pending.event = self.sim.schedule(
                self.lookup_timeout, self._on_lookup_timeout, query_id,
                label=f"dir.lookup_timeout@{self.node_id}")
        # Named span: the query frame, its routed hops, the directory
        # node's handler and the response all become children, so
        # ``spans.find("dir.lookup")`` + ``TraceQuery.span()`` reads a
        # lookup end-to-end.
        with self.sim.spans.span(f"dir.lookup.{context_type}",
                                 node=self.node_id):
            self.router.route_to_point(
                self.directory_point(context_type), QUERY_KIND, {
                    "context_type": context_type,
                    "query_id": query_id,
                    "reply_to": self.node_id,
                })

    def _on_lookup_timeout(self, query_id: int) -> None:
        pending = self._pending_queries.get(query_id)
        if pending is None:
            return
        pending.event = None
        self._timeouts_metric.inc(1.0)
        if not self.mote.alive:
            # Dead client: nobody is waiting; just collect the entry.
            del self._pending_queries[query_id]
            return
        if pending.attempts < self.lookup_retries:
            pending.attempts += 1
            self._ops_metric.inc(1.0, "lookup_retry")
            self.record("lookup_retry", type=pending.context_type,
                        query=query_id, attempt=pending.attempts)
            self._send_query(query_id, pending)
            return
        del self._pending_queries[query_id]
        self.record("lookup_timeout", type=pending.context_type,
                    query=query_id)
        pending.callback([])

    # ------------------------------------------------------------------
    # Directory-object side
    # ------------------------------------------------------------------
    def entries_for(self, context_type: str) -> List[DirectoryEntry]:
        """Fresh locally stored entries of a type (directory nodes only)."""
        self._expire()
        return sorted((entry for entry in self._entries.values()
                       if entry.context_type == context_type),
                      key=lambda entry: entry.label)

    def _store(self, payload: Dict[str, Any]
               ) -> Tuple[str, Optional[DirectoryEntry]]:
        """Try to store a registration payload.

        Returns ``(status, entry)`` with status ``"stored"`` (accepted;
        entry is the stored record), ``"stale"`` (older than the entry
        already held; entry is the kept newer record) or ``"invalid"``
        (unparseable payload).
        """
        try:
            entry = DirectoryEntry(
                label=payload["label"],
                context_type=payload["context_type"],
                location=(float(payload["location"][0]),
                          float(payload["location"][1])),
                leader=int(payload["leader"]),
                updated=float(payload.get("time", self.now)),
            )
        except (KeyError, TypeError, ValueError, IndexError):
            return "invalid", None
        existing = self._entries.get(entry.label)
        if existing is not None and existing.updated > entry.updated:
            return "stale", existing
        self._entries[entry.label] = entry
        return "stored", entry

    def _on_register(self, payload: Dict[str, Any], origin: int) -> None:
        status, entry = self._store(payload)
        if status != "stored":
            if status == "stale":
                # A rejected payload must not be replicated either: the
                # one-hop neighbors would overwrite their newer replicas
                # with the stale leader pointer.
                self._ops_metric.inc(1.0, "stale_register")
                self.record("stale_register", label=entry.label,
                            type=entry.context_type)
            return
        self._ops_metric.inc(1.0, "stored")
        self.record("stored", label=entry.label, type=entry.context_type)
        # Replicate to the one-hop neighborhood around the hash point.
        self.broadcast(REPLICATE_KIND, dict(payload))

    def _on_replicate_frame(self, frame) -> None:
        payload = frame.payload
        context_type = payload.get("context_type")
        if not isinstance(context_type, str):
            return
        # Only nodes near the hashed coordinate keep replicas.
        point = self.directory_point(context_type)
        if distance(self.mote.position, point) \
                <= self.mote.medium.communication_radius:
            self._store(payload)

    def _on_query(self, payload: Dict[str, Any], origin: int) -> None:
        context_type = payload.get("context_type")
        reply_to = payload.get("reply_to")
        if not isinstance(context_type, str) or reply_to is None:
            return
        self._ops_metric.inc(1.0, "query_answered")
        entries = self.entries_for(context_type)
        self.router.route_to_node(int(reply_to), RESPONSE_KIND, {
            "query_id": payload.get("query_id"),
            "entries": [{
                "context_type": entry.context_type,
                "label": entry.label,
                "location": [entry.location[0], entry.location[1]],
                "leader": entry.leader,
                "time": entry.updated,
            } for entry in entries],
        })

    def _on_response(self, payload: Dict[str, Any], origin: int) -> None:
        pending = self._pending_queries.pop(
            payload.get("query_id"), None)
        if pending is None:
            return  # already timed out (late response) or duplicate
        pending.cancel_timer()
        self._ops_metric.inc(1.0, "response")
        entries = []
        for raw in payload.get("entries", []):
            entry = self._store_parse(raw)
            if entry is not None:
                entries.append(entry)
        pending.callback(entries)

    @staticmethod
    def _store_parse(raw: Dict[str, Any]) -> Optional[DirectoryEntry]:
        try:
            return DirectoryEntry(
                label=raw["label"], context_type=raw["context_type"],
                location=(float(raw["location"][0]),
                          float(raw["location"][1])),
                leader=int(raw["leader"]), updated=float(raw["time"]))
        except (KeyError, TypeError, ValueError, IndexError):
            return None

    def _expire(self) -> None:
        horizon = self.now - self.entry_ttl
        stale = [label for label, entry in self._entries.items()
                 if entry.updated < horizon]
        for label in stale:
            del self._entries[label]
