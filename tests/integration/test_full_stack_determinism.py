"""Whole-stack determinism: identical seeds produce identical universes,
including naming, transport and application traffic."""

from repro.aggregation import AggregateVarSpec
from repro.core import (ContextTypeDef, EnviroTrackApp, MethodDef,
                        PortInvocation, TimerInvocation, TrackingObjectDef)
from repro.sensing import LineTrajectory, StaticPoint, Target


def run_universe(seed):
    received = []

    def on_ping(ctx, args, src_label, src_port):
        received.append((round(ctx.now, 6), src_label))

    gate = ContextTypeDef(
        name="gate", activation="gate_seen",
        aggregates=[AggregateVarSpec("pos", "avg", "position",
                                     confidence=1, freshness=5.0)],
        objects=[TrackingObjectDef("ctrl", [
            MethodDef("on_ping", PortInvocation(1), on_ping)])])

    def ping(ctx):
        def found(entries):
            for entry in entries:
                ctx.invoke(entry.label, 1, {})

        ctx.lookup("gate", found)

    tracker = ContextTypeDef(
        name="tracker", activation="car_seen",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=2, freshness=1.0)],
        objects=[TrackingObjectDef("pinger", [
            MethodDef("ping", TimerInvocation(5.0), ping)])])

    app = EnviroTrackApp(seed=seed, base_loss_rate=0.05)
    app.field.deploy_grid(9, 4)
    app.field.add_target(Target("gate-1", "gatekind",
                                StaticPoint((7.0, 2.0)),
                                signature_radius=1.2))
    app.field.add_target(Target("car", "vehicle",
                                LineTrajectory((0.0, 1.5), 0.12),
                                signature_radius=1.0))
    app.field.install_detection_sensors("gate_seen", kinds=["gatekind"])
    app.field.install_detection_sensors("car_seen", kinds=["vehicle"])
    app.add_context_type(gate)
    app.add_context_type(tracker)
    app.run(until=50.0)

    stats = app.field.medium.stats
    trace_digest = [(round(r.time, 9), r.category, r.node)
                    for r in app.sim.trace]
    return {
        "received": received,
        "frames": stats.frames_sent,
        "bits": stats.bits_sent,
        "events": app.sim.events_fired,
        "trace": trace_digest,
    }


def test_identical_seeds_identical_universes():
    a = run_universe(99)
    b = run_universe(99)
    assert a["received"] == b["received"]
    assert a["frames"] == b["frames"]
    assert a["bits"] == b["bits"]
    assert a["events"] == b["events"]
    assert a["trace"] == b["trace"]


def test_different_seeds_diverge():
    a = run_universe(99)
    b = run_universe(100)
    assert a["trace"] != b["trace"]
