"""Lexer for the EnviroTrack context definition language.

Tokenizes programs like Figure 2 of the paper::

    begin context tracker
        activation: magnetic_sensor_reading()
        location : avg(position) confidence=2, freshness=1s
        begin object reporter
            invocation: TIMER(5s)
            report_function() {
                MySend(pursuer, self:label, location);
            }
        end
    end context

Numbers accept time-unit suffixes (``5s``, ``250ms``, ``2min``) and are
normalized to seconds; bare numbers stay unitless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = {
    "begin", "end", "context", "object", "activation", "deactivation",
    "invocation", "and", "or", "not", "true", "false", "if", "else",
}

#: Multi-character operators first so maximal munch works.
OPERATORS = ["<=", ">=", "==", "!=", "<", ">", "=", "+", "-", "*", "/",
             "(", ")", "{", "}", "[", "]", ":", ";", ",", "."]

TIME_UNITS = {"ms": 1e-3, "s": 1.0, "min": 60.0}


class LexError(ValueError):
    """Raised on unknown characters or malformed literals."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'ident', 'keyword', 'number', 'string', 'op', 'eof'
    text: str
    value: object
    line: int
    column: int

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word


def tokenize(source: str) -> List[Token]:
    """Tokenize a full program; always ends with an ``eof`` token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    index = 0
    line = 1
    column = 1
    length = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, column)

    while index < length:
        char = source[index]
        # Whitespace
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        # Comments: '//' and '#' to end of line
        if source.startswith("//", index) or char == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        # Identifiers / keywords
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            text = source[start:index]
            start_column = column
            column += index - start
            # Time-unit check: identifiers can't look like units here
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, text, line, start_column)
            continue
        # Numbers (with optional time-unit suffix)
        if char.isdigit() or (char == "." and index + 1 < length
                              and source[index + 1].isdigit()):
            start = index
            seen_dot = False
            while index < length and (source[index].isdigit()
                                      or (source[index] == "."
                                          and not seen_dot)):
                if source[index] == ".":
                    seen_dot = True
                index += 1
            digits = source[start:index]
            unit: Optional[str] = None
            for candidate in ("min", "ms", "s"):
                if source.startswith(candidate, index):
                    after = index + len(candidate)
                    if after >= length or not (source[after].isalnum()
                                               or source[after] == "_"):
                        unit = candidate
                        index = after
                        break
            try:
                value = float(digits)
            except ValueError:
                raise error(f"malformed number {digits!r}")
            if unit is not None:
                value *= TIME_UNITS[unit]
            text = digits + (unit or "")
            start_column = column
            column += index - start
            yield Token("number", text, value, line, start_column)
            continue
        # Strings
        if char in "'\"":
            quote = char
            start = index
            index += 1
            chars = []
            while index < length and source[index] != quote:
                if source[index] == "\n":
                    raise error("unterminated string")
                chars.append(source[index])
                index += 1
            if index >= length:
                raise error("unterminated string")
            index += 1
            text = source[start:index]
            start_column = column
            column += index - start
            yield Token("string", text, "".join(chars), line, start_column)
            continue
        # Operators
        matched = None
        for op in OPERATORS:
            if source.startswith(op, index):
                matched = op
                break
        if matched is not None:
            yield Token("op", matched, matched, line, column)
            index += len(matched)
            column += len(matched)
            continue
        raise error(f"unexpected character {char!r}")
    yield Token("eof", "", None, line, column)
