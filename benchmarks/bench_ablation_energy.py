"""Ablation D — energy cost of the group-management design choices.

Not a paper figure: the paper's motes were wall-of-time disposable, but
its design space (heartbeat period, relinquish vs takeover, flooding) is
an energy/responsiveness trade-off.  This ablation meters MICA-class radio
and CPU energy across that space for the canonical case-study run, showing
the cost of the responsiveness Figure 5 buys.
"""

from conftest import QUICK, emit

from repro.experiments import TankScenario
from repro.experiments.scenarios import build_app
from repro.node import EnergyMeter


def measure(heartbeat_period: float, relinquish: bool,
            member_rebroadcast: bool, seed: int = 3):
    scenario = TankScenario(columns=8 if QUICK else 12, rows=2,
                            heartbeat_period=heartbeat_period,
                            relinquish=relinquish,
                            member_rebroadcast=member_rebroadcast,
                            with_base_station=False, seed=seed)
    app = build_app(scenario)
    app.install()
    meter = EnergyMeter(app.sim)
    for mote in app.field.mote_list():
        meter.attach(mote)
    app.run(until=scenario.duration)
    elapsed = app.sim.now
    return {
        "active_mj": 1000.0 * meter.active_joules(elapsed),
        "hottest_mj": 1000.0 * meter.max_node_joules(elapsed,
                                                     include_idle=False),
        "breakdown": meter.breakdown(elapsed),
    }


def test_ablation_energy(benchmark):
    settings = {
        "HB 0.125s, relinquish, flood": (0.125, True, True),
        "HB 0.5s,   relinquish, flood": (0.5, True, True),
        "HB 0.5s,   relinquish, no flood": (0.5, True, False),
        "HB 0.5s,   takeover,   flood": (0.5, False, True),
        "HB 2s,     relinquish, flood": (2.0, True, True),
    }

    def run():
        return {name: measure(*params)
                for name, params in settings.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation D — active radio+CPU energy of one case-study run "
             "(millijoules, fleet-wide)",
             f"{'setting':>34} {'active mJ':>10} {'hottest mJ':>11}"]
    for name, data in results.items():
        lines.append(f"{name:>34} {data['active_mj']:>10.1f} "
                     f"{data['hottest_mj']:>11.1f}")
    idle = results["HB 0.5s,   relinquish, flood"]["breakdown"]["idle"]
    lines.append(f"(idle-listening baseline over the same run: "
                 f"{1000 * idle:.0f} mJ — duty cycling, not protocol "
                 f"tuning, is where the battery goes)")
    emit("Ablation D — energy", "\n".join(lines))

    fast = results["HB 0.125s, relinquish, flood"]["active_mj"]
    default = results["HB 0.5s,   relinquish, flood"]["active_mj"]
    slow = results["HB 2s,     relinquish, flood"]["active_mj"]
    no_flood = results["HB 0.5s,   relinquish, no flood"]["active_mj"]
    # Faster heartbeats cost more energy; the flood costs energy too.
    assert fast > default > slow
    assert default > no_flood
