"""Unit tests for the MAC layer."""

import pytest

from repro.radio import (BROADCAST, CsmaMac, Frame, Medium, NullMac,
                         TransceiverPort, make_mac)
from repro.sim import Simulator


def build(radius=5.0):
    sim = Simulator(seed=3)
    medium = Medium(sim, communication_radius=radius)
    inbox = []
    for node_id, pos in [(0, (0.0, 0.0)), (1, (1.0, 0.0))]:
        port = TransceiverPort(
            node_id, lambda p=pos: p,
            lambda frame, n=node_id: inbox.append((n, frame.kind)))
        medium.attach(port)
    return sim, medium, inbox


def test_null_mac_transmits_immediately():
    sim, medium, inbox = build()
    mac = NullMac(sim, medium, lambda: (0.0, 0.0))
    mac.send(Frame(src=0, dst=BROADCAST, kind="x"))
    assert medium.channel_busy((1.0, 0.0))
    sim.run()
    assert inbox == [(1, "x")]
    assert mac.sent == 1


def test_csma_defers_while_channel_busy():
    sim, medium, inbox = build()
    occupier = NullMac(sim, medium, lambda: (0.0, 0.0))
    csma = CsmaMac(sim, medium, lambda: (1.0, 0.0))
    occupier.send(Frame(src=0, dst=BROADCAST, kind="long"))
    csma.send(Frame(src=1, dst=BROADCAST, kind="deferred"))
    sim.run()
    # Both frames delivered; the CSMA one was deferred, not collided.
    kinds = sorted(kind for _, kind in inbox)
    assert kinds == ["deferred", "long"]
    assert medium.stats.receptions_dropped["collision"] == 0


def test_csma_drops_after_max_attempts():
    sim, medium, _ = build()
    # Keep the channel busy with back-to-back long transmissions.
    occupier = NullMac(sim, medium, lambda: (0.0, 0.0))

    def keep_busy():
        occupier.send(Frame(src=0, dst=BROADCAST, kind="noise",
                            size_bits=50_000))  # 1s airtime
        sim.schedule(0.9, keep_busy)

    keep_busy()
    csma = CsmaMac(sim, medium, lambda: (1.0, 0.0), max_attempts=3,
                   backoff=(0.01, 0.02))
    csma.send(Frame(src=1, dst=BROADCAST, kind="victim"))
    sim.run(until=5.0)
    assert csma.dropped == 1
    assert csma.sent == 0


def test_csma_queues_behind_inflight_frame():
    # The first frame goes out immediately (idle channel); later frames
    # queue behind the busy-channel backoff and all get delivered.
    sim, medium, inbox = build()
    csma = CsmaMac(sim, medium, lambda: (0.0, 0.0))
    for i in range(3):
        csma.send(Frame(src=0, dst=BROADCAST, kind=f"k{i}"))
    assert csma.backlog >= 1
    sim.run()
    assert sorted(kind for _, kind in inbox) == ["k0", "k1", "k2"]
    assert csma.sent == 3


def test_csma_queue_overflow_drops():
    sim, medium, _ = build()
    csma = CsmaMac(sim, medium, lambda: (0.0, 0.0), queue_limit=2)
    for i in range(6):
        csma.send(Frame(src=0, dst=BROADCAST, kind=f"k{i}"))
    # First transmitted immediately; second backing off; two queued; the
    # rest dropped on overflow.
    assert csma.dropped == 2
    sim.run()


def test_make_mac_factory():
    sim, medium, _ = build()
    assert isinstance(make_mac("null", sim, medium, lambda: (0, 0)),
                      NullMac)
    assert isinstance(make_mac("csma", sim, medium, lambda: (0, 0)),
                      CsmaMac)
    with pytest.raises(ValueError):
        make_mac("tdma", sim, medium, lambda: (0, 0))


def test_csma_rejects_bad_attempts():
    sim, medium, _ = build()
    with pytest.raises(ValueError):
        CsmaMac(sim, medium, lambda: (0, 0), max_attempts=0)


def test_shutdown_cancels_inflight_backoff():
    # A frame stuck in backoff behind a busy channel must die with the
    # node: after shutdown() the pending mac.backoff event is cancelled
    # and nothing transmits, even once the channel clears.
    sim, medium, inbox = build()
    occupier = NullMac(sim, medium, lambda: (0.0, 0.0))
    occupier.send(Frame(src=0, dst=BROADCAST, kind="long",
                        size_bits=50_000))  # 1s airtime
    csma = CsmaMac(sim, medium, lambda: (1.0, 0.0))
    csma.send(Frame(src=1, dst=BROADCAST, kind="zombie"))
    csma.send(Frame(src=1, dst=BROADCAST, kind="queued"))
    assert csma.backlog == 1
    sim.schedule(0.001, csma.shutdown)
    sim.run()
    assert csma.sent == 0
    assert csma.backlog == 0
    assert not csma._busy
    assert all(kind == "long" for _, kind in inbox)


def test_shutdown_cancels_turnaround_and_clears_state():
    # Shut down between a transmit and the queued frame's turnaround
    # (mac.next): the queued frame must never hit the air, and the MAC
    # must come back idle (a rebooted mote reuses the same object).
    sim, medium, inbox = build()
    csma = CsmaMac(sim, medium, lambda: (0.0, 0.0))
    csma.send(Frame(src=0, dst=BROADCAST, kind="first"))
    csma.send(Frame(src=0, dst=BROADCAST, kind="stale"))
    csma.shutdown()  # first already transmitted; "stale" is in turnaround
    sim.run()
    assert sorted(kind for _, kind in inbox) == ["first"]
    # Clean restart: the same MAC accepts and transmits new traffic.
    csma.send(Frame(src=0, dst=BROADCAST, kind="fresh"))
    sim.run()
    assert "fresh" in [kind for _, kind in inbox]


def test_shutdown_is_idempotent_and_null_mac_noop():
    sim, medium, _ = build()
    csma = CsmaMac(sim, medium, lambda: (0.0, 0.0))
    csma.shutdown()
    csma.shutdown()
    NullMac(sim, medium, lambda: (0.0, 0.0)).shutdown()
