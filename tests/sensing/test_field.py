"""Unit tests for sensor field deployment and sensor kits."""

import pytest

from repro.sensing import LineTrajectory, SensorField, Target
from repro.sim import Simulator


def make_field(**kwargs):
    return SensorField(Simulator(seed=2), **kwargs)


class TestDeployment:
    def test_grid_positions_row_major(self):
        field = make_field()
        motes = field.deploy_grid(3, 2)
        assert len(motes) == 6
        assert motes[0].position == (0.0, 0.0)
        assert motes[2].position == (2.0, 0.0)
        assert motes[3].position == (0.0, 1.0)

    def test_grid_spacing_and_origin(self):
        field = make_field()
        motes = field.deploy_grid(2, 1, spacing=2.0, origin=(1.0, 1.0))
        assert motes[1].position == (3.0, 1.0)

    def test_random_deployment_in_bounds(self):
        field = make_field()
        motes = field.deploy_random(25, (0.0, 0.0, 5.0, 5.0))
        for mote in motes:
            x, y = mote.position
            assert 0 <= x <= 5 and 0 <= y <= 5

    def test_jittered_grid_near_lattice(self):
        field = make_field()
        motes = field.deploy_jittered_grid(4, 4, jitter=0.2)
        for index, mote in enumerate(motes):
            col, row = index % 4, index // 4
            assert abs(mote.position[0] - col) <= 0.2
            assert abs(mote.position[1] - row) <= 0.2

    def test_duplicate_node_id_rejected(self):
        field = make_field()
        field.add_mote((0, 0), node_id=5)
        with pytest.raises(ValueError):
            field.add_mote((1, 1), node_id=5)

    def test_validation(self):
        field = make_field()
        with pytest.raises(ValueError):
            field.deploy_grid(0, 2)
        with pytest.raises(ValueError):
            field.deploy_random(0, (0, 0, 1, 1))
        with pytest.raises(ValueError):
            field.deploy_random(1, (1, 1, 0, 0))


class TestEnvironment:
    def test_target_registry(self):
        field = make_field()
        target = Target("car", "vehicle", LineTrajectory((0, 0), 0.1),
                        signature_radius=1.0)
        field.add_target(target)
        assert field.target("car") is target
        with pytest.raises(ValueError):
            field.add_target(Target("car", "vehicle",
                                    LineTrajectory((0, 0), 0.1)))
        field.remove_target("car")
        with pytest.raises(KeyError):
            field.target("car")

    def test_motes_sensing_ground_truth(self):
        field = make_field()
        field.deploy_grid(5, 1)
        field.add_target(Target("car", "vehicle",
                                LineTrajectory((2.0, 0.0), 0.0),
                                signature_radius=1.0))
        assert field.motes_sensing("car") == [1, 2, 3]

    def test_detection_sensor_kit(self):
        field = make_field()
        field.deploy_grid(3, 1)
        field.add_target(Target("car", "vehicle",
                                LineTrajectory((0.0, 0.0), 0.0),
                                signature_radius=0.5))
        field.install_detection_sensors("seen", kinds=["vehicle"])
        assert field.motes[0].read_sensor("seen") is True
        assert field.motes[2].read_sensor("seen") is False

    def test_magnetometer_kit(self):
        field = make_field()
        field.deploy_grid(3, 1)
        field.add_target(Target("tank", "vehicle",
                                LineTrajectory((0.0, 0.0), 0.0),
                                signature_radius=1.0,
                                attributes={"ferrous_mass": 40000.0}))
        field.install_magnetometers(threshold=1.0)
        assert field.motes[0].read_sensor("magnetic") > \
            field.motes[2].read_sensor("magnetic")
        assert field.motes[0].read_sensor("magnetic_detect") is True

    def test_every_mote_has_position_sensor(self):
        field = make_field()
        field.deploy_grid(2, 2)
        for mote in field.mote_list():
            assert mote.read_sensor("position") == mote.position
