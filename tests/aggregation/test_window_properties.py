"""Property-based tests for §3.2.3's aggregate-state guarantees.

A successful read must (a) aggregate only readings within the freshness
horizon, (b) involve at least the critical mass of *distinct* devices, and
(c) equal the aggregation function applied to exactly the fresh readings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import AggregateVarSpec, default_registry
from repro.aggregation.window import SlidingWindow

REGISTRY = default_registry()

reading_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),          # sender
        st.floats(min_value=-1e3, max_value=1e3,
                  allow_nan=False),                      # value
        st.floats(min_value=0.0, max_value=100.0),       # time
    ),
    min_size=0, max_size=60,
)

qos = st.tuples(st.integers(min_value=1, max_value=5),
                st.floats(min_value=0.1, max_value=20.0))


@given(reading_events, qos,
       st.floats(min_value=0.0, max_value=120.0))
@settings(max_examples=150)
def test_read_guarantees(events, qos_params, now):
    confidence, freshness = qos_params
    spec = AggregateVarSpec("v", "avg", "s", confidence=confidence,
                            freshness=freshness)
    window = SlidingWindow(spec, REGISTRY.get("avg"))
    latest = {}
    for sender, value, time in events:
        if time <= now:
            window.add(sender, value, time)
            if sender not in latest or time >= latest[sender][1]:
                latest[sender] = (value, time)
    result = window.evaluate(now)

    fresh = {sender: value for sender, (value, time) in latest.items()
             if time >= now - freshness}
    if len(fresh) >= confidence:
        # Valid read: value equals avg over exactly the fresh readings.
        assert result.valid
        assert result.contributors == len(fresh)
        expected = sum(fresh.values()) / len(fresh)
        assert abs(result.value - expected) < 1e-6 * max(
            1.0, abs(expected))
    else:
        # Null flag: critical mass not met.
        assert not result.valid
        assert result.value is None


@given(reading_events, qos)
@settings(max_examples=80)
def test_prune_never_affects_future_validity(events, qos_params):
    """Pruning is an optimization: evaluating with or without interleaved
    prunes gives identical results."""
    confidence, freshness = qos_params
    spec = AggregateVarSpec("v", "avg", "s", confidence=confidence,
                            freshness=freshness)
    pruned = SlidingWindow(spec, REGISTRY.get("avg"))
    plain = SlidingWindow(spec, REGISTRY.get("avg"))
    clock = 0.0
    for sender, value, time in sorted(events, key=lambda e: e[2]):
        clock = max(clock, time)
        pruned.add(sender, value, time)
        plain.add(sender, value, time)
        pruned.prune(clock)
    end = clock + 0.5
    a = pruned.evaluate(end)
    b = plain.evaluate(end)
    assert a.valid == b.valid
    if a.valid:
        assert abs(a.value - b.value) < 1e-9


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=100)
def test_aggregation_bounds(values):
    """min ≤ avg ≤ max and the median lies within the same bounds."""
    avg = REGISTRY.get("avg")(values)
    low = REGISTRY.get("min")(values)
    high = REGISTRY.get("max")(values)
    median = REGISTRY.get("median")(values)
    assert low <= avg <= high or abs(low - high) < 1e-9
    assert low <= median <= high
    assert REGISTRY.get("count")(values) == len(values)


@given(st.lists(st.tuples(st.floats(min_value=-100, max_value=100),
                          st.floats(min_value=-100, max_value=100)),
                min_size=1, max_size=20))
@settings(max_examples=60)
def test_centroid_inside_bounding_box(points):
    x, y = REGISTRY.get("centroid")(points)
    assert min(p[0] for p in points) - 1e-9 <= x \
        <= max(p[0] for p in points) + 1e-9
    assert min(p[1] for p in points) - 1e-9 <= y \
        <= max(p[1] for p in points) + 1e-9
