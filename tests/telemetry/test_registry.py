"""Unit tests for the metric instruments and registry."""

import pytest

from repro.telemetry.registry import (Counter, Gauge, Histogram,
                                      MetricsRegistry, NullRegistry)


class TestCounter:
    def test_unlabelled_inc_and_total(self):
        c = Counter("frames_total", "Frames.")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)
        assert c.total() == pytest.approx(3.5)

    def test_labelled_series_are_independent(self):
        c = Counter("frames_total", "Frames.", ("kind",))
        c.inc(1.0, "heartbeat")
        c.inc(1.0, "heartbeat")
        c.inc(5.0, "claim")
        assert c.value("heartbeat") == pytest.approx(2.0)
        assert c.value("claim") == pytest.approx(5.0)
        assert c.total() == pytest.approx(7.0)
        assert c.series() == {("heartbeat",): 2.0, ("claim",): 5.0}

    def test_negative_increment_rejected(self):
        c = Counter("n", "")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)

    def test_wrong_label_arity_rejected(self):
        c = Counter("n", "", ("kind",))
        with pytest.raises(ValueError, match="label"):
            c.inc(1.0)
        with pytest.raises(ValueError, match="label"):
            c.inc(1.0, "a", "b")

    def test_fast_path_still_validates_new_keys(self):
        # The seen-key fast path must not let a bad arity slip in after
        # a good series exists.
        c = Counter("n", "", ("kind",))
        c.inc(1.0, "hb")
        with pytest.raises(ValueError, match="label"):
            c.inc(1.0, "hb", "extra")
        assert c.value("hb") == pytest.approx(1.0)

    def test_bound_counter(self):
        c = Counter("n", "", ("kind",))
        bound = c.labels("hb")
        bound.inc()
        bound.inc(2.0)
        assert c.value("hb") == pytest.approx(3.0)

    def test_render_prometheus_lines(self):
        c = Counter("frames_total", "Frames sent.", ("kind",))
        c.inc(2.0, "hb")
        lines = c.render()
        assert "# HELP frames_total Frames sent." in lines
        assert "# TYPE frames_total counter" in lines
        assert 'frames_total{kind="hb"} 2' in lines

    def test_render_untouched_counter_emits_zero_sample(self):
        assert Counter("n", "").render()[-1] == "n 0"


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", "")
        g.set(4.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value() == pytest.approx(1.0)

    def test_labelled(self):
        g = Gauge("joules", "", ("node",))
        g.set(1.5, "3")
        g.inc(0.5, "3")
        assert g.value("3") == pytest.approx(2.0)
        assert g.value("4") == 0.0


class TestHistogram:
    def test_observe_count_sum_mean(self):
        h = Histogram("lat", "", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)
        assert h.mean() == pytest.approx(5.55 / 3)

    def test_render_cumulative_buckets(self):
        h = Histogram("lat", "Latency.", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = "\n".join(h.render())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_quantile_interpolates(self):
        h = Histogram("lat", "", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        assert 0.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(1.0) <= 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", "", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("n", "help", ("kind",))
        b = reg.counter("n", "other help", ("kind",))
        assert a is b

    def test_conflicting_kind_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n", "")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("n", "")

    def test_conflicting_labels_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n", "", ("kind",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("n", "", ("node",))

    def test_names_contains_iter(self):
        reg = MetricsRegistry()
        reg.counter("b", "")
        reg.gauge("a", "")
        assert reg.names() == ["a", "b"]
        assert "a" in reg
        assert list(reg) == ["a", "b"]
        assert reg.get("missing") is None

    def test_render_prometheus_covers_all_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "C.").inc(1.0)
        reg.gauge("g", "G.").set(2.0)
        reg.histogram("h", "H.", buckets=(1.0,)).observe(0.5)
        text = reg.render_prometheus()
        for fragment in ("c_total 1", "g 2", 'h_bucket{le="1"} 1',
                         "# TYPE h histogram"):
            assert fragment in text
        assert text.endswith("\n")

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "", ("kind",)).inc(2.0, "hb")
        snap = reg.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["series"] == {("hb",): 2.0}


class TestNullRegistry:
    def test_accepts_everything_records_nothing(self):
        reg = NullRegistry()
        c = reg.counter("n", "", ("kind",))
        c.inc(5.0, "anything", "even", "wrong", "arity")
        g = reg.gauge("g")
        g.set(3.0)
        g.dec()
        h = reg.histogram("h")
        h.observe(1.0)
        assert c.value() == 0.0
        assert c.total() == 0.0
        assert h.count() == 0
        assert h.quantile(0.5) == 0.0
        assert reg.names() == []
        assert "n" not in reg
        assert reg.render_prometheus() == ""
        assert reg.snapshot() == {}
        assert reg.get("n") is None

    def test_labels_chain(self):
        reg = NullRegistry()
        reg.counter("n").labels("x").inc()
