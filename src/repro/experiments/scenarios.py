"""Canonical evaluation scenarios.

The paper's testbed (§6.1): a rectangular grid of motes at integer
coordinates (1 grid unit ≙ 140 m at the case study's 1000:1 scale), a
tank-like target crossing on the horizontal line ``y = 0.5``, a single
``tracker`` context type declared exactly as in Figure 2 (average position,
confidence 2, freshness 1 s, 5 s report timer), and a base station logging
reports.  The stress tests (§6.2) reuse the same rig with varying speed,
heartbeat period, sensing radius and communication radius.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..aggregation import AggregateVarSpec
from ..core import (ContextTypeDef, EnviroTrackApp, MethodDef,
                    TimerInvocation, TrackingObjectDef)
from ..groups import GroupConfig
from ..metrics import (CommunicationMetrics, HandoverStats,
                       TrajectoryComparison, analyze_handovers,
                       communication_metrics, compare_track,
                       tracking_coverage)
from ..radio import reset_frame_ids
from ..sensing import LineTrajectory, Target

#: The paper's emulated T-72 speeds: 10 s/hop (50 km/hr) and 15 s/hop
#: (33 km/hr) at the 1000:1 scale with 140 m grid spacing.
SPEED_50_KMH = 1.0 / 10.0
SPEED_33_KMH = 1.0 / 15.0


@dataclass(frozen=True)
class TankScenario:
    """Parameters of one tank-tracking run.

    Defaults reproduce the §6.1 case study; the stress benches override
    speed, heartbeat period, radii and the relinquish/takeover mode.
    """

    columns: int = 12
    rows: int = 2
    speed: float = SPEED_50_KMH           # hops/second
    sensing_radius: float = 1.0           # grid units
    communication_radius: float = 6.0     # grid units
    heartbeat_period: float = 0.5
    heartbeat_tx_range: Optional[float] = None
    relinquish: bool = True
    member_rebroadcast: bool = True
    flood_hops: int = 0
    base_loss_rate: float = 0.05
    #: Soft reception edge (see repro.radio.Medium); 1.0/0.0 = sharp disk.
    soft_edge_start: float = 1.0
    soft_edge_loss: float = 0.0
    mac: str = "csma"
    task_cost: float = 0.001
    cpu_queue_limit: int = 64
    confidence: int = 2
    freshness: float = 1.0
    report_timer: float = 5.0
    start_margin: float = 1.5             # hops outside the grid
    #: Uniform per-axis placement error (grid units).  0 = perfect grid.
    #: The Figure 4 experiment uses a jittered deployment so that
    #: heartbeat reach relative to the sensing perimeter varies
    #: continuously, as on the physical testbed.
    deployment_jitter: float = 0.0
    with_base_station: bool = True
    enable_directory: bool = False
    enable_mtp: bool = False
    leader_kill_times: Tuple[float, ...] = field(default_factory=tuple)
    #: Medium spatial index ("grid" or "bruteforce"); results are
    #: byte-identical either way — see the equivalence suite.
    medium_index: str = "grid"
    #: Run with the metrics registry + span tracker live (True) or as
    #: null objects (False); trace digests are identical either way.
    telemetry: bool = True
    #: Event-engine scheduler ("lazy" or "heap"); results are
    #: byte-identical either way — see the scheduler equivalence suite.
    scheduler: str = "lazy"
    seed: int = 0

    @property
    def track_y(self) -> float:
        """The Figure 3 run crosses between the two mote rows at y=0.5."""
        return (self.rows - 1) / 2.0

    @property
    def entry_time(self) -> float:
        """When the target's signature first reaches the grid (x ≥ 0)."""
        return max(0.0,
                   (self.start_margin - self.sensing_radius) / self.speed)

    @property
    def exit_time(self) -> float:
        """When the signature clears the far edge of the grid."""
        return (self.start_margin + (self.columns - 1)
                + self.sensing_radius) / self.speed

    @property
    def duration(self) -> float:
        return self.exit_time + 2.0

    def with_speed(self, speed: float) -> "TankScenario":
        return replace(self, speed=speed)

    def with_seed(self, seed: int) -> "TankScenario":
        return replace(self, seed=seed)


@dataclass
class TankRunResult:
    """Everything the figure/table analyses need from one run."""

    scenario: TankScenario
    app: EnviroTrackApp
    handovers: HandoverStats
    communication: CommunicationMetrics
    comparison: Optional[TrajectoryComparison]
    coverage: float

    @property
    def coherent(self) -> bool:
        """Single-group abstraction maintained AND the target was actually
        tracked across its traversal (an escaped target that is never
        rediscovered also breaks tracking)."""
        return (self.handovers.coherent
                and len(self.handovers.effective_labels()) == 1
                and self.coverage >= 0.9)


def build_tracker_definition(scenario: TankScenario) -> ContextTypeDef:
    """The Figure 2 context declaration, parameterized by the scenario."""

    def report(ctx) -> None:
        result = ctx.read("location")
        if result.valid:
            ctx.my_send({"location": result.value})

    group = GroupConfig(
        heartbeat_period=scenario.heartbeat_period,
        heartbeat_tx_range=scenario.heartbeat_tx_range,
        relinquish=scenario.relinquish,
        member_rebroadcast=scenario.member_rebroadcast,
        flood_hops=scenario.flood_hops,
        suppression_range=2.0 * scenario.sensing_radius + 0.5,
    )
    return ContextTypeDef(
        name="tracker",
        activation="tank_detect",
        aggregates=[AggregateVarSpec("location", "avg", "position",
                                     confidence=scenario.confidence,
                                     freshness=scenario.freshness)],
        objects=[TrackingObjectDef("reporter", [
            MethodDef("report_function",
                      TimerInvocation(scenario.report_timer), report)])],
        group=group,
        delay_estimate=0.1,
    )


def build_app(scenario: TankScenario) -> EnviroTrackApp:
    """Assemble (but do not run) the scenario's deployment."""
    app = EnviroTrackApp(
        seed=scenario.seed,
        communication_radius=scenario.communication_radius,
        base_loss_rate=scenario.base_loss_rate,
        soft_edge_start=scenario.soft_edge_start,
        soft_edge_loss=scenario.soft_edge_loss,
        mac=scenario.mac,
        task_cost=scenario.task_cost,
        cpu_queue_limit=scenario.cpu_queue_limit,
        enable_directory=scenario.enable_directory,
        enable_mtp=scenario.enable_mtp,
        medium_index=scenario.medium_index,
        telemetry=scenario.telemetry,
        scheduler=scenario.scheduler,
    )
    if scenario.deployment_jitter > 0:
        app.field.deploy_jittered_grid(scenario.columns, scenario.rows,
                                       jitter=scenario.deployment_jitter)
    else:
        app.field.deploy_grid(scenario.columns, scenario.rows)
    start = (-scenario.start_margin, scenario.track_y)
    app.field.add_target(Target(
        name="tank", kind="vehicle",
        trajectory=LineTrajectory(start, scenario.speed),
        signature_radius=scenario.sensing_radius))
    app.field.install_detection_sensors("tank_detect", kinds=["vehicle"])
    app.add_context_type(build_tracker_definition(scenario))
    if scenario.with_base_station:
        app.place_base_station((-1.0, -2.0))
    return app


def run_tank_scenario(scenario: TankScenario) -> TankRunResult:
    """Run the scenario to completion and analyze the trace."""
    # Frame ids restart per run so the trace depends only on the scenario
    # and seed — not on prior runs in this process or on which worker of
    # a parallel sweep executed it.
    reset_frame_ids()
    app = build_app(scenario)
    app.install()
    target = app.field.target("tank")
    if scenario.leader_kill_times:
        for kill_time in scenario.leader_kill_times:
            app.sim.schedule_at(kill_time, _kill_current_leader, app)
    app.run(until=scenario.duration)
    # Grace for effective labels: a few heartbeat periods (suppression of
    # an entry race completes within about one), clamped so very short
    # fast-target runs can still produce an effective label at all.
    traversal = scenario.exit_time - scenario.entry_time
    grace = min(max(3.0 * scenario.heartbeat_period, 1.0),
                max(0.5, 0.3 * traversal))
    handovers = analyze_handovers(app.sim, "tracker", grace=grace)
    comm = communication_metrics(app.field.medium, app.sim.now)
    comparison = None
    if app.base_station is not None:
        labels = app.base_station.labels_seen()
        if labels:
            # Merge all labels' reports into one track (Figure 3 plots the
            # reported trajectory regardless of label identity).
            merged = []
            for label in labels:
                merged.extend(app.base_station.track(label))
            merged.sort()
            comparison = compare_track(merged, target.position)
    # Judge coverage over the middle of the traversal, skipping the
    # formation transient at entry and the teardown at exit.  For fast
    # targets the traversal is short, so the margins scale down with it.
    span = scenario.exit_time - scenario.entry_time
    cov_start = scenario.entry_time + min(2.0, 0.25 * span)
    cov_end = scenario.exit_time - min(1.0, 0.1 * span)
    coverage = tracking_coverage(
        app.sim, "tracker", start=cov_start, end=cov_end,
        max_gap=max(1.0, 3.0 * scenario.heartbeat_period))
    return TankRunResult(scenario=scenario, app=app, handovers=handovers,
                         communication=comm, comparison=comparison,
                         coverage=coverage)


def _kill_current_leader(app: EnviroTrackApp) -> None:
    """Failure injection: crash whichever node currently leads the tank's
    label (the Figure 5 'current leader fails' worst case)."""
    for node_id, agent in app.agents.items():
        if agent.groups.is_leading("tracker"):
            app.field.fail_node(node_id)
            return
