"""Property: leadership survives any single-node crash, within bound.

The §5.2 design argument says a crashed leader is replaced after the
receive timeout (2.1 × heartbeat period).  End to end, recovery also
pays for takeover liveness probes (≤ ``takeover_probes × claim_window``)
and, when two members usurp near-simultaneously, one round of
weight-based duplicate resolution (the loser yields on hearing the
winner's heartbeat, ≤ ~2 heartbeat periods under loss).  The property
pins the whole pipeline: injected crash → ``analyze_recovery`` reports a
stable unique live leader of the *same* label inside that bound.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan, LeaderCrash, NodeCrash
from repro.groups import GroupConfig, GroupManager, Role
from repro.metrics import analyze_recovery
from repro.sensing import SensorField
from repro.sim import Simulator

SENSING_IDS = frozenset({1, 2, 3})


def recovery_bound(config: GroupConfig) -> float:
    """Detection + probing + duplicate resolution + scheduling slack."""
    return (config.receive_timeout
            + config.takeover_probes * config.claim_window
            + 2.0 * config.heartbeat_period + 0.5)


def build(seed, loss, heartbeat_period, count=6):
    sim = Simulator(seed=seed)
    field = SensorField(sim, communication_radius=10.0,
                        base_loss_rate=loss)
    config = GroupConfig(heartbeat_period=heartbeat_period,
                         suppression_range=None)
    managers = {}
    for i in range(count):
        mote = field.add_mote((float(i), 0.0))
        manager = GroupManager(mote)
        manager.track("t", lambda m: m.node_id in SENSING_IDS, config)
        manager.start()
        managers[i] = manager
    return sim, field, managers, config


def live_leaders(managers):
    return [n for n, m in managers.items()
            if m.role("t") is Role.LEADER and m.mote.alive]


@given(seed=st.integers(min_value=0, max_value=10_000),
       loss=st.floats(min_value=0.0, max_value=0.2),
       heartbeat_period=st.floats(min_value=0.2, max_value=1.0))
@settings(max_examples=15)
def test_leader_crash_recovers_within_bound(seed, loss, heartbeat_period):
    sim, field, managers, config = build(seed, loss, heartbeat_period)
    crash_at = 2.0 + 6.0 * heartbeat_period
    injector = FaultInjector(sim, field, managers=managers)
    injector.arm(FaultPlan.of(LeaderCrash(time=crash_at,
                                          context_type="t")))
    bound = recovery_bound(config)
    sim.run(until=crash_at + bound + 4.0 * heartbeat_period + 2.0)

    report = analyze_recovery(sim, "t",
                              stability=0.5 * heartbeat_period)
    assert report.crash_count == 1
    crash = report.crashes[0]
    assert crash.recovered
    assert crash.continuity
    assert crash.takeover_latency <= bound
    # The takeover re-serves the original label on a surviving mote.
    leaders = live_leaders(managers)
    assert len(leaders) == 1
    assert leaders[0] in SENSING_IDS - {crash.victim}
    assert managers[leaders[0]].label("t") == crash.label


@given(seed=st.integers(min_value=0, max_value=10_000),
       victim=st.integers(min_value=0, max_value=5),
       heartbeat_period=st.floats(min_value=0.2, max_value=1.0))
@settings(max_examples=15)
def test_any_single_node_crash_leaves_unique_live_leader(
        seed, victim, heartbeat_period):
    sim, field, managers, config = build(seed, 0.1, heartbeat_period)
    crash_at = 2.0 + 6.0 * heartbeat_period
    injector = FaultInjector(sim, field, managers=managers)
    injector.arm(FaultPlan.of(NodeCrash(time=crash_at, node=victim)))
    sim.run(until=crash_at + recovery_bound(config)
            + 4.0 * heartbeat_period + 2.0)

    survivors = SENSING_IDS - {victim}
    leaders = live_leaders(managers)
    assert len(leaders) == 1
    assert leaders[0] in survivors
