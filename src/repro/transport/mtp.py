"""MTP — the transport layer protocol (§5.4).

Context labels are "akin to IP addresses"; the group leader of a label
oversees all communication addressed to it.  Remote method invocation
between tracking objects works like this:

1. the source object's leader resolves the destination label to a node:
   first its *last-known-leader* LRU table, falling back to a directory
   lookup ("the directory services ... determine where an object is when
   it is first contacted");
2. the message travels by geographic routing to that node, carrying the
   source's current leader in the header;
3. a node receiving an MTP message for a label it no longer leads forwards
   it along its own last-known-leader pointer — "messages from moderately
   out-of-date remote senders can be forwarded along a chain of past
   leaders to the current leader";
4. every endpoint updates its table from the header, so "the more traffic
   exchanged between the endpoints, the more up-to-date the leader
   information is".

Connections are identified by (source label:port, destination label:port);
port ids map to methods of individual tracking objects.

On top of the paper's fire-and-forget scheme this agent optionally layers
reliable delivery (:mod:`repro.transport.reliability`): per-connection
sequence numbers, ``mtp.ack`` frames from the delivering leader,
deterministic retransmission with exponential backoff + seeded jitter,
receiver-side dedup for at-most-once handler delivery, and — when the
retransmit budget runs out — escalation (invalidate the stale leader
pointer, fresh directory lookup) before the message dead-letters with a
recorded reason.  Pass ``reliability=ReliabilityConfig(...)`` to enable;
the receive path acks/dedups sequenced invocations regardless, so mixed
fleets interoperate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

from ..groups import GroupManager, HEARTBEAT_KIND, Heartbeat, label_type
from ..node import Component, Mote

if TYPE_CHECKING:  # avoid the naming↔transport import cycle at runtime
    from ..naming import DirectoryEntry, DirectoryService
from .reliability import (ConnectionKey, DeadLetter, DeadLetterQueue,
                          DedupTable, MTP_ACK_KIND, MTP_DEDUP_KIND,
                          PendingTransmission, ReliabilityConfig,
                          RELIABILITY_STREAM, SequenceCounters)
from .routing import GeoRouter
from .tables import LastKnownLeaderTable, NegativeCache

MTP_KIND = "mtp.invoke"

#: Maximum forwarding-chain length before a message is dropped.
DEFAULT_CHAIN_LIMIT = 8

#: Invocations queueable behind one in-flight directory lookup; beyond
#: this the newest send drops with reason ``pending_overflow``.
DEFAULT_PENDING_LIMIT = 32

#: Seconds a pending-lookup queue may wait before its invocations expire
#: (reason ``lookup_expired``).  Guards against directory responses that
#: never arrive even with directory-side timeouts disabled.
DEFAULT_LOOKUP_EXPIRY = 6.0

#: Seconds an "unknown label" verdict is cached before the directory is
#: asked again.
DEFAULT_NEGATIVE_TTL = 5.0

#: Pacing between invocations released from one resolved lookup queue.
#: Releasing a deep backlog in a single instant makes the backlog's own
#: frames collide with each other along the route (hidden terminals);
#: a small fixed spacing keeps the burst off its own toes.
BURST_SPACING = 0.05


#: Handler signature: (args, source_label, source_port, source_leader).
PortHandler = Callable[[Dict[str, Any], str, int, int], None]


@dataclass
class Invocation:
    """One remote method invocation in flight."""

    src_label: str
    src_port: int
    src_leader: int
    dest_label: str
    dest_port: int
    args: Dict[str, Any]
    chain: int = DEFAULT_CHAIN_LIMIT
    #: Reliable-delivery sequence number; None on fire-and-forget sends.
    seq: Optional[int] = None

    def connection(self) -> ConnectionKey:
        """The §5.4 connection this invocation belongs to."""
        return (self.src_label, self.src_port,
                self.dest_label, self.dest_port)

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "src_label": self.src_label,
            "src_port": self.src_port,
            "src_leader": self.src_leader,
            "dest_label": self.dest_label,
            "dest_port": self.dest_port,
            "args": self.args,
            "chain": self.chain,
        }
        if self.seq is not None:
            payload["seq"] = self.seq
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> Optional["Invocation"]:
        try:
            seq = payload.get("seq")
            return cls(
                src_label=payload["src_label"],
                src_port=int(payload["src_port"]),
                src_leader=int(payload["src_leader"]),
                dest_label=payload["dest_label"],
                dest_port=int(payload["dest_port"]),
                args=dict(payload.get("args", {})),
                # Clamp: a corrupted negative budget must exhaust, not
                # grant unlimited forwarding via comparisons done wrong.
                chain=max(0, int(payload.get("chain",
                                             DEFAULT_CHAIN_LIMIT))),
                seq=None if seq is None else int(seq),
            )
        except (KeyError, TypeError, ValueError):
            return None


class MtpAgent(Component):
    """MTP endpoint on one mote.

    Parameters
    ----------
    mote, router, groups:
        Host mote, its geographic router and group manager.
    directory:
        Directory service for first-contact lookups; optional — without it
        only table-resolved destinations work.
    table_capacity:
        Last-known-leader LRU size.
    reliability:
        Reliable-delivery configuration; None (default) keeps the paper's
        fire-and-forget sends.  Receiving stays reliable-aware either way.
    pending_limit:
        Invocations queueable behind one in-flight directory lookup.
    lookup_expiry:
        Seconds before a pending-lookup queue expires its invocations;
        None disables the expiry timer (pre-hardening behavior).
    negative_ttl:
        Unknown-label verdict cache lifetime; None disables negative
        caching.
    """

    name = "mtp"

    def __init__(self, mote: Mote, router: GeoRouter, groups: GroupManager,
                 directory: Optional["DirectoryService"] = None,
                 table_capacity: int = 16,
                 reliability: Optional[ReliabilityConfig] = None,
                 pending_limit: int = DEFAULT_PENDING_LIMIT,
                 lookup_expiry: Optional[float] = DEFAULT_LOOKUP_EXPIRY,
                 negative_ttl: Optional[float] = DEFAULT_NEGATIVE_TTL) -> None:
        super().__init__(mote)
        self.router = router
        self.groups = groups
        self.directory = directory
        self.table = LastKnownLeaderTable(capacity=table_capacity)
        self.reliability = reliability
        self.pending_limit = pending_limit
        self.lookup_expiry = lookup_expiry
        self._ports: Dict[Tuple[str, int], PortHandler] = {}
        self._pending: Dict[str, List[Invocation]] = {}
        self._pending_expiry: Dict[str, Any] = {}
        self._sequences = SequenceCounters()
        self._outbox: Dict[Tuple[ConnectionKey, int],
                           PendingTransmission] = {}
        dedup_connections = 64 if reliability is None \
            else reliability.dedup_connections
        dedup_window = 128 if reliability is None \
            else reliability.dedup_window
        self._dedup = DedupTable(connections=dedup_connections,
                                 window=dedup_window)
        self.dead_letters = DeadLetterQueue(
            capacity=64 if reliability is None
            else reliability.dead_letter_capacity)
        self._negative = None if negative_ttl is None \
            else NegativeCache(ttl=negative_ttl)
        self.delivered = 0
        self.forwarded = 0
        self.dropped = 0
        self.acked = 0
        self.retransmitted = 0
        self.dead_lettered = 0
        # Telemetry counters (no-ops when telemetry is disabled).
        metrics = self.sim.metrics
        self._messages_metric = metrics.counter(
            "repro_mtp_messages_total",
            "MTP invocations by final per-hop outcome.", ("outcome",))
        self._drops_metric = metrics.counter(
            "repro_mtp_drops_total", "MTP drops by reason.", ("reason",))
        self._retransmits_metric = metrics.counter(
            "repro_mtp_retransmits_total",
            "Reliable-MTP retransmissions.")
        self._acks_metric = metrics.counter(
            "repro_mtp_acks_total", "MTP ack frames by direction.",
            ("direction",))

    @property
    def duplicates(self) -> int:
        """Retransmitted invocations suppressed before the handler."""
        return self._dedup.duplicates

    def _jitter_rng(self):
        return self.sim.rng.stream(RELIABILITY_STREAM)

    def on_start(self) -> None:
        self.router.register_delivery(MTP_KIND, self._on_invocation)
        self.router.register_delivery(MTP_ACK_KIND, self._on_ack)
        self.handle(MTP_DEDUP_KIND, self._on_dedup_share)
        # Forwarding pointers come for free from overheard heartbeats: a
        # past leader stays in radio range of its successor for a while and
        # keeps its pointer fresh from the successor's keep-alives.
        self.handle(HEARTBEAT_KIND, self._on_heartbeat)
        # A reboot is a power cycle: every piece of transport RAM —
        # pointers, pending queues, unacked sends, dedup memory — is gone.
        self.mote.add_reboot_hook(self._on_reboot)

    # ------------------------------------------------------------------
    # Port registry
    # ------------------------------------------------------------------
    def register_port(self, context_type: str, port: int,
                      handler: PortHandler) -> None:
        """Bind ``port`` of objects attached to ``context_type``.

        The handler runs on whichever node currently leads a label of the
        type when an invocation for that label arrives.
        """
        key = (context_type, port)
        if key in self._ports:
            raise ValueError(f"port {port} of {context_type!r} taken")
        self._ports[key] = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def invoke(self, src_label: str, dest_label: str, dest_port: int,
               args: Dict[str, Any], src_port: int = 0) -> None:
        """Invoke ``dest_port`` on the object attached to ``dest_label``."""
        invocation = Invocation(
            src_label=src_label, src_port=src_port,
            src_leader=self.node_id, dest_label=dest_label,
            dest_port=dest_port, args=args)
        self._resolve_and_send(invocation)

    def _resolve_and_send(self, invocation: Invocation) -> None:
        dest_label = invocation.dest_label
        if self.reliability is not None and invocation.seq is None:
            # Reliable sends join the outbox *here*, before resolution:
            # a failure during the lookup phase must escalate / dead-letter
            # through the same machinery as a failure on the wire, not
            # vanish as an anonymous drop.  The retransmit timer is armed
            # on first transmission.
            conn = invocation.connection()
            invocation.seq = self._sequences.next(conn)
            self._outbox[(conn, invocation.seq)] = PendingTransmission(
                invocation=invocation, conn=conn, seq=invocation.seq)
        if self._negative is not None \
                and self._negative.fresh(dest_label, self.now):
            self._drop(invocation, "negative_cache")
            return
        pointer = self.table.get(dest_label)
        if pointer is not None:
            self._transmit(pointer.leader, invocation)
            return
        if self.directory is None:
            self._drop(invocation, "no_route")
            return
        self._enqueue_lookup(invocation)

    def _enqueue_lookup(self, invocation: Invocation) -> None:
        """Park the invocation behind a (possibly in-flight) directory
        lookup for its destination label's type."""
        dest_label = invocation.dest_label
        queue = self._pending.setdefault(dest_label, [])
        if len(queue) >= self.pending_limit:
            self._drop(invocation, "pending_overflow")
            return
        queue.append(invocation)
        if len(queue) > 1:
            return  # lookup already in flight
        if self.lookup_expiry is not None:
            self._pending_expiry[dest_label] = self.sim.schedule(
                self.lookup_expiry, self._on_pending_expiry, dest_label,
                label=f"mtp.lookup_expiry@{self.node_id}")
        self.directory.lookup(
            label_type(dest_label),
            lambda entries: self._lookup_done(dest_label, entries))

    def _lookup_done(self, dest_label: str,
                     entries: List["DirectoryEntry"]) -> None:
        expiry = self._pending_expiry.pop(dest_label, None)
        if expiry is not None:
            expiry.cancel()
        waiting = self._pending.pop(dest_label, [])
        match = next((entry for entry in entries
                      if entry.label == dest_label), None)
        if match is None:
            # Negative-cache only the *authoritative* miss: the directory
            # answered with the type's labels and ours is not among them.
            # An empty list is ambiguous — lookup timeout, or a type
            # nobody has registered *yet* — and caching it would blackhole
            # sends for the whole TTL on a transient race.
            if entries and self._negative is not None and waiting:
                self._negative.store(dest_label, self.now)
            for invocation in waiting:
                if not entries and invocation.seq is not None:
                    # Ambiguous empty answer: reliable sends spend an
                    # escalation on another lookup round instead of
                    # dying on what may just be a timed-out query.
                    pending = self._outbox.get((invocation.connection(),
                                                invocation.seq))
                    if pending is not None:
                        self._escalate(pending)
                        continue
                self._drop(invocation, "unknown_label")
            return
        self.table.update(dest_label, match.leader, match.updated)
        for index, invocation in enumerate(waiting):
            if index == 0:
                self._transmit(match.leader, invocation)
            else:
                self.sim.schedule(index * BURST_SPACING, self._transmit,
                                  match.leader, invocation,
                                  label=f"mtp.burst@{self.node_id}")

    def _on_pending_expiry(self, dest_label: str) -> None:
        """The directory never answered: expire the stranded queue.

        Fire-and-forget invocations drop; reliable ones spend an
        escalation on a fresh lookup (dead-lettering once the escalation
        budget is gone).
        """
        self._pending_expiry.pop(dest_label, None)
        waiting = self._pending.pop(dest_label, [])
        if not waiting:
            return
        self.record("lookup_expired", dest=dest_label,
                    count=len(waiting))
        for invocation in waiting:
            if invocation.seq is not None:
                pending = self._outbox.get((invocation.connection(),
                                            invocation.seq))
                if pending is not None:
                    self._escalate(pending)
                    continue
            self._drop(invocation, "lookup_expired")

    def _transmit(self, node: int, invocation: Invocation) -> None:
        """Put one invocation on the wire; reliable sends also register
        (or re-arm) their retransmit state."""
        if not self.mote.alive:
            return  # paced burst release racing a crash: nothing to do
        if self.reliability is not None:
            conn = invocation.connection()
            if invocation.seq is None:
                invocation.seq = self._sequences.next(conn)
            key = (conn, invocation.seq)
            pending = self._outbox.get(key)
            if pending is None:
                pending = PendingTransmission(
                    invocation=invocation, conn=conn, seq=invocation.seq)
                self._outbox[key] = pending
            self._arm_retransmit(pending)
        self.router.route_to_node(node, MTP_KIND, invocation.to_payload())

    # ------------------------------------------------------------------
    # Reliable delivery: retransmission, escalation, dead letters
    # ------------------------------------------------------------------
    def _arm_retransmit(self, pending: PendingTransmission) -> None:
        pending.cancel_timer()
        delay = self.reliability.retry_delay(pending.attempts,
                                             self._jitter_rng())
        pending.event = self.sim.schedule(
            delay, self._on_retransmit_timeout, pending,
            label=f"mtp.rto@{self.node_id}")

    def _on_retransmit_timeout(self, pending: PendingTransmission) -> None:
        pending.event = None
        if not self.mote.alive:
            return  # a dead radio retransmits nothing; reboot wipes state
        if self._outbox.get((pending.conn, pending.seq)) is not pending:
            return  # acked (or dead-lettered) while the event was queued
        config = self.reliability
        dest_label = pending.invocation.dest_label
        if pending.attempts >= config.max_retries:
            self._escalate(pending)
            return
        pointer = self.table.get(dest_label)
        if pointer is None or pointer.leader == self.node_id:
            # Nothing sane to retransmit to — skip straight to the
            # directory (a self-pointer cannot make progress either).
            self._escalate(pending)
            return
        pending.attempts += 1
        self.retransmitted += 1
        self._retransmits_metric.inc(1.0)
        self.record("retransmit", dest=dest_label, seq=pending.seq,
                    attempt=pending.attempts, next=pointer.leader)
        self._arm_retransmit(pending)
        self.router.route_to_node(pointer.leader, MTP_KIND,
                                  pending.invocation.to_payload())

    def _escalate(self, pending: PendingTransmission) -> None:
        """Retry budget exhausted: invalidate the stale pointer and fall
        back to a fresh directory lookup — dead-letter only after that."""
        config = self.reliability
        dest_label = pending.invocation.dest_label
        if pending.escalations >= config.max_escalations \
                or self.directory is None:
            self._dead_letter(pending, "retry_exhausted")
            return
        pending.escalations += 1
        pending.attempts = 0
        self.table.forget(dest_label)
        if self._negative is not None:
            self._negative.forget(dest_label)
        self.record("escalate", dest=dest_label, seq=pending.seq,
                    round=pending.escalations)
        self._enqueue_lookup(pending.invocation)

    def _dead_letter(self, pending: PendingTransmission,
                     reason: str) -> None:
        self._outbox.pop((pending.conn, pending.seq), None)
        pending.cancel_timer()
        self.dead_lettered += 1
        self.dropped += 1
        self._messages_metric.inc(1.0, "dead_lettered")
        self._drops_metric.inc(1.0, reason)
        self.dead_letters.push(DeadLetter(
            payload=pending.invocation.to_payload(), reason=reason,
            time=self.now))
        self.record("dead_letter", dest=pending.invocation.dest_label,
                    seq=pending.seq, reason=reason)

    def _drop(self, invocation: Invocation, reason: str) -> None:
        """Final-drop bookkeeping; sequenced invocations dead-letter."""
        if invocation.seq is not None:
            pending = self._outbox.get((invocation.connection(),
                                        invocation.seq))
            if pending is not None:
                self._dead_letter(pending, reason)
                return
        self.dropped += 1
        self._messages_metric.inc(1.0, "dropped")
        self._drops_metric.inc(1.0, reason)
        self.record("drop", reason=reason, dest=invocation.dest_label)

    # ------------------------------------------------------------------
    # Receiving / forwarding
    # ------------------------------------------------------------------
    def _on_invocation(self, payload: Dict[str, Any], origin: int) -> None:
        invocation = Invocation.from_payload(payload)
        if invocation is None:
            return
        # Header learning: remember the source's current leader.
        self.table.update(invocation.src_label, invocation.src_leader,
                          self.now)
        if invocation.dest_label in self.groups.labels_led():
            self._deliver(invocation)
            return
        self._forward(invocation)

    def _deliver(self, invocation: Invocation) -> None:
        handler = self._ports.get(
            (label_type(invocation.dest_label), invocation.dest_port))
        if handler is None:
            self.dropped += 1
            self._messages_metric.inc(1.0, "dropped")
            self._drops_metric.inc(1.0, "no_port")
            self.record("drop", reason="no_port",
                        dest=invocation.dest_label,
                        port=invocation.dest_port)
            return
        if invocation.seq is not None:
            fresh = self._dedup.check_and_mark(invocation.connection(),
                                               invocation.seq)
            if not fresh:
                # At-most-once: suppress the handler, re-ack (the first
                # ack evidently never reached the sender).
                self._messages_metric.inc(1.0, "duplicate")
                self.record("duplicate", dest=invocation.dest_label,
                            seq=invocation.seq, src=invocation.src_label)
                self._send_ack(invocation)
                return
        self.delivered += 1
        self._messages_metric.inc(1.0, "delivered")
        self.record("deliver", dest=invocation.dest_label,
                    port=invocation.dest_port, src=invocation.src_label)
        handler(invocation.args, invocation.src_label,
                invocation.src_port, invocation.src_leader)
        if invocation.seq is not None:
            self._send_ack(invocation)
            # One-hop dedup share: takeover candidates are group members,
            # hence in radio range — pre-warming their tables lets a
            # successor leader suppress (and re-ack) a post-crash
            # redelivery instead of handing it to the application twice.
            self.broadcast(MTP_DEDUP_KIND, {
                "src_label": invocation.src_label,
                "src_port": invocation.src_port,
                "dest_label": invocation.dest_label,
                "dest_port": invocation.dest_port,
                "seq": invocation.seq,
            })

    def _send_ack(self, invocation: Invocation) -> None:
        self._acks_metric.inc(1.0, "sent")
        self.router.route_to_node(invocation.src_leader, MTP_ACK_KIND, {
            "src_label": invocation.src_label,
            "src_port": invocation.src_port,
            "dest_label": invocation.dest_label,
            "dest_port": invocation.dest_port,
            "seq": invocation.seq,
            "acker": self.node_id,
        })

    def _on_dedup_share(self, frame) -> None:
        payload = frame.payload
        try:
            conn: ConnectionKey = (payload["src_label"],
                                   int(payload["src_port"]),
                                   payload["dest_label"],
                                   int(payload["dest_port"]))
            seq = int(payload["seq"])
        except (KeyError, TypeError, ValueError):
            return
        self._dedup.mark(conn, seq)

    def _on_ack(self, payload: Dict[str, Any], origin: int) -> None:
        try:
            conn: ConnectionKey = (payload["src_label"],
                                   int(payload["src_port"]),
                                   payload["dest_label"],
                                   int(payload["dest_port"]))
            seq = int(payload["seq"])
            acker = int(payload.get("acker", -1))
        except (KeyError, TypeError, ValueError):
            return
        self._acks_metric.inc(1.0, "received")
        if acker >= 0:
            # The acker delivered to the handler, so it leads the
            # destination label *now* — fresher than any pointer.
            self.table.update(conn[2], acker, self.now)
        pending = self._outbox.pop((conn, seq), None)
        if pending is None:
            return  # duplicate ack (retransmission crossed the first ack)
        pending.cancel_timer()
        self.acked += 1
        self.record("ack", dest=conn[2], seq=seq, acker=acker)

    def _forward(self, invocation: Invocation) -> None:
        """Past-leader forwarding: push the message one pointer closer to
        the label's current leader."""
        if invocation.chain <= 0:
            self.dropped += 1
            self._messages_metric.inc(1.0, "dropped")
            self._drops_metric.inc(1.0, "chain_exhausted")
            self.record("drop", reason="chain_exhausted",
                        dest=invocation.dest_label)
            return
        pointer = self.table.get(invocation.dest_label)
        if pointer is None or pointer.leader == self.node_id:
            if pointer is not None:
                # A pointer naming *us* for a label we do not lead is a
                # dead end that can never improve on its own; evict it so
                # the next send re-resolves instead of re-dropping.
                self.table.forget(invocation.dest_label)
            self.dropped += 1
            self._messages_metric.inc(1.0, "dropped")
            self._drops_metric.inc(1.0, "no_pointer")
            self.record("drop", reason="no_pointer",
                        dest=invocation.dest_label)
            return
        invocation.chain -= 1
        self.forwarded += 1
        self._messages_metric.inc(1.0, "forwarded")
        self.record("forward", dest=invocation.dest_label,
                    next=pointer.leader)
        self.router.route_to_node(pointer.leader, MTP_KIND,
                                  invocation.to_payload())

    # ------------------------------------------------------------------
    def _on_heartbeat(self, frame) -> None:
        beat = Heartbeat.from_payload(frame.payload)
        if beat is None:
            return
        self.table.update(beat.label, beat.leader, self.now)

    def _on_reboot(self) -> None:
        """Power cycle: wipe every piece of volatile transport state."""
        for pending in self._outbox.values():
            pending.cancel_timer()
        self._outbox.clear()
        for event in self._pending_expiry.values():
            event.cancel()
        self._pending_expiry.clear()
        self._pending.clear()
        self._sequences.clear()
        self._dedup.clear()
        self.table.clear()
        if self._negative is not None:
            self._negative.clear()
