"""The ``chaos --profile transport`` experiment: reliable vs raw MTP.

The reliability layer (:mod:`repro.transport.reliability`) claims that
acks + deterministic retransmission + escalation turn the paper's
fire-and-forget MTP into a transport that survives leader crashes and
loss spikes.  This experiment puts a number on that claim.

One fixed application endpoint (node 0, the grid's near corner) invokes
a port on a tracked context whose sensing members sit in the far column,
so every invocation crosses the field by geographic routing.  While the
sender streams invocations, a :class:`~repro.faults.FaultPlan`
repeatedly kills the destination label's current leader (power-cycling
the victim) and a field-wide :class:`~repro.faults.LossSpike` degrades
the channel.  The same seeds run twice — ``raw`` (fire-and-forget, the
paper's scheme) and ``reliable`` (acks + retransmit + escalation) — and
the result reports per-seed delivery ratio, retransmit/ack/dead-letter
counts, and end-to-end duplicates (which at-most-once dedup must keep at
zero).

Everything the workload does (sender ticks, directory re-registration,
fault firing) goes through ``sim.schedule``, so a run's trace digest
depends only on (mode, seed, spec) — the digest-equality test pins
serial == ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..faults import FaultInjector, FaultPlan, LossSpike, \
    leader_crash_schedule
from ..groups import GroupConfig, GroupManager, Role
from ..naming import DirectoryService, FieldBounds
from ..radio import reset_frame_ids
from ..sensing import SensorField
from ..sim import Simulator, dump_trace, trace_digest
from ..transport import GeoRouter, MtpAgent, ReliabilityConfig
from .chaos import MemberReporter
from .runner import parallel_map

#: Context type whose leader receives the invocations (and gets killed).
CONTEXT_DST = "txdst"

#: Member-report frame kind for the destination group's weight feeder.
REPORT_KIND = "txchaos.report"

#: The fixed sender's source label (node 0 is its "leader" throughout —
#: the experiment measures transport reliability, not source elections).
SRC_LABEL = "txapp#0.1"

#: Destination port the workload invokes.
APP_PORT = 7

MODES = ("raw", "reliable")


@dataclass(frozen=True)
class TransportChaosSpec:
    """One run's complete parameterization (picklable worker input)."""

    mode: str
    seed: int
    columns: int = 8
    rows: int = 3
    communication_radius: float = 2.5
    base_loss_rate: float = 0.02
    heartbeat_period: float = 0.5
    send_period: float = 0.4
    register_period: float = 1.0
    warmup: float = 8.0
    crashes: int = 2
    crash_period: float = 6.0
    reboot_after: float = 3.0
    spike_offset: float = 3.0
    spike_duration: float = 2.0
    spike_extra_loss: float = 0.5
    drain: float = 8.0
    ack_timeout: float = 0.5
    retry_jitter: float = 0.25
    max_retries: int = 2
    max_escalations: int = 4
    lookup_timeout: float = 1.0
    #: Event-engine scheduler ("lazy" or "heap"); outcomes and trace
    #: digests are byte-identical either way.
    scheduler: str = "lazy"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}: {self.mode!r}")

    def reliability(self) -> Optional[ReliabilityConfig]:
        if self.mode == "raw":
            return None
        return ReliabilityConfig(ack_timeout=self.ack_timeout,
                                 jitter=self.retry_jitter,
                                 max_retries=self.max_retries,
                                 max_escalations=self.max_escalations)

    @property
    def sending_window(self) -> float:
        """Seconds the sender streams for (the crash window's length)."""
        return self.crashes * self.crash_period


@dataclass(frozen=True)
class TransportOutcome:
    """One run's counters (picklable worker output)."""

    mode: str
    seed: int
    sent: int
    delivered: int
    duplicates: int
    retransmits: int
    acks: int
    dead_letters: int
    suppressed: int
    lookup_timeouts: int
    frames: int
    trace_digest: str

    @property
    def delivery_ratio(self) -> Optional[float]:
        if self.sent == 0:
            return None
        return self.delivered / self.sent


@dataclass(frozen=True)
class TransportChaosResult:
    """Paired raw/reliable outcomes across repetitions."""

    outcomes: Tuple[TransportOutcome, ...]

    def outcomes_for(self, mode: str) -> List[TransportOutcome]:
        return [o for o in self.outcomes if o.mode == mode]

    def seeds(self) -> List[int]:
        return sorted({o.seed for o in self.outcomes})

    def delivery_ratio(self, mode: str) -> Optional[float]:
        sent = sum(o.sent for o in self.outcomes_for(mode))
        delivered = sum(o.delivered for o in self.outcomes_for(mode))
        return delivered / sent if sent else None

    def duplicates(self, mode: str) -> int:
        return sum(o.duplicates for o in self.outcomes_for(mode))

    def format_table(self) -> str:
        lines = ["Transport chaos — reliable vs fire-and-forget MTP "
                 "under leader crashes + loss spikes",
                 f"{'mode':>9} {'seed':>6} {'sent':>5} {'deliv':>6} "
                 f"{'ratio':>7} {'dup':>4} {'rexmit':>7} {'acks':>5} "
                 f"{'dead':>5} {'supp':>5} {'dir t/o':>8}"]
        for outcome in sorted(self.outcomes,
                              key=lambda o: (o.seed, o.mode)):
            ratio = outcome.delivery_ratio
            lines.append(
                f"{outcome.mode:>9} {outcome.seed:6d} {outcome.sent:5d} "
                f"{outcome.delivered:6d} "
                f"{(f'{100 * ratio:6.1f}%' if ratio is not None else '    n/a')} "
                f"{outcome.duplicates:4d} {outcome.retransmits:7d} "
                f"{outcome.acks:5d} {outcome.dead_letters:5d} "
                f"{outcome.suppressed:5d} {outcome.lookup_timeouts:8d}")
        for mode in MODES:
            ratio = self.delivery_ratio(mode)
            if ratio is None:
                continue
            lines.append(f"{mode:>9} {'all':>6} aggregate delivery "
                         f"{100 * ratio:5.1f}%  duplicates "
                         f"{self.duplicates(mode)}")
        return "\n".join(lines)


def _transport_run(spec: TransportChaosSpec,
                   trace_out: Optional[str] = None,
                   telemetry: bool = True) -> TransportOutcome:
    """One run: build the grid, stream invocations, inject faults."""
    reset_frame_ids()
    sim = Simulator(seed=spec.seed, telemetry=telemetry,
                    scheduler=spec.scheduler)
    field = SensorField(sim, communication_radius=spec.communication_radius,
                        base_loss_rate=spec.base_loss_rate)
    motes = field.deploy_grid(spec.columns, spec.rows)
    bounds = FieldBounds(0.0, 0.0, float(spec.columns - 1),
                         float(spec.rows - 1))
    # Sensing members fill the far column, so a crashed leader always has
    # live same-group successors in radio range (takeover material).
    dst_members = {row * spec.columns + (spec.columns - 1)
                   for row in range(spec.rows)}
    managers: Dict[int, GroupManager] = {}
    agents: Dict[int, MtpAgent] = {}
    directories: Dict[int, DirectoryService] = {}
    received: Dict[int, int] = {}

    def handler(args, src_label, src_port, src_leader) -> None:
        n = args.get("n")
        if isinstance(n, int):
            received[n] = received.get(n, 0) + 1

    for mote in motes:
        router = GeoRouter(mote)
        router.start()
        directory = DirectoryService(mote, router, bounds, hash_margin=1.0,
                                     lookup_timeout=spec.lookup_timeout)
        directory.start()
        manager = GroupManager(mote)
        manager.track(CONTEXT_DST,
                      lambda m: m.node_id in dst_members,
                      GroupConfig(heartbeat_period=spec.heartbeat_period,
                                  suppression_range=None))
        manager.start()
        MemberReporter(mote, manager,
                       period=2.0 * spec.heartbeat_period,
                       context_type=CONTEXT_DST, kind=REPORT_KIND).start()
        agent = MtpAgent(mote, router, manager, directory=directory,
                         reliability=spec.reliability())
        agent.register_port(CONTEXT_DST, APP_PORT, handler)
        agent.start()
        managers[mote.node_id] = manager
        agents[mote.node_id] = agent
        directories[mote.node_id] = directory

    def dst_leader() -> Tuple[Optional[int], Optional[str]]:
        for node_id in sorted(managers):
            if not motes[node_id].alive:
                continue
            manager = managers[node_id]
            if manager.role(CONTEXT_DST) is Role.LEADER:
                return node_id, manager.label(CONTEXT_DST)
        return None, None

    # Warm up until the destination group has an elected leader (bounded,
    # deterministic: extension depends only on this run's event stream).
    sim.run(until=spec.warmup)
    for _ in range(20):
        node, label = dst_leader()
        if node is not None and label:
            break
        sim.run(until=sim.now + 1.0)
    else:
        raise RuntimeError(
            f"no {CONTEXT_DST} leader elected by t={sim.now:.1f}")
    target_label = label
    state = {"sent": 0}
    # Deadlines hang off the *actual* clock (warmup may have extended).
    send_end = sim.now + 2.0 + spec.crashes * spec.crash_period
    end = send_end + spec.drain
    # ±10% seeded jitter on the workload periods.  Without it the sender,
    # the registrar and the directory's retry timer phase-lock on common
    # divisors and the same hidden-terminal collision then kills *every*
    # lookup at the same hop — a synthetic artifact, not transport loss.
    jitter = sim.rng.stream("txchaos.jitter")

    def register_tick() -> None:
        node_id, current = dst_leader()
        if node_id is not None and current:
            directories[node_id].register(
                CONTEXT_DST, current, motes[node_id].position, node_id)
        if sim.now + spec.register_period <= end:
            sim.schedule(jitter.uniform(0.9, 1.1) * spec.register_period,
                         register_tick, label="txchaos.register")

    def send_tick() -> None:
        state["sent"] += 1
        agents[0].invoke(SRC_LABEL, target_label, APP_PORT,
                         {"n": state["sent"]})
        if sim.now + spec.send_period <= send_end:
            sim.schedule(jitter.uniform(0.9, 1.1) * spec.send_period,
                         send_tick, label="txchaos.send")

    # Let the first registration replicate before the first lookup races
    # it (a directory answering "no such type yet" is a legitimate miss,
    # not a failure this experiment means to measure).
    register_tick()
    sim.run(until=sim.now + 2.0)
    injector = FaultInjector(sim, field, managers=managers)
    injector.arm(leader_crash_schedule(
        CONTEXT_DST, start=sim.now + 1.5, period=spec.crash_period,
        count=spec.crashes, reboot_after=spec.reboot_after))
    injector.arm(FaultPlan(events=(LossSpike(
        time=sim.now + spec.spike_offset, duration=spec.spike_duration,
        extra_loss=spec.spike_extra_loss),)))
    sim.schedule(0.0, send_tick, label="txchaos.send")
    sim.run(until=end)

    if trace_out:
        dump_trace(sim, trace_out)
    timeouts = sim.metrics.get("repro_dir_lookup_timeouts_total")
    return TransportOutcome(
        mode=spec.mode,
        seed=spec.seed,
        sent=state["sent"],
        delivered=sum(1 for count in received.values() if count >= 1),
        duplicates=sum(count - 1 for count in received.values()
                       if count > 1),
        retransmits=sum(a.retransmitted for a in agents.values()),
        acks=sum(a.acked for a in agents.values()),
        dead_letters=sum(a.dead_lettered for a in agents.values()),
        suppressed=sum(a.duplicates for a in agents.values()),
        lookup_timeouts=int(timeouts.value()) if timeouts is not None
        else 0,
        frames=field.medium.stats.frames_sent,
        trace_digest=trace_digest(sim),
    )


def _transport_task(spec: TransportChaosSpec) -> TransportOutcome:
    """Worker entry point: one (mode, seed) transport-chaos run."""
    return _transport_run(spec)


def transport_chaos(repetitions: int = 3, seed_base: int = 91,
                    quick: bool = False, jobs: int = 1,
                    trace_out: Optional[str] = None,
                    **overrides) -> TransportChaosResult:
    """Run raw and reliable MTP over the same seeds; aggregate outcomes.

    ``jobs`` fans the runs out worker-per-(mode, seed); specs are pure
    data, so parallel results equal serial ones.  ``trace_out`` writes
    the first run's trace as JSONL (deterministic serial rerun).
    ``overrides`` forward to :class:`TransportChaosSpec` (e.g.
    ``crashes=3``).
    """
    if quick:
        repetitions = 1
        overrides.setdefault("crashes", 2)
    specs = [TransportChaosSpec(mode=mode, seed=seed_base + rep,
                                **overrides)
             for rep in range(repetitions)
             for mode in MODES]
    outcomes = parallel_map(_transport_task, specs, jobs=jobs)
    if trace_out:
        _transport_run(specs[0], trace_out=trace_out)
    return TransportChaosResult(outcomes=tuple(outcomes))
