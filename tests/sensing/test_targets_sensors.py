"""Unit tests for targets and sensor models."""

import pytest

from repro.sensing import (GrowingTarget, LineTrajectory, StaticPoint,
                           Target, fire_target)
from repro.sensing.sensors import (ambient_scalar_sensor,
                                   binary_detection_sensor, magnetic_sensor,
                                   threshold_detector)


def make_target(radius=1.0, speed=0.0, kind="vehicle", **attrs):
    return Target("t", kind, LineTrajectory((0.0, 0.0), speed),
                  signature_radius=radius, attributes=attrs)


class TestTarget:
    def test_detectable_within_signature_radius(self):
        target = make_target(radius=2.0)
        assert target.detectable_from((1.9, 0.0), 0.0)
        assert not target.detectable_from((2.1, 0.0), 0.0)

    def test_lifetime_window(self):
        target = Target("t", "vehicle", StaticPoint((0, 0)),
                        signature_radius=1.0, active_from=5.0,
                        active_until=10.0)
        assert not target.detectable_from((0, 0), 4.9)
        assert target.detectable_from((0, 0), 7.0)
        assert not target.detectable_from((0, 0), 10.1)

    def test_moving_target_detection_follows_position(self):
        target = make_target(radius=1.0, speed=1.0)
        assert target.detectable_from((0.0, 0.0), 0.0)
        assert not target.detectable_from((0.0, 0.0), 5.0)
        assert target.detectable_from((5.0, 0.0), 5.0)

    def test_radius_must_be_positive(self):
        with pytest.raises(ValueError):
            make_target(radius=0.0)


class TestGrowingTarget:
    def test_fire_grows_over_time(self):
        fire = fire_target("f", (0.0, 0.0), radius=1.0,
                           ignition_time=10.0, growth_rate=0.1)
        assert isinstance(fire, GrowingTarget)
        assert fire.radius_at(5.0) == 0.0  # not ignited yet
        assert fire.radius_at(10.0) == pytest.approx(1.0)
        assert fire.radius_at(20.0) == pytest.approx(2.0)
        assert not fire.detectable_from((1.5, 0.0), 10.0)
        assert fire.detectable_from((1.5, 0.0), 20.0)

    def test_max_radius_caps_growth(self):
        fire = GrowingTarget("f", "fire", StaticPoint((0, 0)),
                             signature_radius=1.0, growth_rate=1.0,
                             max_radius=3.0)
        assert fire.radius_at(100.0) == pytest.approx(3.0)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSensors:
    def test_binary_detection_filters_by_kind(self):
        clock = FakeClock()
        targets = [make_target(kind="vehicle"),
                   Target("f", "fire", StaticPoint((10.0, 0.0)),
                          signature_radius=1.0)]
        vehicle_only = binary_detection_sensor(
            clock, (0.0, 0.0), lambda: targets, kinds=["vehicle"])
        fire_only = binary_detection_sensor(
            clock, (0.0, 0.0), lambda: targets, kinds=["fire"])
        assert vehicle_only() is True
        assert fire_only() is False

    def test_magnetic_cube_law(self):
        clock = FakeClock()
        target = make_target(ferrous_mass=1000.0)
        sensor_near = magnetic_sensor(clock, (0.4, 0.0), lambda: [target])
        sensor_far = magnetic_sensor(clock, (0.8, 0.0), lambda: [target])
        # Double the distance → one eighth the field strength.
        assert sensor_near() == pytest.approx(8 * sensor_far(), rel=1e-6)

    def test_magnetic_ignores_nonferrous(self):
        clock = FakeClock()
        target = make_target()  # no ferrous_mass attribute
        sensor = magnetic_sensor(clock, (0.5, 0.0), lambda: [target])
        assert sensor() == 0.0

    def test_threshold_detector(self):
        values = iter([0.5, 2.0])
        detector = threshold_detector(lambda: next(values), threshold=1.0)
        assert detector() is False
        assert detector() is True

    def test_ambient_scalar_reads_target_attribute(self):
        clock = FakeClock()
        fire = fire_target("f", (0.0, 0.0), radius=2.0, temperature=400.0)
        inside = ambient_scalar_sensor(clock, (1.0, 0.0), lambda: [fire],
                                       "temperature", ambient=25.0)
        outside = ambient_scalar_sensor(clock, (5.0, 0.0), lambda: [fire],
                                        "temperature", ambient=25.0)
        assert inside() == pytest.approx(400.0)
        assert outside() == pytest.approx(25.0)

    def test_sensors_track_time(self):
        clock = FakeClock()
        target = make_target(radius=1.0, speed=1.0)
        detector = binary_detection_sensor(clock, (5.0, 0.0),
                                           lambda: [target])
        assert detector() is False
        clock.t = 5.0
        assert detector() is True
